# Convenience targets; scripts/check.sh is the CI-style smoke job.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test smoke check

test:
	python -m pytest -x -q \
	  --deselect benchmarks/test_figure9.py::test_figure9_layerwise_comparison

smoke:
	python -m repro.cli run figure5 --smoke
	python -m repro.cli report

check:
	bash scripts/check.sh
