# Convenience targets; scripts/check.sh is the CI-style smoke job.

PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))
export PYTHONPATH

.PHONY: test smoke check lint

test:
	python -m pytest -x -q

lint:
	python -m repro.cli lint

smoke:
	python -m repro.cli run figure5 --smoke
	python -m repro.cli report

check:
	bash scripts/check.sh
