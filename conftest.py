"""Pytest bootstrap: make ``src/`` importable without installation.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in fully offline environments); this shim lets
``pytest`` run straight from a source checkout as well.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
