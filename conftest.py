"""Pytest bootstrap: make ``src/`` importable without installation.

The package is normally installed with ``pip install -e .`` (or
``python setup.py develop`` in fully offline environments); this shim lets
``pytest`` run straight from a source checkout as well.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_configure(config):
    """The pytest process edge of the runtime API.

    Builds the process-default :class:`repro.runtime.RuntimeContext` once via
    ``RuntimeConfig.from_env()``.  Tests that steer knobs through
    ``monkeypatch.setenv("REPRO_*", ...)`` keep working — the default
    context's *config* is re-parsed when those variables change, while its
    caches (and therefore cross-test warmth) persist.
    """
    from repro.runtime import default_context

    # The static plan verifier is on under the test suite (and CI): every
    # plan compile_plan() produces during tier-1 is verified before it enters
    # the cache.  Verification runs once per memoized plan, so the cost is
    # noise; the hot path keeps the knob off by default.  setdefault so an
    # explicit REPRO_VERIFY_PLANS=0 still wins for A/B timing.
    os.environ.setdefault("REPRO_VERIFY_PLANS", "1")
    default_context()
