"""Gradient checks for the numpy autograd engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor, no_grad


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = fn(x)
        flat[index] = original - eps
        lower = fn(x)
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def check_gradient(op, x: np.ndarray, atol: float = 1e-5) -> None:
    tensor = Tensor(x.copy(), requires_grad=True)
    out = op(tensor)
    loss = F.sum(F.mul(out, out))
    loss.backward()

    def scalar_fn(values: np.ndarray) -> float:
        result = op(Tensor(values)).data
        return float((result * result).sum())

    numeric = numeric_gradient(scalar_fn, x.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def test_add_mul(self, rng):
        check_gradient(lambda t: F.add(F.mul(t, 3.0), 1.0), rng.normal(size=(3, 4)))

    def test_div(self, rng):
        check_gradient(lambda t: F.div(1.0, F.add(F.mul(t, t), 1.0)), rng.normal(size=(3, 3)))

    def test_exp_log(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: F.log(F.add(F.exp(t), 1.0)), x)

    def test_relu(self, rng):
        x = rng.normal(size=(5, 5)) + 0.1  # avoid the kink at exactly 0
        check_gradient(F.relu, x)

    def test_tanh_sigmoid_gelu(self, rng):
        x = rng.normal(size=(6,))
        check_gradient(F.tanh, x)
        check_gradient(F.sigmoid, x)
        check_gradient(F.gelu, x)

    def test_power_sqrt(self, rng):
        x = np.abs(rng.normal(size=(4,))) + 0.5
        check_gradient(lambda t: F.power(t, 3.0), x)
        check_gradient(F.sqrt, x)


class TestReductionGradients:
    def test_sum_axis(self, rng):
        check_gradient(lambda t: F.sum(t, axis=1), rng.normal(size=(3, 4)))

    def test_mean_keepdims(self, rng):
        check_gradient(lambda t: F.mean(t, axis=0, keepdims=True), rng.normal(size=(3, 4)))

    def test_max(self, rng):
        x = rng.normal(size=(4, 5))
        check_gradient(lambda t: F.max(t, axis=1), x)


class TestLinearAlgebraGradients:
    def test_matmul(self, rng):
        other = rng.normal(size=(4, 3))
        check_gradient(lambda t: F.matmul(t, Tensor(other)), rng.normal(size=(2, 4)))

    def test_matmul_grad_wrt_second_operand(self, rng):
        a = Tensor(rng.normal(size=(2, 4)))
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        F.sum(F.matmul(a, b)).backward()
        expected = a.data.T @ np.ones((2, 3))
        np.testing.assert_allclose(b.grad, expected, rtol=1e-10)

    def test_einsum_contraction(self, rng):
        other = rng.normal(size=(4, 5))
        check_gradient(lambda t: F.einsum("ij,jk->ik", t, Tensor(other)), rng.normal(size=(3, 4)))

    def test_einsum_broadcast_only_operand(self, rng):
        """An index appearing in a single operand gets a broadcast gradient."""
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = F.einsum("i,j->ij", a, b)
        F.sum(out).backward()
        np.testing.assert_allclose(a.grad, np.full(3, b.data.sum()), rtol=1e-10)
        np.testing.assert_allclose(b.grad, np.full(4, a.data.sum()), rtol=1e-10)

    def test_einsum_elementwise_share_pattern(self, rng):
        """The Share lowering pattern: elementwise along one dim, outer along another."""
        other = rng.normal(size=(4, 6))
        check_gradient(lambda t: F.einsum("ab,bc->abc", t, Tensor(other)), rng.normal(size=(3, 4)))


class TestShapeOpGradients:
    def test_reshape_transpose(self, rng):
        check_gradient(lambda t: F.transpose(F.reshape(t, (4, 3)), (1, 0)), rng.normal(size=(3, 4)))

    def test_pad_and_slice(self, rng):
        check_gradient(lambda t: F.pad(t, [(1, 1), (0, 2)]), rng.normal(size=(3, 4)))
        check_gradient(lambda t: F.getitem(t, (slice(0, 2), slice(1, 3))), rng.normal(size=(3, 4)))

    def test_take_scatter_adds(self, rng):
        indices = np.array([0, 1, 1, 2])
        check_gradient(lambda t: F.take(t, indices, axis=0), rng.normal(size=(3, 4)))

    def test_roll(self, rng):
        check_gradient(lambda t: F.roll(t, 1, axis=1), rng.normal(size=(3, 4)))

    def test_broadcast_to(self, rng):
        check_gradient(lambda t: F.broadcast_to(t, (4, 3, 2)), rng.normal(size=(3, 2)))

    def test_unfold1d_matches_window_semantics(self, rng):
        x = rng.normal(size=(2, 6))
        out = F.unfold1d(Tensor(x), axis=1, window=3).data
        padded = np.pad(x, ((0, 0), (1, 1)))
        for i in range(6):
            for j in range(3):
                np.testing.assert_allclose(out[:, i, j], padded[:, i + j])

    def test_unfold1d_gradient(self, rng):
        check_gradient(lambda t: F.unfold1d(t, axis=1, window=3), rng.normal(size=(2, 5)))

    def test_strided_slice(self, rng):
        x = rng.normal(size=(2, 8))
        out = F.strided_slice(Tensor(x), axis=1, step=2).data
        np.testing.assert_allclose(out, x[:, ::2])
        check_gradient(lambda t: F.strided_slice(t, axis=1, step=2), x)

    def test_concatenate(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        F.sum(F.concatenate([a, b], axis=1)).backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))


class TestLossesAndModes:
    def test_softmax_rows_sum_to_one(self, rng):
        probs = F.softmax(Tensor(rng.normal(size=(5, 7)))).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(5), rtol=1e-10)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 1])
        loss = F.cross_entropy(Tensor(logits), targets).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        np.testing.assert_allclose(loss, expected, rtol=1e-10)

    def test_cross_entropy_gradient(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 2, 1, 1])
        F.cross_entropy(logits, targets).backward()
        probs = F.softmax(Tensor(logits.data)).data
        onehot = np.zeros((4, 3))
        onehot[np.arange(4), targets] = 1
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 4, atol=1e-8)

    def test_accuracy(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert F.accuracy(Tensor(logits), np.array([0, 1])) == 1.0
        assert F.accuracy(Tensor(logits), np.array([1, 1])) == 0.5

    def test_no_grad_blocks_tape(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            y = F.mul(x, 2.0)
        assert not y.requires_grad

    def test_backward_requires_scalar(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError):
            F.mul(x, 2.0).backward()

    def test_gradient_accumulates_across_backward_calls(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        F.sum(x).backward()
        F.sum(x).backward()
        np.testing.assert_allclose(x.grad, 2 * np.ones(3))


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_sum_gradient_is_ones(rows, cols, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    F.sum(x).backward()
    np.testing.assert_allclose(x.grad, np.ones((rows, cols)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_chain_rule_linear(seed):
    """d/dx of (a*x).sum() is a for any a."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(5,))
    x = Tensor(rng.normal(size=(5,)), requires_grad=True)
    F.sum(F.mul(Tensor(a), x)).backward()
    np.testing.assert_allclose(x.grad, a)
