"""Tests for the shape-distance metric (Section 7.1)."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.shape_distance import remaining_budget_allows, shape_distance
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import coefficient, primary

C_IN = primary("C_in", default=8)
H = primary("H", default=8)
W = primary("W", default=8)
N = primary("N", default=2)
S = coefficient("s", default=2)
K = coefficient("k", default=3)


class TestBasics:
    def test_zero_for_identical_shapes(self):
        shape = ShapeSpec.of([N, C_IN, H, W])
        assert shape_distance(shape, shape) == 0

    def test_zero_for_permutation(self):
        assert shape_distance(ShapeSpec.of([H, W]), ShapeSpec.of([W, H])) == 0

    def test_positive_when_different(self):
        assert shape_distance(ShapeSpec.of([Size.of(H) * W]), ShapeSpec.of([H, W])) >= 1

    def test_single_reshape_group(self):
        # [H*W] vs [H, W]: one Merge-like step suffices.
        assert shape_distance(ShapeSpec.of([Size.of(H) * W]), ShapeSpec.of([H, W])) == 1

    def test_paper_example_distance_three(self):
        """The running example of Section 7.1: [C_in, s^-1*H, s*W, k] -> [C_in, H, W]."""
        current = ShapeSpec.of([C_IN, Size.of(H) / S, Size.of(W) * S, K])
        desired = ShapeSpec.of([C_IN, H, W])
        assert shape_distance(current, desired) == 3

    def test_extra_coefficient_dim_needs_one_to_many(self):
        current = ShapeSpec.of([H, K])
        desired = ShapeSpec.of([H])
        assert shape_distance(current, desired) >= 1

    def test_domain_mismatch_adds_step(self):
        same_domain = shape_distance(
            ShapeSpec.of([Size.of(H) / S, Size.of(W) * S]), ShapeSpec.of([H, W])
        )
        different_domain = shape_distance(
            ShapeSpec.of([Size.of(H) / S, Size.of(W) * S, K]), ShapeSpec.of([H, W])
        )
        assert different_domain == same_domain + 1


class TestBudgetHelper:
    def test_allows_when_within_budget(self):
        current = ShapeSpec.of([Size.of(H) * W])
        desired = ShapeSpec.of([H, W])
        assert remaining_budget_allows(current, desired, 1)
        assert not remaining_budget_allows(current, desired, 0)


@given(
    sizes=st.lists(st.sampled_from([2, 3, 4, 8]), min_size=1, max_size=4),
)
def test_property_distance_zero_iff_multiset_equal_for_constants(sizes):
    lhs = ShapeSpec.of(sizes)
    rhs = ShapeSpec.of(list(reversed(sizes)))
    assert shape_distance(lhs, rhs) == 0


@given(
    extra=st.sampled_from([2, 3, 5]),
    base=st.lists(st.sampled_from([2, 4, 8]), min_size=1, max_size=3),
)
def test_property_adding_a_dim_gives_positive_distance(extra, base):
    lhs = ShapeSpec.of(base + [extra * 7])
    rhs = ShapeSpec.of(base)
    assert shape_distance(lhs, rhs) >= 1
