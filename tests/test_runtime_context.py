"""Tests for the scoped runtime API (:mod:`repro.runtime`).

Covers: `RuntimeConfig` provenance (default/env/explicit), activation
scoping, concurrent contexts with isolated caches (sequentially interleaved
*and* in threads), record parity between the explicit context path and the
legacy env-var path, the env-fallback deprecation warning, and the
structured snapshot load/save status.
"""

from __future__ import annotations

import functools
import pickle
import threading
import warnings

import pytest

from repro.compiler.backends import TVMBackend
from repro.compiler.targets import MOBILE_CPU
from repro.experiments.common import evaluate_model, syno_candidates
from repro.experiments.runner import ExperimentConfig, applied_env, run_experiment
from repro.nn.models.common import ConvSlot
from repro.nn.tensor import compute_dtype
from repro.runtime import (
    CACHE_FORMAT_VERSION,
    CacheSet,
    RuntimeConfig,
    RuntimeContext,
    current,
    default_context,
    reset_deprecation_warnings,
)
from repro.search.cache import (
    clear_caches,
    default_train_steps,
    reward_cache,
    search_shards,
    smoke_mode,
)
from repro.search.parallel import sharded_map


@pytest.fixture(autouse=True)
def _fresh_default_caches():
    clear_caches()
    yield
    clear_caches()


# ---------------------------------------------------------------------------
# RuntimeConfig: parsing, provenance, derivation
# ---------------------------------------------------------------------------


class TestRuntimeConfig:
    def test_from_env_tags_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        monkeypatch.setenv("REPRO_SEARCH_SHARDS", "3")
        monkeypatch.delenv("REPRO_TRAIN_STEPS", raising=False)
        config = RuntimeConfig.from_env()
        assert config.smoke is True and config.shards == 3
        provenance = config.provenance_map()
        assert provenance["smoke"] == "env" and provenance["shards"] == "env"
        assert provenance["train_steps"] == "default"
        assert provenance["compiled_forward"] == "default"

    def test_with_overrides_tags_explicit_and_keeps_the_rest(self, monkeypatch):
        monkeypatch.setenv("REPRO_SMOKE", "1")
        config = RuntimeConfig.from_env().with_overrides(train_steps=5)
        assert config.train_steps == 5 and config.smoke is True
        assert config.provenance_map()["train_steps"] == "explicit"
        assert config.provenance_map()["smoke"] == "env"

    def test_direct_construction_marks_non_defaults_explicit(self):
        config = RuntimeConfig(smoke=True, shards=4)
        provenance = config.provenance_map()
        assert provenance["smoke"] == "explicit" and provenance["shards"] == "explicit"
        assert provenance["dtype"] == "default"

    def test_dtype_and_train_steps_derive_from_smoke(self):
        assert RuntimeConfig(smoke=True).dtype_name() == "float32"
        assert RuntimeConfig(smoke=False).dtype_name() == "float64"
        assert RuntimeConfig(smoke=True).resolve_train_steps(40, 8) == 8
        assert RuntimeConfig(train_steps=5).resolve_train_steps(40, 8) == 5
        assert RuntimeConfig(smoke=True, dtype="float64").dtype_name() == "float64"

    def test_unknown_override_and_bad_dtype_are_rejected(self):
        with pytest.raises(TypeError, match="no_such_field"):
            RuntimeConfig().with_overrides(no_such_field=1)
        with pytest.raises(ValueError, match="dtype"):
            RuntimeConfig(dtype="float16")

    def test_malformed_env_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "not-a-number")
        monkeypatch.setenv("REPRO_DTYPE", "bfloat16")
        monkeypatch.delenv("REPRO_SMOKE", raising=False)
        config = RuntimeConfig.from_env()
        assert config.train_steps is None and config.dtype is None
        assert config.provenance_map()["train_steps"] == "default"

    def test_empty_string_flag_disables_like_it_always_has(self, monkeypatch):
        """`REPRO_EVAL_CACHE= cmd` (empty value) must still mean disabled."""
        monkeypatch.setenv("REPRO_EVAL_CACHE", "")
        config = RuntimeConfig.from_env()
        assert config.eval_cache is False
        assert config.provenance_map()["eval_cache"] == "env"


# ---------------------------------------------------------------------------
# Activation scoping and the legacy shims
# ---------------------------------------------------------------------------


class TestActivation:
    def test_activate_scopes_and_nests(self):
        outer = RuntimeContext(RuntimeConfig(shards=2))
        inner = RuntimeContext(RuntimeConfig(shards=5))
        assert current() is default_context()
        with outer.activate():
            assert current() is outer and search_shards() == 2
            with inner.activate():
                assert current() is inner and search_shards() == 5
            assert current() is outer
        assert current() is default_context()

    def test_shims_follow_the_active_context(self):
        ctx = RuntimeContext(RuntimeConfig(smoke=True, train_steps=3))
        with ctx.activate():
            assert smoke_mode() is True
            assert default_train_steps(full=40, smoke=8) == 3
            assert reward_cache() is ctx.caches.reward
        assert reward_cache() is default_context().caches.reward

    def test_env_seed_change_reseeds_the_default_rng(self, monkeypatch):
        first = default_context().rng  # materialize, seeded from the old config
        monkeypatch.setenv("REPRO_SEED", "7")
        refreshed = default_context()
        assert refreshed.config.seed == 7
        assert refreshed.rng is not first

    def test_env_knob_changes_keep_the_default_caches(self, monkeypatch):
        """Refreshing the default config on env changes must not drop warmth."""
        caches = default_context().caches
        caches.reward.put(("warm",), 1.0)
        monkeypatch.setenv("REPRO_SEARCH_SHARDS", "7")
        assert search_shards() == 7
        assert default_context().caches is caches
        assert ("warm",) in default_context().caches.reward

    def test_derive_with_results_dir_reroots_the_store(self, tmp_path):
        ctx = RuntimeContext(RuntimeConfig(results_dir=str(tmp_path / "a")))
        assert str(ctx.store.root) == str(tmp_path / "a")  # materialize it
        derived = ctx.derive(results_dir=str(tmp_path / "b"))
        assert str(derived.store.root) == str(tmp_path / "b")
        assert str(derived.snapshot_path()).startswith(str(tmp_path / "b"))
        assert derived.caches is ctx.caches  # caches still shared

    def test_context_pickles_without_store_and_lock_state(self):
        ctx = RuntimeContext(RuntimeConfig(smoke=True))
        ctx.caches.reward.put("k", 0.5)
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.config == ctx.config
        assert clone.caches.reward.lookup("k") == (True, 0.5)


# ---------------------------------------------------------------------------
# Concurrent contexts: isolation and parity (the acceptance scenario)
# ---------------------------------------------------------------------------


_SLOTS = (ConvSlot("c1", 16, 16, 8, 3, 1), ConvSlot("c2", 16, 32, 8, 3, 1))


def _latency_eval(runtime=None):
    return evaluate_model(
        "unit", list(_SLOTS), TVMBackend(trials=8), MOBILE_CPU,
        syno_candidates()[:2], runtime=runtime,
    )


class TestConcurrentContexts:
    def test_evaluate_model_in_two_contexts_same_process(self):
        """Explicitly threaded contexts: same results, fully isolated caches."""
        reference = _latency_eval()  # ambient default context
        ctx_a = RuntimeContext(RuntimeConfig(smoke=True))
        ctx_b = RuntimeContext(RuntimeConfig(smoke=False))
        result_a = _latency_eval(runtime=ctx_a)
        result_b = _latency_eval(runtime=ctx_b)
        assert result_a == reference and result_b == reference
        # Zero cross-talk: each context tuned in its own compile cache.
        assert len(ctx_a.caches.compile_) > 0
        assert len(ctx_b.caches.compile_) > 0
        assert ctx_a.caches.compile_.key_snapshot() == ctx_b.caches.compile_.key_snapshot()
        assert ctx_a.caches.compile_ is not ctx_b.caches.compile_
        # The other context saw no hits from this one's work.
        assert ctx_a.caches.compile_.stats.hits == ctx_b.caches.compile_.stats.hits

    def test_evaluate_model_in_two_threads(self):
        """Two activated contexts running concurrently in threads."""
        reference = _latency_eval()
        contexts = [
            RuntimeContext(RuntimeConfig(smoke=True)),
            RuntimeContext(RuntimeConfig(smoke=False)),
        ]
        results: dict[int, object] = {}
        errors: list[BaseException] = []

        def worker(index: int) -> None:
            try:
                with contexts[index].activate():
                    results[index] = _latency_eval()
            except BaseException as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results[0] == reference and results[1] == reference
        for ctx in contexts:
            assert len(ctx.caches.compile_) > 0

    def test_threads_resolve_their_own_dtype(self):
        """Per-thread activation isolates even the tensor allocation dtype."""
        seen: dict[str, str] = {}
        barrier = threading.Barrier(2)

        def worker(name: str, dtype: str) -> None:
            ctx = RuntimeContext(RuntimeConfig(dtype=dtype))
            with ctx.activate():
                barrier.wait(timeout=10)  # both contexts active at once
                seen[name] = compute_dtype().name

        threads = [
            threading.Thread(target=worker, args=("a", "float32")),
            threading.Thread(target=worker, args=("b", "float64")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert seen == {"a": "float32", "b": "float64"}

    def test_concurrent_contexts_match_env_var_records(self):
        """Two coexisting contexts with different dtype/train_steps produce
        the same records as isolated env-var runs (acceptance criterion)."""
        config_fast = ExperimentConfig(smoke=True, train_steps=2, seed=0)
        config_slow = ExperimentConfig(smoke=True, train_steps=3, seed=0)
        base = RuntimeConfig.from_env()
        ctx_fast = RuntimeContext(base.with_overrides(smoke=True, dtype="float32"))
        ctx_slow = RuntimeContext(base.with_overrides(smoke=True, dtype="float64"))

        with ctx_fast.activate():
            fast = run_experiment("figure8", config_fast).record
        with ctx_slow.activate():
            slow = run_experiment("figure8", config_slow).record
        # Re-running under the first context again is all cache hits.
        with ctx_fast.activate():
            fast_again = run_experiment("figure8", config_fast).record
        assert fast_again.fingerprint() == fast.fingerprint()
        assert fast_again.cache_stats["reward"]["misses"] == 0

        # Zero cross-talk: the default caches saw none of this work, and the
        # two contexts' reward keys never alias (dtype is part of the key).
        assert len(reward_cache()) == 0
        assert len(ctx_fast.caches.reward) > 0 and len(ctx_slow.caches.reward) > 0
        assert not (
            ctx_fast.caches.reward.key_snapshot()
            & ctx_slow.caches.reward.key_snapshot()
        )

        # The env-var path (isolated, sequential) agrees record for record.
        clear_caches()
        with applied_env({"REPRO_DTYPE": "float32"}):
            env_fast = run_experiment("figure8", config_fast).record
        clear_caches()
        with applied_env({"REPRO_DTYPE": "float64"}):
            env_slow = run_experiment("figure8", config_slow).record
        assert fast.fingerprint() == env_fast.fingerprint()
        assert slow.fingerprint() == env_slow.fingerprint()
        assert fast.fingerprint() != slow.fingerprint()  # budgets genuinely differ
        # The records document their runtime config and provenance.
        assert fast.environment["runtime"]["dtype"] == "float32"
        assert fast.environment["provenance"]["dtype"] == "explicit"
        assert env_fast.environment["provenance"]["dtype"] == "env"


class TestThreadedRuntimeMatchesActivation:
    """`runtime=ctx` must behave exactly like `with ctx.activate():`."""

    def _settings(self):
        from repro.search.evaluator import EvaluationSettings

        return EvaluationSettings(train_steps=2, dataset_size=32, batch_size=8)

    def test_threaded_evaluator_trains_under_its_own_dtype(self):
        """The reward key bakes ctx's dtype, so training must run under ctx
        even when the caller never activates it (else serial evaluation would
        diverge from sharded workers, which do activate)."""
        from repro.nn.models.resnet import resnet18
        from repro.search.evaluator import AccuracyEvaluator

        # Ambient default is float64 (pinned by tests/conftest.py).
        f32 = RuntimeConfig(dtype="float32")
        threaded = AccuracyEvaluator(resnet18, self._settings(), runtime=RuntimeContext(f32))
        threaded_baseline = threaded.baseline_accuracy()

        activation_ctx = RuntimeContext(f32)
        with activation_ctx.activate():
            activated = AccuracyEvaluator(resnet18, self._settings())
            activated_baseline = activated.baseline_accuracy()

        ambient = AccuracyEvaluator(resnet18, self._settings())  # float64
        assert threaded.runtime is not None
        assert threaded._context == activated._context  # same float32 key
        assert threaded_baseline == activated_baseline  # same float32 numbers
        assert threaded._context != ambient._context  # never aliases float64


def _context_cached_value(context_tag: str, value: int) -> float:
    """Picklable shard worker that caches through the ambient context."""
    return current().cached_reward(context_tag, str(value), lambda: float(value * value))


class TestShardedContextBootstrap:
    def test_explicit_context_ships_to_workers_and_merges_back(self):
        ctx = RuntimeContext(RuntimeConfig(shards=2))
        worker = functools.partial(_context_cached_value, "ship-test")
        results = sharded_map(worker, [1, 2, 3, 4], max_workers=2, runtime=ctx)
        assert results == [1.0, 4.0, 9.0, 16.0]
        # The workers' rewards merged into the explicit context's caches —
        # not into the process-default ones.
        assert len(ctx.caches.reward) == 4
        assert len(reward_cache()) == 0

    def test_derived_context_workers_inherit_default_caches(self):
        reward_cache().put(("pre",), 0.0)  # pre-existing warmth to inherit
        ctx = default_context().derive(shards=2)
        worker = functools.partial(_context_cached_value, "derive-test")
        results = sharded_map(worker, [1, 2, 3, 4], max_workers=2, runtime=ctx)
        assert results == [1.0, 4.0, 9.0, 16.0]
        # Derived contexts share the default cache set, so the merge lands there.
        assert len(reward_cache()) == 5

    def test_contexts_sharing_default_caches_ship_config_only(self):
        """Payloads for CLI-style contexts must not pickle the warm cache set."""
        from repro.search.parallel import _InheritDefaultCaches, _ship_context

        assert _ship_context(default_context()) is None
        edge = RuntimeContext(RuntimeConfig(shards=2), caches=default_context().caches)
        shipped = _ship_context(edge)
        assert shipped is not None and shipped.caches is _InheritDefaultCaches
        isolated = RuntimeContext(RuntimeConfig(shards=2))
        assert _ship_context(isolated) is isolated


# ---------------------------------------------------------------------------
# Env-fallback deprecation warning
# ---------------------------------------------------------------------------


class TestEnvFallbackDeprecation:
    def test_warns_once_per_knob_after_explicit_context(self, monkeypatch):
        with RuntimeContext(RuntimeConfig()).activate():
            pass  # the process has now adopted the explicit API
        reset_deprecation_warnings()
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "7")
        with pytest.warns(DeprecationWarning, match="REPRO_TRAIN_STEPS"):
            assert default_train_steps() == 7
        # The same knob never warns twice.
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "9")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert default_train_steps() == 9

    def test_no_warning_while_an_explicit_context_is_active(self, monkeypatch):
        reset_deprecation_warnings()
        ctx = RuntimeContext(RuntimeConfig(train_steps=4))
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "11")
        with ctx.activate():
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                # The active context wins; no env read happens at all.
                assert default_train_steps() == 4

    def test_runner_activation_does_not_count_as_adoption(self, monkeypatch):
        """run_experiment activates internally on behalf of env-var callers —
        that must not arm the env-steering deprecation for them."""
        from repro.runtime import config as runtime_config
        from repro.runtime import explicit_context_seen

        monkeypatch.setattr(runtime_config, "_EXPLICIT_CONTEXT_SEEN", False)
        run_experiment("ablation-materialization")
        assert not explicit_context_seen()
        # A user-constructed activation, by contrast, does adopt.
        with RuntimeContext(RuntimeConfig()).activate():
            pass
        assert explicit_context_seen()

    def test_unchanged_env_never_warns(self):
        """Reading a *stable* environment through the fallback is supported.

        The warning targets mid-process env *changes* after explicit-context
        adoption (the deprecated steering pattern) — a CLI process that read
        its env once at the edge must stay silent no matter how many contexts
        it activates afterwards.
        """
        with RuntimeContext(RuntimeConfig()).activate():
            pass
        reset_deprecation_warnings()
        default_context()  # settle the snapshot
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            default_train_steps()
            smoke_mode()


# ---------------------------------------------------------------------------
# Snapshot status (satellite: no more silent snapshot failures)
# ---------------------------------------------------------------------------


class TestSnapshotStatus:
    def test_save_and_load_round_trip(self, tmp_path):
        caches = CacheSet()
        caches.reward.put(("ctx", "sig"), 0.5)
        path = tmp_path / "snap.pkl"
        saved = caches.save_snapshot(str(path))
        assert saved.status == "saved" and saved.entries["reward"] == 1
        assert caches.last_save is saved

        fresh = CacheSet()
        loaded = fresh.load_snapshot(str(path))
        assert loaded.status == "loaded" and loaded.entries["reward"] == 1
        assert fresh.last_load is loaded
        assert ("ctx", "sig") in fresh.reward

    def test_missing_and_disabled_are_distinct_statuses(self, tmp_path):
        caches = CacheSet()
        assert caches.load_snapshot(str(tmp_path / "absent.pkl")).status == "missing"
        assert caches.save_snapshot(str(tmp_path / "s.pkl"), enabled=False).status == "disabled"

    def test_version_mismatch_logs_path_and_both_versions(self, tmp_path, caplog):
        path = tmp_path / "snap.pkl"
        path.write_bytes(pickle.dumps({"version": 999, "caches": {}}))
        caches = CacheSet()
        with caplog.at_level("WARNING"):
            status = caches.load_snapshot(str(path))
        assert status.status == "version-mismatch"
        assert status.snapshot_version == 999
        assert status.expected_version == CACHE_FORMAT_VERSION
        assert str(path) in caplog.text
        assert "999" in caplog.text and str(CACHE_FORMAT_VERSION) in caplog.text
        assert "version" in status.summary()

    def test_unpickling_error_logs_path(self, tmp_path, caplog):
        path = tmp_path / "snap.pkl"
        path.write_bytes(b"definitely not a pickle")
        caches = CacheSet()
        with caplog.at_level("WARNING"):
            status = caches.load_snapshot(str(path))
        assert status.status == "unreadable" and status.error
        assert str(path) in caplog.text
