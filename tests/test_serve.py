"""Tests for the serving layer: protocol, wave coalescer, server, parity."""

from __future__ import annotations

import threading

import pytest

from repro.core.enumeration import default_options_for
from repro.core.library import K, M, OUT_FEATURES, matmul_spec
from repro.core.mcts import MCTS, MCTSConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.runtime import current
from repro.search.cache import cached_reward, clear_caches
from repro.serve import (
    PROTOCOL_VERSION,
    ProtocolError,
    RunRequest,
    SearchServer,
    ServeClient,
    ServeError,
    WaveCoalescer,
    start_server_thread,
)
from repro.serve import protocol


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "status", "id": "r-1"}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_malformed_lines(self):
        for bad in (b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"a string"\n'):
            with pytest.raises(ProtocolError):
                protocol.decode(bad)

    def test_run_request_round_trips_through_the_wire_form(self):
        request = RunRequest(
            experiment="search",
            config=ExperimentConfig(smoke=True, train_steps=2, seed=3),
            overrides={"shards": 2},
            request_id="client-0",
        )
        parsed = RunRequest.from_payload(protocol.decode(protocol.encode(request.to_payload())))
        assert parsed == request

    def test_unknown_experiment_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown experiment"):
            RunRequest.from_payload({"op": "run", "experiment": "not-a-figure"})

    def test_unknown_config_field_is_rejected(self):
        with pytest.raises(ProtocolError, match="unknown config field"):
            RunRequest.from_payload(
                {"op": "run", "experiment": "search", "config": {"bogus": 1}}
            )

    def test_storage_redirecting_override_is_rejected_at_the_edge(self):
        with pytest.raises(ProtocolError, match="not allowed over the wire"):
            RunRequest.from_payload(
                {
                    "op": "run",
                    "experiment": "search",
                    "overrides": {"results_dir": "/elsewhere"},
                }
            )


# ---------------------------------------------------------------------------
# Wave coalescer
# ---------------------------------------------------------------------------


def _pending(*signatures):
    # The tests' reward functions treat the "operator" payload as the
    # signature itself; the coalescer never inspects it.
    return [(signature, signature) for signature in signatures]


class TestWaveCoalescer:
    def test_lone_submission_fires_without_company(self):
        # No registered searches: the full-house threshold is one, so a lone
        # submission never waits out its (here: very long) window.
        coalescer = WaveCoalescer(current(), window_seconds=30.0)
        computed = []

        def reward(operator):
            computed.append(operator)
            return 1.0

        rewards = coalescer.evaluate(_pending("a", "b"), reward, "lone-ctx", runtime=current())
        assert rewards == {"a": 1.0, "b": 1.0}
        assert sorted(computed) == ["a", "b"]
        stats = coalescer.stats()
        assert stats["waves"] == 1
        assert stats["submissions"] == 1
        assert stats["pending"] == 2 and stats["tasks"] == 2

    def test_concurrent_submissions_merge_into_one_wave(self):
        coalescer = WaveCoalescer(current(), window_seconds=30.0)
        computed = []
        computed_lock = threading.Lock()

        def reward(operator):
            with computed_lock:
                computed.append(operator)
            return float(len(operator))

        results = {}
        barrier = threading.Barrier(2)

        def search(name, pending):
            with coalescer.search_scope():
                barrier.wait()  # both searches registered before either submits
                results[name] = dict(
                    coalescer.evaluate(pending, reward, "shared-ctx", runtime=current())
                )

        threads = [
            threading.Thread(target=search, args=("one", _pending("x", "shared"))),
            threading.Thread(target=search, args=("two", _pending("y", "shared"))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=20)
            assert not thread.is_alive(), "coalescer deadlocked"

        assert results["one"] == {"x": 1.0, "shared": 6.0}
        assert results["two"] == {"y": 1.0, "shared": 6.0}
        # The shared signature was computed exactly once for both searches.
        assert sorted(computed) == ["shared", "x", "y"]
        stats = coalescer.stats()
        assert stats["waves"] == 1
        assert stats["submissions"] == 2
        assert stats["pending"] == 4
        assert stats["tasks"] == 3
        assert stats["coalesced"] == 1

    def test_warm_cache_entries_count_as_hits_and_skip_recompute(self):
        computed = []

        def reward(operator):
            computed.append(operator)
            return 0.5

        cached_reward("hit-ctx", "warm", lambda: 0.25)
        coalescer = WaveCoalescer(current(), window_seconds=0.0)
        rewards = coalescer.evaluate(
            _pending("warm", "cold"), reward, "hit-ctx", runtime=current()
        )
        assert rewards == {"warm": 0.25, "cold": 0.5}
        assert computed == ["cold"]
        stats = coalescer.stats()
        assert stats["cache_hits"] == 1 and stats["computed"] == 1

    def test_reward_failure_poisons_the_wave(self):
        def reward(operator):
            raise RuntimeError("proxy training crashed")

        coalescer = WaveCoalescer(current(), window_seconds=0.0)
        with pytest.raises(RuntimeError, match="proxy training crashed"):
            coalescer.evaluate(_pending("a"), reward, "err-ctx", runtime=current())

    def test_empty_wave_is_a_no_op(self):
        coalescer = WaveCoalescer(current(), window_seconds=0.0)
        assert coalescer.evaluate([], lambda op: 1.0, "ctx", runtime=current()) == {}
        assert coalescer.stats()["waves"] == 0

    def test_on_wave_reports_the_stats_every_participant_sees(self):
        seen = []
        coalescer = WaveCoalescer(current(), window_seconds=0.0)
        coalescer.evaluate(
            _pending("a", "a", "b"),
            lambda op: 1.0,
            "cb-ctx",
            runtime=current(),
            on_wave=seen.append,
        )
        (stats,) = seen
        assert stats.pending == 3 and stats.tasks == 2 and stats.coalesced == 1
        assert stats.to_dict()["wave"] == 1


# ---------------------------------------------------------------------------
# MCTS hands waves to the context's wave evaluator
# ---------------------------------------------------------------------------


def test_mcts_routes_waves_through_the_context_wave_evaluator():
    binding = {M: 4, K: 6, OUT_FEATURES: 5}
    spec = matmul_spec(bindings=(binding,))
    options = default_options_for(spec, coefficients=[], max_depth=3)

    def reward(operator):
        return min(operator.parameter_count(binding) / 100.0, 1.0)

    def search(cache_context):
        return MCTS(
            spec=spec,
            options=options,
            reward_fn=reward,
            config=MCTSConfig(iterations=20, seed=1, batch_size=4, cache_context=cache_context),
        )

    serial = search("hook-serial").run()
    assert serial, "the matmul space must yield samples"

    waves = []

    def hook(pending, reward_fn, cache_context, runtime):
        waves.append(len(pending))
        return {signature: reward_fn(operator) for signature, operator in pending}

    hooked_context = current().derive()
    hooked_context.wave_evaluator = hook
    with hooked_context.activate(adopt=False):
        hooked = search("hook-test").run()

    assert waves and sum(waves) > 0, "the hook must have received pending evaluations"
    assert [(r.operator.graph.signature(), r.reward) for r in hooked] == [
        (r.operator.graph.signature(), r.reward) for r in serial
    ]


# ---------------------------------------------------------------------------
# The server, end to end over real sockets
# ---------------------------------------------------------------------------


def _search_config(seed):
    """A search request small enough for a test but with real waves."""
    return ExperimentConfig(
        smoke=True, train_steps=1, seed=seed, options={"iterations": 8}
    )


@pytest.fixture
def live_server(tmp_path):
    context = current().derive(results_dir=str(tmp_path))
    with context.activate(adopt=False):
        server = SearchServer(current(), window_seconds=0.1)
        thread, _address = start_server_thread(server)
        try:
            yield server
        finally:
            server.request_shutdown()
            thread.join(timeout=15)
            assert not thread.is_alive(), "server thread failed to shut down"


class TestSearchServer:
    def test_concurrent_clients_match_serial_fingerprints(self, live_server):
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def client(index):
            try:
                with ServeClient(port=live_server.port) as connection:
                    results[index] = connection.run(
                        "search", _search_config(index), request_id=f"client-{index}"
                    )
            except Exception as exc:  # collected for the main thread's assert
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors and len(results) == 3

        # Bit-identical to a serial run of the same request, per client.
        for index in range(3):
            serial = run_experiment("search", _search_config(index), store=None)
            assert results[index]["fingerprint"] == serial.record.fingerprint()
            assert results[index]["status"] == "completed"

        status = live_server.status()
        assert status["requests"]["completed"] == 3
        assert status["requests"]["failed"] == 0
        # One derived context per request (the runner derives once more).
        assert status["derived_contexts"] >= 3

    def test_repeat_request_is_served_entirely_from_cache(self, live_server):
        with ServeClient(port=live_server.port) as connection:
            first = connection.run("search", _search_config(0), request_id="first")
        with ServeClient(port=live_server.port) as connection:
            second = connection.run("search", _search_config(0), request_id="second")
        assert first["fingerprint"] == second["fingerprint"]
        assert first["run_id"] != second["run_id"]
        # The second run recomputes nothing: rewards and the baseline hit.
        assert second["cache_stats"]["reward"]["misses"] == 0
        assert second["cache_stats"]["baseline"]["misses"] == 0
        assert second["cache_stats"]["baseline"]["hits"] >= 1

    def test_wave_events_stream_to_the_client(self, live_server):
        events = []
        with ServeClient(port=live_server.port) as connection:
            connection.run(
                "search", _search_config(0), request_id="ev", on_event=events.append
            )
        kinds = [event.get("event") for event in events]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        wave_events = [event for event in events if event.get("event") == "wave"]
        assert wave_events, "a search with pending evaluations must report waves"
        assert all(event["id"] == "ev" for event in wave_events)
        assert all(event["tasks"] >= 1 for event in wave_events)

    def test_invalid_requests_get_error_events_not_dead_air(self, live_server):
        with ServeClient(port=live_server.port) as connection:
            with pytest.raises(ServeError, match="unknown experiment"):
                connection.run("not-an-experiment")
        # The connection (and server) survive a rejected request.
        with ServeClient(port=live_server.port) as connection:
            status = connection.status()
        assert status["requests"]["failed"] == 0

    def test_status_and_shutdown_ops(self, tmp_path):
        context = current().derive(results_dir=str(tmp_path))
        with context.activate(adopt=False):
            server = SearchServer(current())
            thread, address = start_server_thread(server)
            assert address.startswith("127.0.0.1:")
            with ServeClient(port=server.port) as connection:
                status = connection.status()
                assert status["event"] == "status"
                assert status["protocol"] == PROTOCOL_VERSION
                assert "search" in status["experiments"]
                final = connection.shutdown()
                assert final["event"] == "shutdown"
            thread.join(timeout=15)
            assert not thread.is_alive()
