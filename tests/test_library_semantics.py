"""End-to-end semantic tests: library pGraphs lowered eagerly vs numpy references.

These are the strongest correctness tests in the suite: they check that the
primitive semantics of Table 1, composed into whole operators (Table 2,
Figure 2, Figure 7), reproduce the exact numerics of hand-written references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen.eager import lower_to_module
from repro.core.library import (
    BLOCK,
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    POOL,
    SHRINK,
    W,
    build_avgpool,
    build_conv2d,
    build_matmul,
    build_operator1,
    build_operator2,
    build_pixelshuffle,
    build_shift_conv,
)
from repro.nn.tensor import Tensor


def _forward(operator, binding, x, seed=0):
    module = lower_to_module(operator, binding, rng=np.random.default_rng(seed))
    return module, module(Tensor(x)).data


class TestMatmul:
    def test_matches_numpy_matmul(self, rng):
        binding = {M: 5, K: 7, OUT_FEATURES: 4}
        x = rng.normal(size=(5, 7))
        module, y = _forward(build_matmul(), binding, x)
        weight = module.weights[0].data  # [K, F]
        np.testing.assert_allclose(y, x @ weight, rtol=1e-10)

    def test_parameter_count(self):
        operator = build_matmul()
        assert operator.parameter_count({M: 5, K: 7, OUT_FEATURES: 4}) == 28

    def test_macs(self):
        operator = build_matmul()
        assert operator.macs({M: 5, K: 7, OUT_FEATURES: 4}) == 5 * 7 * 4


class TestConv2d:
    def test_matches_direct_convolution(self, rng):
        binding = {N: 2, C_IN: 3, C_OUT: 4, H: 6, W: 5, K1: 3}
        x = rng.normal(size=(2, 3, 6, 5))
        module, y = _forward(build_conv2d(), binding, x)
        weight = module.weights[0].data  # [C_in, C_out, K, K]
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        reference = np.zeros((2, 4, 6, 5))
        for kh in range(3):
            for kw in range(3):
                reference += np.einsum(
                    "nchw,cd->ndhw", padded[:, :, kh : kh + 6, kw : kw + 5], weight[:, :, kh, kw]
                )
        np.testing.assert_allclose(y, reference, rtol=1e-10)

    def test_parameter_count_matches_standard_conv(self):
        binding = {N: 1, C_IN: 8, C_OUT: 16, H: 8, W: 8, K1: 3}
        assert build_conv2d().parameter_count(binding) == 8 * 16 * 3 * 3

    def test_macs_match_standard_conv(self):
        binding = {N: 1, C_IN: 8, C_OUT: 16, H: 8, W: 8, K1: 3}
        assert build_conv2d().macs(binding) == 16 * 8 * 8 * 8 * 3 * 3

    def test_gradients_flow_to_input_and_weights(self, rng):
        binding = {N: 1, C_IN: 2, C_OUT: 2, H: 4, W: 4, K1: 3}
        module = lower_to_module(build_conv2d(), binding, rng=rng)
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        y = module(x)
        y.sum().backward()
        assert x.grad is not None and np.any(x.grad != 0)
        assert module.weights[0].grad is not None and np.any(module.weights[0].grad != 0)


class TestPoolingAndViews:
    def test_avgpool_is_window_sum(self):
        binding = {H: 12, POOL: 3}
        x = np.arange(12.0)
        _, y = _forward(build_avgpool(), binding, x)
        np.testing.assert_allclose(y, x.reshape(4, 3).sum(axis=1))

    def test_pixelshuffle_permutation(self):
        binding = {H: 12, BLOCK: 3}
        x = np.arange(12.0)
        _, y = _forward(build_pixelshuffle(), binding, x)
        reference = np.array([x[(12 // 3) * (i % 3) + i // 3] for i in range(12)])
        np.testing.assert_allclose(y, reference)

    def test_pixelshuffle_has_no_parameters_or_macs_beyond_copy(self):
        operator = build_pixelshuffle()
        assert operator.parameter_count({H: 12, BLOCK: 3}) == 0


class TestCaseStudyOperators:
    BINDING = {N: 1, C_IN: 8, C_OUT: 16, H: 6, W: 6, K1: 3, GROUPS: 4, SHRINK: 2}

    def test_operator1_output_shape(self, rng):
        x = rng.normal(size=(1, 8, 6, 6))
        _, y = _forward(build_operator1(), self.BINDING, x)
        assert y.shape == (1, 16, 6, 6)

    def test_operator1_matches_listing2_semantics(self, rng):
        """Check against a direct implementation of the Listing 2 semantics."""
        x = rng.normal(size=(1, 8, 6, 6))
        module, y = _forward(build_operator1(), self.BINDING, x)
        w1 = module.weights[0].data  # [e, g, c', k1]
        w2 = module.weights[1].data  # [k1(j2), C_out, e, g, k1(j1)]
        n, cin, height, width = x.shape
        cout, k1, g, s = 16, 3, 4, 2
        e_dim, cpg = cout // g // s, cin // g
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        reference = np.zeros((n, cout, height, width))
        for j2 in range(k1):
            for j1 in range(k1):
                window = padded[:, :, j2 : j2 + height, j1 : j1 + width]
                window = window.reshape(n, g, cpg, height, width)
                reference += np.einsum(
                    "ngchw,egc,deg->ndhw", window, w1[:, :, :, j1], w2[j2, :, :, :, j1]
                )
        assert (e_dim, cpg) == (w1.shape[0], w1.shape[2])
        np.testing.assert_allclose(y, reference, rtol=1e-9)

    def test_operator1_weight_shapes_match_listing2(self):
        operator = build_operator1()
        shapes = operator.weight_shapes(self.BINDING)
        cout, cin, k1, g, s = 16, 8, 3, 4, 2
        assert sorted(int(np.prod(s_)) for s_ in shapes) == sorted(
            [cout // g // s * cin * k1, cout * (k1 * k1 * cout // s)]
        )

    def test_operator2_has_fewer_parameters_than_conv(self):
        conv_params = build_conv2d().parameter_count(self.BINDING)
        op2_params = build_operator2().parameter_count(self.BINDING)
        assert op2_params < conv_params / 2

    def test_operator2_output_shape(self, rng):
        x = rng.normal(size=(1, 8, 6, 6))
        _, y = _forward(build_operator2(), self.BINDING, x)
        assert y.shape == (1, 16, 6, 6)

    def test_shift_conv_output_shape_and_params(self, rng):
        x = rng.normal(size=(1, 8, 6, 6))
        operator = build_shift_conv()
        _, y = _forward(operator, self.BINDING, x)
        assert y.shape == (1, 16, 6, 6)
        # Shift removes one spatial Unfold, so parameters shrink by ~k.
        assert operator.parameter_count(self.BINDING) * 2 < build_conv2d().parameter_count(self.BINDING)

    def test_operators_are_trainable(self, rng):
        module = lower_to_module(build_operator2(), self.BINDING, rng=rng)
        x = Tensor(rng.normal(size=(1, 8, 6, 6)), requires_grad=True)
        module(x).sum().backward()
        for weight in module.weights:
            assert weight.grad is not None


class TestLoweringValidation:
    def test_wrong_input_shape_raises(self, rng):
        binding = {M: 5, K: 7, OUT_FEATURES: 4}
        module = lower_to_module(build_matmul(), binding)
        with pytest.raises(Exception):
            module(Tensor(rng.normal(size=(5, 6))))
