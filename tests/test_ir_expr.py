"""Tests for coordinate expressions and the term-rewrite simplifier."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.ir.expr import Add, Const, FloorDiv, Iterator, Mod, Mul, simplify
from repro.ir.size import Size
from repro.ir.variables import coefficient, primary

B = coefficient("B", default=4)
C = coefficient("C", default=3)
N = primary("N", default=24)


def _iterator(name: str, size) -> Iterator:
    return Iterator(name, Size.of(size))


class TestEvaluation:
    def test_iterator_and_const(self):
        i = _iterator("i", N)
        expr = i + Const(2)
        assert expr.evaluate({i: 5}) == 7

    def test_mul_div_mod(self):
        i = _iterator("i", N)
        expr = Mod(FloorDiv(Mul(i, Size.of(B)), Size.of(2)), Size.of(C))
        # ((i * 4) / 2) % 3 with i = 5 -> (20 / 2) % 3 = 10 % 3 = 1
        assert expr.evaluate({i: 5}, {B: 4, C: 3}) == 1

    def test_iterators_collected(self):
        i, j = _iterator("i", N), _iterator("j", B)
        expr = Add((Mul(i, Size.of(B)), j))
        assert expr.iterators() == frozenset({i, j})


class TestSimplification:
    def test_constant_folding_in_add(self):
        i = _iterator("i", N)
        expr = Add((i, Const(2), Const(3)))
        simplified = simplify(expr)
        assert repr(simplified) == repr(Add((i, Const(5))))

    def test_mul_by_one_removed(self):
        i = _iterator("i", N)
        assert repr(simplify(Mul(i, Size.one()))) == "i"

    def test_div_by_one_removed(self):
        i = _iterator("i", N)
        assert repr(simplify(FloorDiv(i, Size.one()))) == "i"

    def test_mod_identity_when_bounded(self):
        # i has domain B, so i % B == i.
        i = _iterator("i", B)
        assert repr(simplify(Mod(i, Size.of(B)))) == "i"

    def test_div_zero_when_bounded(self):
        i = _iterator("i", B)
        assert repr(simplify(FloorDiv(i, Size.of(B)))) == "0"

    def test_mod_of_scaled_iterator(self):
        """(B*i) % (B*C) -> B * (i % C), the paper's Section 3 identity."""
        i = _iterator("i", N)
        expr = Mod(Mul(i, Size.of(B)), Size.of(B) * Size.of(C))
        simplified = simplify(expr)
        assert repr(simplified) == repr(Mul(Mod(i, Size.of(C)), Size.of(B)))

    def test_div_of_scaled_iterator(self):
        """(B*i) / (B*C) -> i / C."""
        i = _iterator("i", N)
        expr = FloorDiv(Mul(i, Size.of(B)), Size.of(B) * Size.of(C))
        simplified = simplify(expr)
        assert repr(simplified) == repr(FloorDiv(i, Size.of(C)))

    def test_distribution_over_addition(self):
        i, j = _iterator("i", N), _iterator("j", B)
        expr = Mul(Add((i, j)), Size.of(C))
        simplified = simplify(expr)
        assert isinstance(simplified, Add)

    def test_nested_div_combines(self):
        i = _iterator("i", N)
        expr = FloorDiv(FloorDiv(i, Size.of(B)), Size.of(C))
        simplified = simplify(expr)
        assert repr(simplified) == repr(FloorDiv(i, Size.of(B) * Size.of(C)))

    def test_fixed_point_is_idempotent(self):
        i = _iterator("i", N)
        expr = Mod(Mul(i, Size.of(B)), Size.of(B) * Size.of(C))
        once = simplify(expr)
        assert repr(simplify(once)) == repr(once)


@given(
    i_value=st.integers(min_value=0, max_value=23),
    b=st.sampled_from([2, 3, 4]),
    c=st.sampled_from([2, 3, 5]),
)
def test_property_simplification_preserves_value(i_value: int, b: int, c: int):
    """Simplified expressions evaluate identically on every point."""
    i = _iterator("i", N)
    bindings = {B: b, C: c}
    expressions = [
        Mod(Mul(i, Size.of(B)), Size.of(B) * Size.of(C)),
        FloorDiv(Mul(i, Size.of(B)), Size.of(B) * Size.of(C)),
        Mul(Add((i, Const(1))), Size.of(C)),
        FloorDiv(FloorDiv(i, Size.of(B)), Size.of(C)),
    ]
    for expr in expressions:
        simplified = simplify(expr)
        assert expr.evaluate({i: i_value}, bindings) == simplified.evaluate({i: i_value}, bindings)
