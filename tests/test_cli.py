"""Tests for the ``repro`` CLI and the shared experiment runner."""

from __future__ import annotations

import json
import signal
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.cli.main import build_parser, config_from_args, main
from repro.experiments import runner as runner_module
from repro.experiments.runner import ExperimentConfig, ExperimentSpec, run_experiment
from repro.results import ArtifactStore
from repro.runtime import SharedCacheStore, SnapshotStatus
from repro.search.cache import cached_reward, clear_caches

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


# ---------------------------------------------------------------------------
# Flag -> config mapping
# ---------------------------------------------------------------------------


def test_run_args_map_onto_experiment_config():
    args = build_parser().parse_args(
        [
            "run", "figure6",
            "--smoke",
            "--train-steps", "5",
            "--processes", "2",
            "--shards", "4",
            "--seed", "3",
            "--option", "models=['resnet18']",
            "--option", "label=quick",
        ]
    )
    config = config_from_args(args)
    assert config == ExperimentConfig(
        smoke=True,
        train_steps=5,
        processes=2,
        shards=4,
        seed=3,
        options={"models": ["resnet18"], "label": "quick"},
    )
    assert config.env_overrides() == {
        "REPRO_SMOKE": "1",
        "REPRO_TRAIN_STEPS": "5",
        "REPRO_EVAL_PROCESSES": "2",
        "REPRO_SEARCH_SHARDS": "4",
    }


def test_full_flag_and_defaults():
    args = build_parser().parse_args(["run", "figure5", "--full"])
    config = config_from_args(args)
    assert config.smoke is False and config.env_overrides() == {"REPRO_SMOKE": "0"}

    bare = config_from_args(build_parser().parse_args(["run", "figure5"]))
    assert bare == ExperimentConfig()
    assert bare.env_overrides() == {}


def test_unknown_experiment_is_rejected_at_parse_time(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "figure7"])
    assert "figure7" in capsys.readouterr().err


def test_malformed_option_is_a_usage_error_not_a_traceback(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "figure5", "--option", "noequals"])
    assert "KEY=VALUE" in capsys.readouterr().err


def test_config_round_trips_through_dict():
    config = ExperimentConfig(smoke=False, train_steps=7, seed=1, options={"trials": 10})
    assert ExperimentConfig.from_dict(config.to_dict()) == config


def test_inapplicable_kwargs_are_warned_and_excluded_from_the_record(caplog):
    # ablation-materialization's run() takes no seed and no options at all.
    config = ExperimentConfig(seed=7, options={"mistyped": True})
    with caplog.at_level("WARNING"):
        outcome = run_experiment("ablation-materialization", config)
    assert "mistyped" in caplog.text and "seed" in caplog.text
    assert outcome.record.config["seed"] is None
    assert outcome.record.config["options"] == {}
    # Identical effective runs agree on their fingerprint despite the noise.
    baseline = run_experiment("ablation-materialization")
    assert outcome.record.fingerprint() == baseline.record.fingerprint()


def test_runner_context_store_sentinel_resolves_to_the_run_context(tmp_path):
    """`store=CONTEXT_STORE` writes through the *derived* context's store.

    Concurrent runs into distinct results_dir roots each resolve their own
    store after deriving — a caller never has to thread a shared
    ArtifactStore object that would point all of them at one root.
    """
    from repro.experiments.runner import CONTEXT_STORE
    from repro.runtime import current

    ctx = current().derive(results_dir=str(tmp_path / "mine"))
    with ctx.activate(adopt=False):
        outcome = run_experiment("ablation-materialization", store=CONTEXT_STORE)
    (record,) = ArtifactStore(tmp_path / "mine").list_runs()
    assert record.run_id == outcome.record.run_id

    with pytest.raises(ValueError):
        run_experiment("ablation-materialization", store="bogus")


# ---------------------------------------------------------------------------
# End-to-end through main() with a cheap experiment
# ---------------------------------------------------------------------------


def test_cli_run_writes_record_and_snapshot(tmp_path, capsys):
    argv = ["run", "ablation-materialization", "--results-dir", str(tmp_path)]
    assert main(argv) == 0
    assert main(argv) == 0  # second run over the same store

    store = ArtifactStore(tmp_path)
    records = store.list_runs()
    assert [record.status for record in records] == ["completed", "completed"]
    assert records[0].fingerprint() == records[1].fingerprint()
    assert store.cache_path.exists()

    payload = json.loads(store.record_path(records[0].run_id).read_text())
    assert payload["experiment"] == "ablation-materialization"
    assert payload["fingerprint"] == records[0].fingerprint()

    out = capsys.readouterr().out
    assert "operator1" in out and "record stored in" in out


def test_cli_report_and_list_render_stored_runs(tmp_path, capsys):
    assert main(["run", "ablation-materialization", "--results-dir", str(tmp_path)]) == 0
    run_id = ArtifactStore(tmp_path).list_runs()[0].run_id
    capsys.readouterr()

    assert main(["report", "--results-dir", str(tmp_path)]) == 0
    report = capsys.readouterr().out
    assert run_id in report and "## ablation-materialization" in report

    csv_file = tmp_path / "runs.csv"
    assert main(
        ["report", "--results-dir", str(tmp_path), "--format", "csv", "--output", str(csv_file)]
    ) == 0
    assert "operator1_gain" in csv_file.read_text()

    assert main(["list"]) == 0
    assert "ablation-materialization" in capsys.readouterr().out


def test_cli_report_fails_without_runs(tmp_path, capsys):
    assert main(["report", "--results-dir", str(tmp_path / "empty")]) == 1
    assert "No stored runs" in capsys.readouterr().out


def test_cli_report_output_is_not_written_when_the_store_is_empty(tmp_path, capsys):
    """Exit-1 emptiness must be decided before --output touches the disk."""
    out_file = tmp_path / "report.md"
    argv = ["report", "--results-dir", str(tmp_path / "empty"), "--output", str(out_file)]
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "No stored runs" in captured.out
    assert "report written" not in captured.out
    assert "report not written" in captured.err
    assert not out_file.exists()


def test_cli_cache_shows_snapshot_stats(tmp_path, capsys):
    assert main(["run", "ablation-materialization", "--results-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["cache", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "persisted snapshot" in out and "recent runs" in out
    assert "load status: loaded" in out

    assert main(["cache", "--results-dir", str(tmp_path), "--clear"]) == 0
    assert not ArtifactStore(tmp_path).cache_path.exists()


def test_cli_cache_surfaces_version_mismatch(tmp_path, capsys):
    """A stale snapshot is reported (path + versions), never silently dropped."""
    import pickle

    store = ArtifactStore(tmp_path)
    store.cache_path.parent.mkdir(parents=True, exist_ok=True)
    store.cache_path.write_bytes(pickle.dumps({"version": 999, "caches": {}}))
    assert main(["cache", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "load status: ignored: snapshot version 999" in out


def test_cli_cache_reports_absent_snapshot_and_free_lock(tmp_path, capsys):
    assert main(["cache", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "absent" in out
    assert "store lock: free" in out


def test_cli_cache_surfaces_unreadable_snapshot(tmp_path, capsys):
    store = ArtifactStore(tmp_path)
    store.cache_path.parent.mkdir(parents=True, exist_ok=True)
    store.cache_path.write_bytes(b"this is neither a frame nor a pickle")
    assert main(["cache", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "load status: ignored: unreadable snapshot" in out


def test_cli_cache_surfaces_a_held_store_lock(tmp_path, capsys, monkeypatch, lock_holder):
    """A concurrently held lock renders as `locked`, naming the holder."""
    monkeypatch.setenv("REPRO_CACHE_LOCK_TIMEOUT", "0.2")
    store = ArtifactStore(tmp_path)
    SharedCacheStore(store.cache_path).publish({"reward": {"warm": 1.0}})
    holder = lock_holder(str(store.cache_path) + ".lock")
    assert main(["cache", "--results-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "load status: locked:" in out
    assert f"store lock: held by pid {holder.pid}" in out


def test_cli_cache_json_round_trips_the_snapshot_status(tmp_path, capsys):
    assert main(["run", "ablation-materialization", "--results-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    assert main(["cache", "--results-dir", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    status = SnapshotStatus(**payload["load"])
    assert status.status == "loaded" and status.ok
    assert payload["path"] == str(ArtifactStore(tmp_path).cache_path)
    assert payload["lock"] is None  # nobody is writing
    assert set(payload["sizes"]) >= {"reward", "compile", "baseline", "plan"}


def test_cli_config_renders_table_and_json(capsys, monkeypatch):
    """`repro config` shows resolved values with default/env/explicit provenance."""
    monkeypatch.setenv("REPRO_SEARCH_SHARDS", "3")
    assert main(["config"]) == 0
    out = capsys.readouterr().out
    assert "field" in out and "provenance" in out
    assert "REPRO_SEARCH_SHARDS" in out and "env" in out

    assert main(["config", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runtime"]["shards"] == 3
    assert payload["provenance"]["shards"] == "env"
    assert payload["provenance"]["compiled_forward"] == "default"


# ---------------------------------------------------------------------------
# repro bench
# ---------------------------------------------------------------------------


def test_bench_args_map_onto_experiment_config():
    args = build_parser().parse_args(
        ["bench", "figure8", "--smoke", "--train-steps", "4", "--repeats", "2"]
    )
    config = config_from_args(args)
    assert config.smoke is True and config.train_steps == 4
    assert args.repeats == 2 and not args.no_compare and args.max_seconds is None


def test_cli_bench_writes_trajectory_and_enforces_threshold(tmp_path, capsys):
    argv = [
        "bench", "ablation-materialization",
        "--results-dir", str(tmp_path),
        "--repeats", "2",
        "--no-compare",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "compiled:" in out and "bench record appended" in out

    bench_path = tmp_path / "BENCH_ablation-materialization.json"
    payload = json.loads(bench_path.read_text())
    (entry,) = payload["entries"]
    assert entry["repeats"] == 2
    assert len(entry["compiled"]["times_seconds"]) == 2
    assert entry["reference"] is None and entry["speedup_vs_eager_float64"] is None
    assert entry["compiled"]["min_seconds"] <= entry["compiled"]["mean_seconds"]

    # A second invocation appends to the trajectory instead of overwriting.
    assert main(argv) == 0
    assert len(json.loads(bench_path.read_text())["entries"]) == 2

    # An absurd threshold turns the exit code into a CI failure.
    assert main(argv + ["--max-seconds", "0.0"]) == 1
    assert "exceeds the --max-seconds threshold" in capsys.readouterr().err


def test_bench_all_sweeps_every_experiment_into_one_trajectory(tmp_path, monkeypatch, capsys):
    """`repro bench --all` times every registered experiment into one file."""
    # Shrink the registry to two cheap experiments so the sweep stays a unit test.
    real_registry = runner_module._registry
    small = {
        name: spec
        for name, spec in real_registry().items()
        if name in ("ablation-materialization", "table3")
    }
    monkeypatch.setattr(runner_module, "_registry", lambda: small)

    argv = [
        "bench", "--all",
        "--results-dir", str(tmp_path),
        "--no-compare",
        "--smoke",
        "--shards", "2",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "benchmarking ablation-materialization" in out and "benchmarking table3" in out

    payload = json.loads((tmp_path / "BENCH_all.json").read_text())
    assert payload["experiment"] == "all"
    assert [entry["experiment"] for entry in payload["entries"]] == [
        "table3", "ablation-materialization",
    ]
    assert all(entry["config"]["shards"] == 2 for entry in payload["entries"])


def test_bench_requires_an_experiment_or_all(capsys):
    assert main(["bench"]) == 2
    assert "required" in capsys.readouterr().err
    assert main(["bench", "table3", "--all"]) == 2
    assert "not both" in capsys.readouterr().err


def test_cli_bench_compare_reports_speedup(tmp_path):
    argv = [
        "bench", "ablation-materialization",
        "--results-dir", str(tmp_path),
        "--output", str(tmp_path / "custom.json"),
    ]
    assert main(argv) == 0
    entry = json.loads((tmp_path / "custom.json").read_text())["entries"][-1]
    assert entry["reference"] is not None
    assert entry["speedup_vs_eager_float64"] is not None
    assert not (tmp_path / "BENCH_ablation-materialization.json").exists()


# ---------------------------------------------------------------------------
# Resume: interrupted runs skip completed work items on the rerun
# ---------------------------------------------------------------------------


@pytest.fixture
def fake_experiment(monkeypatch):
    """Register a two-item experiment whose first run dies after item 'a'."""
    work_log: list[str] = []

    def fake_run(interrupt_after=None):
        values = []
        for item in ("a", "b"):
            values.append(
                cached_reward(("resume-test",), item, lambda item=item: work_log.append(item) or 1.0)
            )
            if item == interrupt_after:
                raise KeyboardInterrupt
        return SimpleNamespace(to_table=lambda: f"items={len(values)}")

    spec = ExperimentSpec("fake", fake_run, lambda result: {"done": 1}, "resume test stub")
    real_registry = runner_module._registry
    monkeypatch.setattr(
        runner_module, "_registry", lambda: {**real_registry(), "fake": spec}
    )
    return work_log


def test_interrupted_run_records_status_and_rerun_skips_finished_work(
    tmp_path, fake_experiment
):
    from repro.search.cache import load_caches, save_caches

    store = ArtifactStore(tmp_path)
    with pytest.raises(KeyboardInterrupt):
        run_experiment("fake", ExperimentConfig(options={"interrupt_after": "a"}), store=store)
    save_caches(str(store.cache_path))  # what `repro run` does on Ctrl-C

    interrupted = store.list_runs()[0]
    assert interrupted.status == "interrupted"
    assert interrupted.error.startswith("KeyboardInterrupt")
    assert fake_experiment == ["a"]

    clear_caches()  # fresh process
    load_caches(str(store.cache_path))
    outcome = run_experiment("fake", ExperimentConfig(), store=store)
    assert outcome.record.status == "completed"
    # Item 'a' was reloaded from the snapshot, only 'b' was computed.
    assert fake_experiment == ["a", "b"]
    assert outcome.record.cache_stats["reward"] == {"hits": 1, "misses": 1}
    statuses = [record.status for record in store.list_runs()]
    assert statuses == ["interrupted", "completed"]


def test_failed_run_still_produces_a_record(tmp_path, monkeypatch):
    def broken_run():
        raise ValueError("boom")

    spec = ExperimentSpec("broken", broken_run, lambda result: {}, "failure stub")
    real_registry = runner_module._registry
    monkeypatch.setattr(
        runner_module, "_registry", lambda: {**real_registry(), "broken": spec}
    )
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        run_experiment("broken", store=store)
    record = store.list_runs()[0]
    assert record.status == "failed" and "boom" in record.error


def _register_stub(monkeypatch, name, run_fn):
    spec = ExperimentSpec(name, run_fn, lambda result: {}, "test stub")
    real_registry = runner_module._registry
    monkeypatch.setattr(
        runner_module, "_registry", lambda: {**real_registry(), name: spec}
    )


def test_cli_run_failure_points_at_debug_and_debug_reraises(
    tmp_path, monkeypatch, capsys, caplog
):
    """Default: one actionable line, full traceback in the debug log.

    With --debug the original exception propagates so the user gets the
    real traceback instead of a summary of it.
    """

    def broken_run():
        raise ValueError("kaboom")

    _register_stub(monkeypatch, "broken", broken_run)
    with caplog.at_level("DEBUG", logger="repro.cli.main"):
        assert main(["run", "broken", "--results-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "experiment failed: kaboom" in err
    assert "--debug" in err
    assert "Traceback" not in err  # the console line stays a one-liner
    # ... but the traceback is preserved at debug level for log captures.
    assert any(record.exc_info for record in caplog.records)

    with pytest.raises(ValueError, match="kaboom"):
        main(["run", "broken", "--results-dir", str(tmp_path), "--debug"])


def test_second_interrupt_during_the_snapshot_save_is_deferred(
    tmp_path, monkeypatch, capsys
):
    """Ctrl-C twice: the second SIGINT must not unwind the cache save.

    The save holds the shared store lock; interrupting it would strand the
    lock for every other process.  The handler installed around the save
    acknowledges the signal and finishes the critical section.
    """
    import os

    from repro.runtime import RuntimeContext

    def interrupted_run():
        raise KeyboardInterrupt

    _register_stub(monkeypatch, "interrupting", interrupted_run)

    real_save = RuntimeContext.save_caches

    def save_with_second_interrupt(self, path):
        os.kill(os.getpid(), signal.SIGINT)  # the second Ctrl-C, mid-save
        return real_save(self, path)

    monkeypatch.setattr(RuntimeContext, "save_caches", save_with_second_interrupt)
    previous_handler = signal.getsignal(signal.SIGINT)

    exit_code = main(["run", "interrupting", "--results-dir", str(tmp_path)])

    assert exit_code == 130
    err = capsys.readouterr().err
    assert "interrupt deferred" in err
    assert "rerun `repro run interrupting`" in err
    # The save finished despite the signal, and nothing stayed locked.
    store = ArtifactStore(tmp_path)
    assert store.cache_path.exists()
    assert SharedCacheStore(store.cache_path).lock_info() is None
    # The original SIGINT disposition is restored after the shielded block.
    assert signal.getsignal(signal.SIGINT) is previous_handler


# ---------------------------------------------------------------------------
# Cross-process CLI flow (the acceptance scenario, on a cheap experiment)
# ---------------------------------------------------------------------------


def test_cli_two_fresh_processes_share_the_persisted_caches(tmp_path):
    """Second `repro run` in a new process hits the snapshot and matches records."""
    command = [
        sys.executable, "-m", "repro.cli",
        "run", "figure10", "--smoke", "--train-steps", "2",
        "--results-dir", str(tmp_path),
    ]
    import os

    env = {**os.environ, "PYTHONPATH": "src"}
    for _ in range(2):
        subprocess.run(
            command, cwd=REPO_ROOT, env=env, check=True, capture_output=True, text=True
        )

    records = ArtifactStore(tmp_path).list_runs()
    assert [record.status for record in records] == ["completed", "completed"]
    assert records[0].fingerprint() == records[1].fingerprint()
    first, second = (record.cache_stats.get("compile", {}) for record in records)
    assert first.get("misses", 0) > 0
    assert second.get("misses", 0) == 0 and second.get("hits", 0) > 0


# ---------------------------------------------------------------------------
# repro run: a held store lock is fatal, with advice
# ---------------------------------------------------------------------------


def test_cli_run_refuses_a_held_store_lock(tmp_path, capsys, monkeypatch, lock_holder):
    """A lock held by another process refuses the run (exit 4) actionably."""
    from repro.cli.main import EXIT_STORE_LOCKED

    monkeypatch.setenv("REPRO_CACHE_LOCK_TIMEOUT", "0.2")
    store = ArtifactStore(tmp_path)
    SharedCacheStore(store.cache_path).publish({"reward": {"warm": 1.0}})
    lock_holder(str(store.cache_path) + ".lock")

    exit_code = main(["run", "ablation-materialization", "--results-dir", str(tmp_path)])
    assert exit_code == EXIT_STORE_LOCKED == 4
    err = capsys.readouterr().err
    assert "run refused" in err and "locked" in err
    # The message must tell the user what to *do*, not just what happened.
    assert "REPRO_CACHE_LOCK_TIMEOUT" in err
    assert "--no-cache-persist" in err
    assert "repro cache --clear" in err
    assert ArtifactStore(tmp_path).list_runs() == []  # nothing half-ran


def test_cli_run_with_no_cache_persist_ignores_the_held_lock(
    tmp_path, monkeypatch, lock_holder
):
    monkeypatch.setenv("REPRO_CACHE_LOCK_TIMEOUT", "0.2")
    store = ArtifactStore(tmp_path)
    SharedCacheStore(store.cache_path).publish({"reward": {"warm": 1.0}})
    lock_holder(str(store.cache_path) + ".lock")

    argv = [
        "run", "ablation-materialization",
        "--results-dir", str(tmp_path), "--no-cache-persist",
    ]
    assert main(argv) == 0
    (record,) = ArtifactStore(tmp_path).list_runs()
    assert record.status == "completed"


# ---------------------------------------------------------------------------
# repro chaos: fingerprint parity under a fault plan
# ---------------------------------------------------------------------------


def test_cli_chaos_asserts_parity_with_a_killed_shard(capsys):
    argv = [
        "chaos", "figure8", "--smoke", "--train-steps", "2", "--shards", "4",
        "--plan", "kill:shard-entry:shard=1,attempt=1", "--expect-failures",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "OK: fingerprint parity" in out
    assert "shard 1 attempt 1 [signal]" in out


def test_cli_chaos_rejects_malformed_plans(capsys):
    argv = ["chaos", "figure8", "--plan", "explode:warp-core"]
    assert main(argv) == 2
    assert "invalid fault plan" in capsys.readouterr().err


def test_cli_chaos_expect_failures_catches_plans_that_never_fire(capsys):
    argv = [
        "chaos", "figure8", "--smoke", "--train-steps", "2", "--shards", "2",
        "--plan", "kill:shard-entry:shard=99", "--expect-failures",
    ]
    assert main(argv) == 1
    captured = capsys.readouterr()
    assert "completed fault-free" in captured.out
    assert "--expect-failures" in captured.err


# ---------------------------------------------------------------------------
# repro config --diff: live config vs a stored record
# ---------------------------------------------------------------------------


def test_cli_config_diff_matches_its_own_run(tmp_path, capsys):
    assert main(["run", "ablation-materialization", "--results-dir", str(tmp_path)]) == 0
    run_id = ArtifactStore(tmp_path).list_runs()[0].run_id
    capsys.readouterr()

    assert main(["config", "--diff", run_id, "--results-dir", str(tmp_path)]) == 0
    assert "matches" in capsys.readouterr().out


def test_cli_config_diff_flags_a_changed_knob(tmp_path, capsys, monkeypatch):
    assert main(["run", "ablation-materialization", "--results-dir", str(tmp_path)]) == 0
    run_id = ArtifactStore(tmp_path).list_runs()[0].run_id
    capsys.readouterr()

    monkeypatch.setenv("REPRO_SEARCH_SHARDS", "6")
    assert main(["config", "--diff", run_id, "--results-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "shards" in out and "6" in out

    assert main(
        ["config", "--diff", run_id, "--results-dir", str(tmp_path), "--json"]
    ) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["identical"] is False
    assert payload["differing"]["shards"]["live"] == 6


def test_cli_config_diff_unknown_run_exits_2(tmp_path, capsys):
    assert main(["config", "--diff", "no-such-run", "--results-dir", str(tmp_path)]) == 2
    assert "cannot load run" in capsys.readouterr().err
