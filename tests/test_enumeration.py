"""Tests for guided enumeration (Algorithm 1) and the MCTS search."""

from __future__ import annotations

import random

import pytest

from repro.core.enumeration import (
    EnumerationOptions,
    default_options_for,
    enumerate_children,
    synthesize,
)
from repro.core.library import C_IN, C_OUT, H, K, K1, M, N, OUT_FEATURES, W, conv2d_spec, matmul_spec
from repro.core.mcts import MCTS, MCTSConfig
from repro.core.pgraph import PGraph
from repro.core.primitives import Reduce, Share
from repro.ir.size import Size


def _matmul_options(max_depth: int = 3) -> EnumerationOptions:
    spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
    return default_options_for(spec, coefficients=[], max_depth=max_depth)


class TestEnumerateChildren:
    def test_root_children_nonempty_and_canonical(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options()
        root = PGraph.root(spec.output_shape, spec.input_shape)
        children = enumerate_children(root, options)
        assert children
        signatures = [child.signature() for _, child in children]
        assert len(signatures) == len(set(signatures))

    def test_children_respect_occurrence_limits(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options()
        options.max_reductions = 0
        root = PGraph.root(spec.output_shape, spec.input_shape)
        children = enumerate_children(root, options)
        assert not any(isinstance(action.primitive, Reduce) for action, _ in children)

    def test_disabling_canonicalization_yields_more_children(self):
        spec = conv2d_spec(bindings=({N: 1, C_IN: 4, C_OUT: 4, H: 4, W: 4, K1: 3},))
        options = default_options_for(spec, coefficients=[K1], max_depth=4)
        root = PGraph.root(spec.output_shape, spec.input_shape)
        graph = Reduce(size=Size.of(K1)).apply(root, ())
        with_canon = len(enumerate_children(graph, options))
        options.canonicalizer = None
        without_canon = len(enumerate_children(graph, options))
        assert without_canon >= with_canon


class TestSynthesize:
    def test_matmul_is_discoverable(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options(max_depth=3)
        results, stats = synthesize(spec, options, max_results=16, max_nodes=4000)
        assert results, "guided synthesis should find at least one valid operator"
        assert stats.completed == len(results)
        # At least one discovered operator is the plain matmul: Reduce + Share.
        assert any(
            result.graph.count_primitive(Reduce) == 1 and result.graph.count_primitive(Share) == 1
            for result in results
        )

    def test_all_results_are_complete_and_within_budget(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options(max_depth=3)
        options.max_macs = 4 * 6 * 5 * 10
        results, _ = synthesize(spec, options, max_results=8, max_nodes=4000)
        for result in results:
            assert result.graph.is_complete
            assert result.graph.macs({M: 4, K: 6, OUT_FEATURES: 5}) <= options.max_macs

    def test_shape_distance_prunes_nodes(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        guided = _matmul_options(max_depth=3)
        unguided = _matmul_options(max_depth=3)
        unguided.use_shape_distance = False
        _, stats_guided = synthesize(spec, guided, max_results=4, max_nodes=800,
                                     rng=random.Random(0))
        _, stats_unguided = synthesize(spec, unguided, max_results=4, max_nodes=800,
                                       rng=random.Random(0))
        assert stats_guided.pruned_by_distance > 0
        # Guidance should not reduce the yield under the same node budget.
        assert stats_guided.completed >= stats_unguided.completed

    def test_results_deduplicated_by_signature(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options(max_depth=3)
        results, _ = synthesize(spec, options, max_results=32, max_nodes=4000)
        signatures = [result.graph.signature() for result in results]
        assert len(signatures) == len(set(signatures))


class TestMCTS:
    def _reward(self, operator) -> float:
        """A cheap synthetic reward: prefer operators with parameters."""
        binding = {M: 4, K: 6, OUT_FEATURES: 5}
        params = operator.parameter_count(binding)
        return min(params / 100.0, 1.0)

    def test_mcts_finds_rewarding_operators(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options(max_depth=3)
        search = MCTS(spec=spec, options=options, reward_fn=self._reward,
                      config=MCTSConfig(iterations=60, seed=1))
        samples = search.run()
        assert samples, "MCTS should evaluate at least one complete operator"
        assert search.best_operator() is not None
        assert samples[0].reward >= samples[-1].reward

    def test_mcts_respects_flops_budget(self):
        binding = {M: 4, K: 6, OUT_FEATURES: 5}
        spec = matmul_spec(bindings=(binding,))
        options = _matmul_options(max_depth=3)
        options.max_macs = 4 * 6 * 5  # exactly one contraction worth of MACs
        search = MCTS(spec=spec, options=options, reward_fn=self._reward,
                      config=MCTSConfig(iterations=40, seed=2))
        for record in search.run():
            assert record.operator.macs(binding) <= options.max_macs

    def test_mcts_deduplicates_evaluations(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = _matmul_options(max_depth=2)
        calls = []

        def reward(operator):
            calls.append(operator.graph.signature())
            return 0.5

        search = MCTS(spec=spec, options=options, reward_fn=reward,
                      config=MCTSConfig(iterations=50, seed=3))
        search.run()
        assert len(calls) == len(set(calls))
