"""Shared fixtures: concrete bindings and specs used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _full_precision_substrate(monkeypatch):
    """Pin the unit tests to float64 regardless of the smoke default.

    ``benchmarks/conftest.py`` exports ``REPRO_SMOKE=1`` for the whole
    process, which would silently flip the compute dtype to float32 and break
    the exact-numerics assertions here.  Tests that exercise the dtype knob
    override this per-test with their own ``monkeypatch.setenv`` (the
    environment is the supported process-edge fallback: the ambient default
    ``RuntimeContext`` re-parses its config when ``REPRO_*`` values change)
    or by activating an explicit context.
    """
    monkeypatch.setenv("REPRO_DTYPE", "float64")

from repro.core.library import (
    BLOCK,
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    POOL,
    SHRINK,
    W,
    conv2d_spec,
    matmul_spec,
)


@pytest.fixture
def conv_binding() -> dict:
    """A small but non-trivial convolution binding."""
    return {N: 2, C_IN: 8, C_OUT: 8, H: 6, W: 6, K1: 3, GROUPS: 4, SHRINK: 2}


@pytest.fixture
def matmul_binding() -> dict:
    return {M: 4, K: 6, OUT_FEATURES: 5}


@pytest.fixture
def pool_binding() -> dict:
    return {H: 12, POOL: 3, BLOCK: 2}


@pytest.fixture
def conv_spec_bound(conv_binding):
    return conv2d_spec(bindings=(conv_binding,))


@pytest.fixture
def matmul_spec_bound(matmul_binding):
    return matmul_spec(bindings=(matmul_binding,))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
