"""Shared fixtures: concrete bindings/specs plus fault-injection helpers.

The fault-injection fixtures (:func:`lock_holder`, :func:`crashed_writer`)
drive the shared cache store's crash/contention paths with *real* child
processes — a genuinely held lock in another pid, a writer SIGKILLed in the
middle of appending a frame — and are shared between ``test_cache_store.py``
and ``test_parallel_search.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import time
import zlib
from types import SimpleNamespace

import numpy as np
import pytest


@pytest.fixture(autouse=True)
def _full_precision_substrate(monkeypatch):
    """Pin the unit tests to float64 regardless of the smoke default.

    ``benchmarks/conftest.py`` exports ``REPRO_SMOKE=1`` for the whole
    process, which would silently flip the compute dtype to float32 and break
    the exact-numerics assertions here.  Tests that exercise the dtype knob
    override this per-test with their own ``monkeypatch.setenv`` (the
    environment is the supported process-edge fallback: the ambient default
    ``RuntimeContext`` re-parses its config when ``REPRO_*`` values change)
    or by activating an explicit context.
    """
    monkeypatch.setenv("REPRO_DTYPE", "float64")

from repro.core.library import (
    BLOCK,
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    POOL,
    SHRINK,
    W,
    conv2d_spec,
    matmul_spec,
)


@pytest.fixture
def conv_binding() -> dict:
    """A small but non-trivial convolution binding."""
    return {N: 2, C_IN: 8, C_OUT: 8, H: 6, W: 6, K1: 3, GROUPS: 4, SHRINK: 2}


@pytest.fixture
def matmul_binding() -> dict:
    return {M: 4, K: 6, OUT_FEATURES: 5}


@pytest.fixture
def pool_binding() -> dict:
    return {H: 12, POOL: 3, BLOCK: 2}


@pytest.fixture
def conv_spec_bound(conv_binding):
    return conv2d_spec(bindings=(conv_binding,))


@pytest.fixture
def matmul_spec_bound(matmul_binding):
    return matmul_spec(bindings=(matmul_binding,))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


# ---------------------------------------------------------------------------
# Fault injection (shared by test_cache_store.py and test_parallel_search.py)
# ---------------------------------------------------------------------------


def _hold_lock_child(lock_path: str, acquired, release) -> None:
    """Child body: take the store lock and hold it until told to let go."""
    from repro.runtime.store import FileLock

    lock = FileLock(lock_path, timeout=10.0)
    lock.acquire()
    acquired.set()
    release.wait(60.0)
    lock.release()


def _crash_writer_child(store_path: str, ready) -> None:
    """Child body: take the lock, append a *torn* frame, then hang.

    The parent SIGKILLs this process once ``ready`` is set, leaving exactly
    the on-disk state a mid-write crash produces: a dead-pid lock directory
    plus a frame whose header promises more payload bytes than were written.
    """
    from repro.runtime.caches import CACHE_FORMAT_VERSION
    from repro.runtime.store import FRAME_HEADER, FRAME_MAGIC, SharedCacheStore

    store = SharedCacheStore(store_path)
    store.lock.acquire()
    payload = pickle.dumps(
        {"version": CACHE_FORMAT_VERSION, "caches": {"reward": {("crash", "sig"): 1.0}}}
    )
    header = FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload))
    with open(store_path, "ab") as handle:
        handle.write(header + payload[: len(payload) // 2])
        handle.flush()
        os.fsync(handle.fileno())
    ready.set()
    time.sleep(600.0)  # killed long before this expires


@pytest.fixture
def lock_holder():
    """Start a real child process that holds a store lock; returns a handle.

    Usage: ``holder = lock_holder(lock_path)`` — the fixture blocks until the
    child has actually acquired the lock.  ``holder.release()`` lets it go
    cleanly; ``holder.kill()`` SIGKILLs it, leaving a stale dead-pid lock.
    Any survivors are cleaned up at teardown.
    """
    spawned: list[tuple[multiprocessing.Process, object]] = []

    def start(lock_path) -> SimpleNamespace:
        mp = multiprocessing.get_context("fork")
        acquired, release = mp.Event(), mp.Event()
        process = mp.Process(
            target=_hold_lock_child, args=(str(lock_path), acquired, release), daemon=True
        )
        process.start()
        assert acquired.wait(15.0), "lock-holder child never acquired the lock"
        spawned.append((process, release))

        def _release() -> None:
            release.set()
            process.join(10.0)

        def _kill() -> None:
            os.kill(process.pid, signal.SIGKILL)
            process.join(10.0)

        return SimpleNamespace(pid=process.pid, release=_release, kill=_kill)

    yield start
    for process, release in spawned:
        release.set()
        process.join(5.0)
        if process.is_alive():
            process.kill()
            process.join(5.0)


@pytest.fixture
def crashed_writer():
    """SIGKILL a child mid-append; returns its pid once the crash happened.

    ``crashed_writer(store_path)`` leaves the store with a torn trailing
    frame and its lock directory owned by a dead pid — the exact state the
    store's stale-lock detection and torn-tail repair must recover from.
    """

    def crash(store_path) -> int:
        mp = multiprocessing.get_context("fork")
        ready = mp.Event()
        process = mp.Process(
            target=_crash_writer_child, args=(str(store_path), ready), daemon=True
        )
        process.start()
        assert ready.wait(15.0), "crash-writer child never reached mid-write"
        os.kill(process.pid, signal.SIGKILL)
        process.join(10.0)
        return process.pid

    return crash
