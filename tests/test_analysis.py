"""Tests for the static-analysis subsystem: `repro lint` and the plan verifier.

Level 1: each lint rule fires exactly once on a known-bad fixture snippet
(including the aliased-import env read the old grep guard could not see),
baseline suppression round-trips, and the real tree lints clean through the
CLI.  Level 2: compiled plans for the whole operator library pass static
verification, and targeted corruptions (wrong einsum subscript, out-of-bounds
gather index, dropped backward recipe, broken transpose) each raise a
:class:`PlanVerificationError` naming the offending step.
"""

from __future__ import annotations

import json
import random
import re
import textwrap

import numpy as np
import pytest

from repro.analysis import (
    LintEngine,
    apply_baseline,
    collect_modules,
    load_baseline,
    make_rules,
    save_baseline,
)
from repro.analysis.plan_verifier import PlanVerificationError, verify_plan
from repro.cli.main import main
from repro.codegen.plan import (
    ContractionStep,
    TransposeStep,
    UnfoldStep,
    cached_plan,
    compile_plan,
)
from repro.core.library import (
    BLOCK,
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    LIBRARY,
    M,
    N,
    OUT_FEATURES,
    POOL,
    SHRINK,
    W,
    build_conv2d,
    build_operator1,
)
from repro.core.mcts import MCTS, MCTSConfig
from repro.core.enumeration import default_options_for
from repro.core.library import matmul_spec
from repro.nn.layers import default_rng, seed_all
from repro.nn.tensor import Tensor
from repro.runtime import RuntimeConfig, RuntimeContext, current

CONV_BINDING = {N: 2, C_IN: 8, C_OUT: 8, H: 6, W: 6, K1: 3, GROUPS: 4, SHRINK: 2}
LIBRARY_BINDINGS = {
    "matmul": {M: 4, K: 6, OUT_FEATURES: 6, GROUPS: 2},
    "conv2d": CONV_BINDING,
    "avgpool1d": {H: 12, POOL: 3, BLOCK: 2},
    "pixelshuffle": {H: 12, POOL: 3, BLOCK: 2},
    "operator1": CONV_BINDING,
    "operator2": CONV_BINDING,
    "shift_conv": CONV_BINDING,
    "grouped_projection": {M: 4, K: 6, OUT_FEATURES: 6, GROUPS: 2},
}


# ---------------------------------------------------------------------------
# Level 1: the lint engine
# ---------------------------------------------------------------------------


def lint_fixture(tmp_path, relpath: str, source: str, rules=None):
    """Lint one fixture file placed at ``relpath`` under a fake tree root."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    modules = collect_modules([path], tmp_path)
    return LintEngine(make_rules(rules)).run(modules)


class TestEnvConfinementRule:
    def test_aliased_environ_read_fires_once_and_grep_misses_it(self, tmp_path):
        # The exact pattern the old `grep 'os\.(environ|getenv)'` guard in
        # scripts/check.sh could not see: the module never spells "os.environ".
        source = """\
            from os import environ as env_table

            def smoke_enabled() -> bool:
                return bool(env_table.get("REPRO_SMOKE"))
        """
        assert re.search(r"os\.(environ|getenv)", textwrap.dedent(source)) is None
        findings = lint_fixture(tmp_path, "repro/search/bad_env.py", source)
        assert len(findings) == 1
        assert findings[0].rule == "env-confinement"
        assert findings[0].key == "REPRO_SMOKE"
        assert "REPRO_SMOKE" in findings[0].message

    def test_aliased_subscript_read(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/cli/bad.py",
            """\
            from os import environ

            SEED = environ["REPRO_SEED"]
            """,
            rules=["env-confinement"],
        )
        assert [f.key for f in findings] == ["REPRO_SEED"]

    def test_computed_key_is_flagged(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/computed.py",
            """\
            import os

            def knob(name: str):
                return os.environ.get("REPRO_" + name)
            """,
            rules=["env-confinement"],
        )
        assert len(findings) == 1
        assert "computed key" in findings[0].message

    def test_non_repro_reads_and_runtime_dir_are_exempt(self, tmp_path):
        clean = """\
            import os

            HOME = os.getenv("HOME")
        """
        assert lint_fixture(tmp_path, "repro/search/clean.py", clean,
                            rules=["env-confinement"]) == []
        confined = """\
            import os

            def from_env():
                return os.environ.get("REPRO_SMOKE")
        """
        assert lint_fixture(tmp_path, "repro/runtime/config2.py", confined,
                            rules=["env-confinement"]) == []

    def test_environment_writes_are_not_reads(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/experiments/writer.py",
            """\
            import os

            def pin(name, value):
                os.environ[name] = value
            """,
            rules=["env-confinement"],
        )
        assert findings == []


class TestMutableGlobalRule:
    def test_empty_dict_fires_once(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/stateful.py",
            "_CACHE = {}\n",
            rules=["mutable-global"],
        )
        assert len(findings) == 1
        assert findings[0].key == "_CACHE"

    def test_constant_table_and_runtime_dir_are_exempt(self, tmp_path):
        assert lint_fixture(
            tmp_path,
            "repro/core/tables.py",
            'REGISTRY = {"a": 1}\n',
            rules=["mutable-global"],
        ) == []
        assert lint_fixture(
            tmp_path,
            "repro/runtime/owned.py",
            "_CACHE = {}\n",
            rules=["mutable-global"],
        ) == []

    def test_mutable_factory_call(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/counters.py",
            """\
            import itertools

            _IDS = itertools.count()
            """,
            rules=["mutable-global"],
        )
        assert [f.key for f in findings] == ["_IDS"]

    def test_global_statement_fires_once(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/rebinder.py",
            """\
            _MODE = None

            def set_mode(mode):
                global _MODE
                _MODE = mode
            """,
            rules=["mutable-global"],
        )
        assert [f.key for f in findings] == ["global:_MODE"]


class TestNondeterminismRule:
    def test_global_random_call_fires_once(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/rand.py",
            """\
            import random

            def pick(items):
                return random.choice(items)
            """,
            rules=["nondeterminism"],
        )
        assert [f.key for f in findings] == ["random.choice"]

    def test_unseeded_default_rng_flagged_seeded_allowed(self, tmp_path):
        source = """\
            import numpy as np

            def fresh():
                return np.random.default_rng()

            def pinned():
                return np.random.default_rng(0)
        """
        findings = lint_fixture(tmp_path, "repro/nn/rngs.py", source,
                                rules=["nondeterminism"])
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_wall_clock_only_in_sensitive_paths(self, tmp_path):
        source = """\
            import time

            def stamp():
                return time.time()
        """
        flagged = lint_fixture(tmp_path, "repro/search/clock.py", source,
                               rules=["nondeterminism"])
        assert [f.key for f in flagged] == ["time.time"]
        # cli/ may legitimately timestamp records.
        assert lint_fixture(tmp_path, "repro/cli/clock.py", source,
                            rules=["nondeterminism"]) == []

    def test_set_iteration_flagged_sorted_allowed(self, tmp_path):
        source = """\
            def keys(items):
                return list(set(items))

            def stable(items):
                return sorted(set(items))
        """
        findings = lint_fixture(tmp_path, "repro/results/keys.py", source,
                                rules=["nondeterminism"])
        assert len(findings) == 1
        assert findings[0].key == "list(set)"


class TestRuntimeThreadingRule:
    def test_dropped_runtime_fires_once(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/threading.py",
            """\
            def callee(x, runtime=None):
                return x

            def caller(x, runtime=None):
                return callee(x)
            """,
            rules=["runtime-threading"],
        )
        assert len(findings) == 1
        assert findings[0].key == "caller->callee"

    def test_forwarding_is_clean(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/threading_ok.py",
            """\
            def callee(x, runtime=None):
                return x

            def by_keyword(x, runtime=None):
                return callee(x, runtime=runtime)

            def by_attribute(self_like, x, runtime=None):
                return callee(x, runtime=self_like.runtime)

            def by_kwargs(x, runtime=None, **kwargs):
                return callee(x, **kwargs)
            """,
            rules=["runtime-threading"],
        )
        assert findings == []

    def test_ambiguous_names_are_dropped(self, tmp_path):
        # `helper` is also defined *without* a runtime parameter elsewhere, so
        # calls to it cannot be attributed reliably and must not be flagged.
        findings = lint_fixture(
            tmp_path,
            "repro/search/ambiguous.py",
            """\
            def helper(x, runtime=None):
                return x

            class Other:
                def helper(self, x):
                    return x

            def caller(x, runtime=None):
                return helper(x)
            """,
            rules=["runtime-threading"],
        )
        assert findings == []


class TestExceptionHygieneRule:
    def test_bare_except_fires(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/swallow.py",
            """\
            def load(path):
                try:
                    return open(path).read()
                except:
                    return None
            """,
            rules=["exception-hygiene"],
        )
        assert len(findings) == 1
        assert findings[0].key == "bare:load"
        assert "SystemExit" in findings[0].message

    def test_silent_broad_handler_fires(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/silent.py",
            """\
            def publish(store, entries):
                try:
                    store.write(entries)
                except Exception:
                    pass
            """,
            rules=["exception-hygiene"],
        )
        assert [f.key for f in findings] == ["silent:publish"]

    def test_broad_handler_in_a_tuple_fires(self, tmp_path):
        findings = lint_fixture(
            tmp_path,
            "repro/search/tupled.py",
            """\
            def probe(fn):
                try:
                    fn()
                except (ValueError, BaseException):
                    ...
            """,
            rules=["exception-hygiene"],
        )
        assert len(findings) == 1
        assert "BaseException" in findings[0].message

    def test_handled_broad_and_narrow_silent_handlers_are_fine(self, tmp_path):
        source = """\
            import logging

            log = logging.getLogger(__name__)

            def tolerant(fn):
                try:
                    return fn()
                except Exception as exc:
                    log.warning("fn failed: %s", exc)
                    return None

            def narrow(path):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            """
        assert lint_fixture(tmp_path, "repro/search/fine.py", source,
                            rules=["exception-hygiene"]) == []

    def test_key_names_the_enclosing_scope(self, tmp_path):
        # Same shape in two functions → two distinct baseline keys, and
        # line churn does not change either of them.
        source = """\
            def first(fn):
                try:
                    fn()
                except Exception:
                    pass

            def second(fn):
                try:
                    fn()
                except Exception:
                    pass
            """
        findings = lint_fixture(tmp_path, "repro/search/twice.py", source,
                                rules=["exception-hygiene"])
        assert {f.key for f in findings} == {"silent:first", "silent:second"}


class TestBaseline:
    def test_round_trip_and_stale_detection(self, tmp_path):
        findings = lint_fixture(tmp_path, "repro/search/stateful.py", "_CACHE = {}\n",
                                rules=["mutable-global"])
        assert len(findings) == 1
        baseline_path = tmp_path / "baseline.txt"
        save_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert baseline == {findings[0].baseline_key()}

        new, suppressed, stale = apply_baseline(findings, baseline)
        assert new == [] and len(suppressed) == 1 and stale == []

        # Once the finding is fixed, its baseline entry must surface as stale.
        new, suppressed, stale = apply_baseline([], baseline)
        assert new == [] and suppressed == [] and stale == [findings[0].baseline_key()]

    def test_keys_are_line_number_free(self, tmp_path):
        shifted = "\n\n\n_CACHE = {}\n"
        first = lint_fixture(tmp_path, "repro/search/a.py", "_CACHE = {}\n",
                             rules=["mutable-global"])
        second = lint_fixture(tmp_path, "repro/search/a.py", shifted,
                              rules=["mutable-global"])
        assert first[0].line != second[0].line
        assert first[0].baseline_key() == second[0].baseline_key()

    def test_unknown_rule_is_an_error(self):
        with pytest.raises(ValueError, match="unknown rule"):
            make_rules(["no-such-rule"])


class TestLintCli:
    def test_real_tree_is_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")

    def test_json_output_on_bad_fixture(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "search" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("_CACHE = {}\n", encoding="utf-8")
        code = main(
            ["lint", str(bad), "--json", "--baseline", str(tmp_path / "absent.txt")]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["mutable-global"]
        assert payload["findings"][0]["key"] == "_CACHE"
        assert payload["stale_baseline"] == []

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "search" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("_CACHE = {}\n", encoding="utf-8")
        baseline = tmp_path / "baseline.txt"
        assert main(["lint", str(bad), "--write-baseline", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_config_shows_verify_plans_with_provenance(self, capsys):
        assert main(["config", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "verify_plans" in payload["runtime"]
        assert payload["provenance"]["verify_plans"] in ("default", "env", "explicit")


# ---------------------------------------------------------------------------
# Level 2: the plan verifier
# ---------------------------------------------------------------------------


class TestPlanVerifier:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_library_plans_verify(self, name):
        operator = LIBRARY[name]()
        plan = compile_plan(operator, LIBRARY_BINDINGS[name])
        verify_plan(plan)  # must not raise

    def test_wrong_einsum_subscript_names_the_step(self):
        plan = compile_plan(build_operator1(), CONV_BINDING)
        step = next(s for s in plan.steps if isinstance(s, ContractionStep))
        step.subscripts += "Z"  # output gains a label no operand carries
        with pytest.raises(PlanVerificationError) as err:
            verify_plan(plan)
        message = str(err.value)
        assert "Contract" in message and "step" in message
        assert "Z" in message

    def test_out_of_bounds_gather_index(self):
        plan = compile_plan(build_conv2d(), CONV_BINDING)
        step = next(s for s in plan.steps if isinstance(s, UnfoldStep))
        corrupted = np.array(step.gather).copy()
        corrupted[0] = 10_000
        step.gather = corrupted
        with pytest.raises(PlanVerificationError) as err:
            verify_plan(plan)
        message = str(err.value)
        assert "gather" in message and "Unfold" in message

    def test_dropped_backward_recipe(self):
        plan = compile_plan(build_operator1(), CONV_BINDING)
        step = next(s for s in plan.steps if isinstance(s, ContractionStep))
        position = next(p for p, (kind, _) in enumerate(step.operands) if kind == "weight")
        del step.backwards[position]
        with pytest.raises(PlanVerificationError) as err:
            verify_plan(plan)
        assert "no backward recipe" in str(err.value)

    def test_broken_transpose_order(self):
        plan = compile_plan(build_operator1(), CONV_BINDING)
        step = next(s for s in plan.steps if isinstance(s, TransposeStep))
        step.order = (0,) * len(step.order)
        with pytest.raises(PlanVerificationError) as err:
            verify_plan(plan)
        assert "not a permutation" in str(err.value)

    def test_output_shape_mismatch(self):
        plan = compile_plan(build_operator1(), CONV_BINDING)
        plan.output_shape = tuple(extent + 1 for extent in plan.output_shape)
        with pytest.raises(PlanVerificationError, match="declared output shape"):
            verify_plan(plan)


class TestVerifyPlansKnob:
    def test_env_parse_and_provenance(self):
        config = RuntimeConfig.from_env({"REPRO_VERIFY_PLANS": "1"})
        assert config.verify_plans is True
        assert config.provenance_map()["verify_plans"] == "env"
        assert RuntimeConfig.from_env({}).verify_plans is False

    def test_cached_plan_gates_verification(self, monkeypatch):
        import repro.analysis.plan_verifier as pv

        calls = []
        monkeypatch.setattr(pv, "verify_plan", lambda plan: calls.append(plan))
        operator = build_operator1()

        off = RuntimeContext(current().config.with_overrides(verify_plans=False))
        cached_plan(operator, CONV_BINDING, runtime=off)
        assert calls == []

        on = RuntimeContext(current().config.with_overrides(verify_plans=True))
        plan = cached_plan(operator, CONV_BINDING, runtime=on)
        assert calls == [plan]

        # Memoized: a second lookup re-verifies nothing.
        cached_plan(operator, CONV_BINDING, runtime=on)
        assert calls == [plan]


# ---------------------------------------------------------------------------
# RNG threading (the nondeterminism findings fixed in this change)
# ---------------------------------------------------------------------------


class TestContextRngThreading:
    def test_seed_all_makes_randn_reproducible(self):
        seed_all(123)
        a = Tensor.randn((4, 3))
        seed_all(123)
        b = Tensor.randn((4, 3))
        np.testing.assert_array_equal(a.data, b.data)

    def test_default_rng_is_context_owned(self):
        context = RuntimeContext(current().config.with_overrides(seed=99))
        with context.activate(adopt=False):
            assert default_rng() is context.param_rng
            first = default_rng().normal(size=3)
        fresh = np.random.default_rng(99).normal(size=3)
        np.testing.assert_array_equal(first, fresh)

    def test_contexts_have_independent_param_streams(self):
        one = RuntimeContext(current().config.with_overrides(seed=7))
        two = RuntimeContext(current().config.with_overrides(seed=7))
        with one.activate(adopt=False):
            draw_one = Tensor.randn((5,)).data
        with two.activate(adopt=False):
            draw_two = Tensor.randn((5,)).data
        np.testing.assert_array_equal(draw_one, draw_two)

    def test_mcts_inherits_context_seed(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = default_options_for(spec, coefficients=[], max_depth=3)
        context = RuntimeContext(current().config.with_overrides(seed=41))
        with context.activate(adopt=False):
            inherited = MCTS(spec=spec, options=options, reward_fn=lambda op: 0.0,
                             config=MCTSConfig(seed=None))
        explicit = MCTS(spec=spec, options=options, reward_fn=lambda op: 0.0,
                        config=MCTSConfig(seed=41))
        assert inherited._rng.random() == explicit._rng.random()

    def test_explicit_seed_still_wins(self):
        spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        options = default_options_for(spec, coefficients=[], max_depth=3)
        context = RuntimeContext(current().config.with_overrides(seed=41))
        with context.activate(adopt=False):
            search = MCTS(spec=spec, options=options, reward_fn=lambda op: 0.0,
                          config=MCTSConfig(seed=5))
        assert search._rng.random() == random.Random(5).random()
