"""Tests for layers, optimizers, the trainer and the backbone models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.data import DataLoader, SyntheticImageDataset, SyntheticLanguageDataset
from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, LayerNorm, Linear, MaxPool2d
from repro.nn.models import (
    MODEL_BUILDERS,
    densenet121,
    efficientnet_v2_s,
    gpt2_tiny,
    resnet18,
    resnet34,
    resnext29,
)
from repro.nn.models.common import RecordingFactory
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam, CosineSchedule
from repro.nn.tensor import Tensor
from repro.nn.trainer import Trainer, TrainingConfig


class TestLayers:
    def test_linear_shapes_and_grads(self, rng):
        layer = Linear(6, 4)
        out = layer(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)
        F.sum(out).backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None

    def test_conv2d_matches_naive_convolution(self, rng):
        layer = Conv2d(2, 3, kernel_size=3, rng=rng)
        x = rng.normal(size=(1, 2, 5, 5))
        out = layer(Tensor(x)).data
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        reference = np.zeros((1, 3, 5, 5))
        for kh in range(3):
            for kw in range(3):
                reference += np.einsum(
                    "nchw,dc->ndhw",
                    padded[:, :, kh : kh + 5, kw : kw + 5],
                    layer.weight.data[:, :, kh, kw],
                )
        np.testing.assert_allclose(out, reference, rtol=1e-9)

    def test_conv2d_stride_and_groups(self, rng):
        layer = Conv2d(4, 4, kernel_size=3, stride=2, groups=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 4, 4, 4)

    def test_conv2d_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, kernel_size=3, groups=2)

    def test_batchnorm_normalizes_and_tracks_running_stats(self, rng):
        layer = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=2.0, size=(8, 3, 4, 4)))
        out = layer(x)
        assert abs(float(out.data.mean())) < 0.1
        assert layer.running_mean.mean() > 0  # moved toward the data mean
        layer.eval()
        eval_out = layer(x)
        assert eval_out.shape == x.shape

    def test_layernorm_last_axis(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(2, 5, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-7)

    def test_pooling_layers(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)))
        assert MaxPool2d(2)(x).shape == (1, 2, 2, 2)
        assert AvgPool2d(2)(x).shape == (1, 2, 2, 2)
        avg = AvgPool2d(2)(x).data
        np.testing.assert_allclose(avg[0, 0, 0, 0], x.data[0, 0, :2, :2].mean())


class TestModuleSystem:
    def test_named_parameters_traverses_containers(self):
        model = Sequential(Linear(3, 4), Linear(4, 2))
        names = [name for name, _ in model.named_parameters()]
        assert any("layers.0" in name for name in names)
        assert len(model.parameters()) == 4

    def test_state_dict_roundtrip(self, rng):
        model = Linear(3, 3)
        state = model.state_dict()
        model.weight.data = rng.normal(size=(3, 3))
        model.load_state_dict(state)
        np.testing.assert_allclose(model.weight.data, state["weight"])

    def test_train_eval_propagates(self):
        model = Sequential(Linear(3, 3), Sequential(Linear(3, 3)))
        model.eval()
        assert all(not module.training for module in model.modules())


class TestOptimizers:
    def _quadratic_step(self, optimizer_factory):
        param = Parameter(np.array([4.0]))
        optimizer = optimizer_factory([param])
        for _ in range(50):
            loss = F.sum(F.mul(param, param))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        return abs(float(param.data[0]))

    def test_sgd_converges_on_quadratic(self):
        assert self._quadratic_step(lambda p: SGD(p, lr=0.1, momentum=0.0)) < 0.1

    def test_adam_converges_on_quadratic(self):
        assert self._quadratic_step(lambda p: Adam(p, lr=0.3)) < 0.5

    def test_cosine_schedule_decays(self):
        optimizer = SGD([Parameter(np.zeros(1))], lr=1.0)
        schedule = CosineSchedule(optimizer, total_steps=10)
        rates = [schedule.step() for _ in range(10)]
        assert rates[-1] < rates[0]


class TestDataAndTrainer:
    def test_synthetic_image_dataset_is_deterministic(self):
        a = SyntheticImageDataset(seed=3, num_samples=32)
        b = SyntheticImageDataset(seed=3, num_samples=32)
        np.testing.assert_allclose(a.images, b.images)
        assert a.images.shape == (32, 3, 8, 8)

    def test_dataloader_covers_dataset(self):
        dataset = SyntheticImageDataset(num_samples=37)
        loader = DataLoader(dataset, batch_size=8)
        assert sum(len(batch) for batch in loader) == 37

    def test_language_dataset_targets_are_shifted_tokens(self):
        dataset = SyntheticLanguageDataset(num_sequences=16, sequence_length=8)
        assert dataset.tokens.shape == (16, 8)
        assert dataset.targets.shape == (16, 8)

    def test_trainer_improves_small_classifier(self):
        dataset = SyntheticImageDataset(num_samples=96, image_size=8, noise=0.2)
        train_set, val_set = dataset.split()
        model = Sequential(Linear(3 * 8 * 8, 10))

        class Flattening(Module):
            def __init__(self, inner):
                super().__init__()
                self.inner = inner

            def forward(self, x):
                return self.inner(F.reshape(x, (x.shape[0], -1)))

        trainer = Trainer(Flattening(model), TrainingConfig(max_steps=30, eval_every=15))
        result = trainer.fit_classifier(train_set, val_set)
        assert result.best_accuracy > 0.3  # well above the 10% chance level

    def test_trainer_early_stops(self):
        dataset = SyntheticImageDataset(num_samples=64)
        train_set, val_set = dataset.split()

        class Zero(Module):
            def forward(self, x):
                return Tensor(np.zeros((x.shape[0], 10)))

        config = TrainingConfig(max_steps=40, eval_every=5, early_stop_threshold=0.99)
        result = Trainer(Zero(), config).fit_classifier(train_set, val_set)
        assert result.early_stopped
        assert result.steps < 40


class TestBackboneModels:
    @pytest.mark.parametrize("builder", [resnet18, resnet34, densenet121, resnext29, efficientnet_v2_s])
    def test_vision_models_forward_shape(self, builder, rng):
        model = builder()
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 10)

    def test_vision_models_are_trainable(self, rng):
        model = resnet18()
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        F.sum(out).backward()
        grads = [p.grad for p in model.parameters()]
        assert sum(g is not None for g in grads) > len(grads) // 2

    def test_gpt2_forward_and_slots(self, rng):
        model = gpt2_tiny()
        tokens = rng.integers(0, 64, size=(2, 16))
        assert model(tokens).shape == (2, 16, 64)
        assert len(model.projection_slots()) == 6  # 2 layers x QKV

    def test_recording_factory_collects_slots(self):
        recorder = RecordingFactory()
        resnet18(conv_factory=recorder)
        assert len(recorder.slots) > 10
        assert any(slot.stride == 2 for slot in recorder.slots)

    def test_model_registry_complete(self):
        assert set(MODEL_BUILDERS) == {
            "resnet18", "resnet34", "densenet121", "resnext29_2x64d",
            "efficientnet_v2_s", "gpt2",
        }
