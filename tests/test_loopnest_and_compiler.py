"""Tests for the loop-nest lowering, materialized reduction and the compiler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler import (
    A100,
    MOBILE_CPU,
    MOBILE_GPU,
    AnalyticalCostModel,
    InductorBackend,
    Schedule,
    TVMBackend,
    default_schedule,
    loopnest_for_slot,
    schedule_space,
)
from repro.compiler.targets import target_by_name
from repro.core.library import (
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K1,
    N,
    POOL,
    SHRINK,
    W,
    build_conv2d,
    build_operator1,
    build_operator2,
)
from repro.experiments.ablation_materialization import build_figure4_operator
from repro.nn.models.common import ConvSlot

CONV_BINDING = {N: 1, C_IN: 64, C_OUT: 64, H: 14, W: 14, K1: 3, GROUPS: 4, SHRINK: 2}


class TestLoopNestLowering:
    def test_conv_macs_match_formula(self):
        program = lower_to_loopnest(build_conv2d(), CONV_BINDING)
        assert program.macs == 64 * 64 * 14 * 14 * 9

    def test_figure4_materialized_macs(self):
        """The paper's Figure 4: k*H naive vs (1 + k/s)*H materialized."""
        operator = build_figure4_operator()
        binding = {H: 1024, POOL: 4, K1: 5}
        naive = lower_to_loopnest(operator, binding, materialize=False)
        staged = lower_to_loopnest(operator, binding, materialize=True)
        assert naive.macs == 5 * 1024
        assert staged.macs == 1024 + (1024 // 4) * 5
        assert staged.materialization_gain > 2.0

    def test_operator1_materialization_beats_naive(self):
        program = lower_to_loopnest(build_operator1(), CONV_BINDING)
        assert program.macs < program.naive_macs
        assert len(program.stages) >= 2

    def test_materialization_never_hurts(self):
        for operator in (build_conv2d(), build_operator1(), build_operator2()):
            naive = lower_to_loopnest(operator, CONV_BINDING, materialize=False)
            staged = lower_to_loopnest(operator, CONV_BINDING, materialize=True)
            assert staged.macs <= naive.macs

    def test_slot_loopnest_matches_slot_macs(self):
        slot = ConvSlot("conv", 32, 64, 14, 3, 1)
        program = loopnest_for_slot(slot, batch=2)
        assert program.macs == slot.macs(2)
        assert program.parameter_count == slot.parameters()


class TestCostModel:
    def test_more_macs_cost_more(self):
        small = loopnest_for_slot(ConvSlot("s", 32, 32, 14, 3, 1))
        large = loopnest_for_slot(ConvSlot("l", 128, 128, 28, 3, 1))
        model = AnalyticalCostModel()
        schedule = default_schedule()
        assert model.program_latency(large, MOBILE_CPU, schedule) > model.program_latency(
            small, MOBILE_CPU, schedule
        )

    def test_faster_hardware_is_faster(self):
        program = loopnest_for_slot(ConvSlot("c", 256, 256, 14, 3, 1))
        model = AnalyticalCostModel()
        schedule = default_schedule()
        assert model.program_latency(program, A100, schedule) < model.program_latency(
            program, MOBILE_CPU, schedule
        )

    def test_int8_speedup(self):
        program = loopnest_for_slot(ConvSlot("c", 256, 256, 14, 3, 1))
        fp32 = AnalyticalCostModel()
        int8 = AnalyticalCostModel(element_bytes=1, datatype_speedup=MOBILE_CPU.int8_speedup)
        schedule = default_schedule()
        assert int8.program_latency(program, MOBILE_CPU, schedule) < fp32.program_latency(
            program, MOBILE_CPU, schedule
        )

    def test_target_lookup(self):
        assert target_by_name("a100") is A100
        with pytest.raises(KeyError):
            target_by_name("tpu")

    def test_schedule_space_is_finite_and_diverse(self):
        schedules = list(schedule_space())
        assert len(schedules) > 20
        assert len({s.tile for s in schedules}) >= 4


class TestBackends:
    def test_tvm_tuning_beats_default_schedule(self):
        program = loopnest_for_slot(ConvSlot("c", 256, 256, 14, 3, 1))
        model = AnalyticalCostModel()
        default_latency = model.program_latency(program, MOBILE_CPU, default_schedule())
        tuned = TVMBackend(trials=64).compile(program, MOBILE_CPU)
        assert tuned.latency_seconds <= default_latency * 1.001

    def test_inductor_template_matches_standard_conv(self):
        program = loopnest_for_slot(ConvSlot("c", 256, 256, 14, 3, 1))
        result = InductorBackend().compile(program, A100)
        assert not result.used_fallback

    def test_inductor_falls_back_for_multistage_operators(self):
        program = lower_to_loopnest(build_operator1(), CONV_BINDING)
        result = InductorBackend().compile(program, MOBILE_CPU)
        assert result.used_fallback

    def test_fallback_penalty_larger_on_mobile(self):
        """Reproduces the paper's platform-dependent TorchInductor behaviour."""
        program = lower_to_loopnest(build_operator2(), CONV_BINDING)
        backend = InductorBackend()
        tvm = TVMBackend(trials=48)
        mobile_ratio = (
            backend.compile(program, MOBILE_CPU).latency_seconds
            / tvm.compile(program, MOBILE_CPU).latency_seconds
        )
        a100_ratio = (
            backend.compile(program, A100).latency_seconds
            / tvm.compile(program, A100).latency_seconds
        )
        assert mobile_ratio > a100_ratio

    @pytest.mark.parametrize("target", [MOBILE_CPU, MOBILE_GPU, A100])
    def test_fewer_macs_is_faster_when_tuned(self, target):
        conv = loopnest_for_slot(ConvSlot("c", 256, 256, 14, 3, 1))
        grouped = loopnest_for_slot(ConvSlot("g", 256, 256, 14, 3, 1, groups=4))
        backend = TVMBackend(trials=48)
        assert backend.compile(grouped, target).latency_seconds < backend.compile(
            conv, target
        ).latency_seconds


@settings(max_examples=15, deadline=None)
@given(
    channels=st.sampled_from([32, 64, 128]),
    spatial=st.sampled_from([7, 14, 28]),
    tile=st.sampled_from([16, 32, 64]),
)
def test_property_latency_positive_and_monotone_in_macs(channels, spatial, tile):
    model = AnalyticalCostModel()
    schedule = Schedule(tile=tile)
    small = loopnest_for_slot(ConvSlot("a", channels, channels, spatial, 3, 1))
    double = loopnest_for_slot(ConvSlot("b", 2 * channels, channels, spatial, 3, 1))
    latency_small = model.program_latency(small, MOBILE_GPU, schedule)
    latency_double = model.program_latency(double, MOBILE_GPU, schedule)
    assert latency_small > 0
    assert latency_double >= latency_small
