"""Tests for the canonicalization rules (Section 6)."""

from __future__ import annotations

from repro.core.canonicalize import (
    CanonicalizationEngine,
    canonical_commuting_order,
    no_expand_of_reduction,
    no_merge_above_split,
    no_merge_above_unfold,
    no_shift_chains,
    no_split_undoing_merge,
    stride_paired_with_one_to_many,
    unfold_single_reduction,
)
from repro.core.pgraph import PGraph
from repro.core.primitives import Expand, Merge, Reduce, Share, Shift, Split, Stride, Unfold
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import coefficient, primary

A = primary("A", default=8)
B = coefficient("b", default=2)
C = coefficient("c", default=3)
H = primary("H", default=12)


def _root(output, input_shape) -> PGraph:
    return PGraph.root(ShapeSpec.of(output), ShapeSpec.of(input_shape))


class TestMergeSplitRules:
    def test_merge_above_split_rejected(self):
        """Figure 3a: the Split-then-Merge form is not canonical."""
        graph = _root([Size.of(A) * B, C], [A, Size.of(B) * C])
        graph = Split().apply(graph, (graph.frontier[0], graph.frontier[1]))
        produced = graph.frontier[0]
        assert not no_merge_above_split(graph, Merge(block=Size.of(B) * C), (produced,))

    def test_merge_elsewhere_allowed(self):
        graph = _root([Size.of(A) * B, C], [A, B, C])
        assert no_merge_above_split(graph, Merge(block=Size.of(B)), (graph.frontier[0],))

    def test_split_undoing_merge_rejected(self):
        graph = _root([Size.of(A) * B], [Size.of(A) * B])
        graph = Merge(block=Size.of(B)).apply(graph, (graph.frontier[0],))
        outer, inner = graph.last_application.produced
        assert not no_split_undoing_merge(graph, Split(), (outer, inner))
        # Recombining in the swapped order is a genuine pixel-shuffle, allowed.
        assert no_split_undoing_merge(graph, Split(), (inner, outer))

    def test_merge_above_unfold_rejected(self):
        graph = _root([Size.of(A) * B], [Size.of(A) * B, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        window = graph.frontier[-1]
        graph = Unfold().apply(graph, (graph.frontier[0], window))
        unfolded = graph.frontier[0]
        assert not no_merge_above_unfold(graph, Merge(block=Size.of(B)), (unfolded,))


class TestContractionRules:
    def test_expand_of_unshared_reduction_rejected(self):
        graph = _root([A], [A])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        reduction = graph.frontier[-1]
        assert not no_expand_of_reduction(graph, Expand(), (reduction,))

    def test_expand_of_shared_reduction_allowed(self):
        """The low-rank pattern: a reduction living only on weights is fine."""
        graph = _root([A], [A])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        reduction = graph.frontier[-1]
        graph = Share(new_weight=True).apply(graph, (reduction,))
        assert no_expand_of_reduction(graph, Expand(), (reduction,))

    def test_unfold_with_two_reductions_rejected(self):
        graph = _root([A], [A])
        graph = Reduce(size=Size.of(B)).apply(graph, ())
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        r1, r2 = graph.frontier[-2], graph.frontier[-1]
        assert not unfold_single_reduction(graph, Unfold(), (r1, r2))

    def test_unfold_with_one_reduction_allowed(self):
        graph = _root([A], [A])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        assert unfold_single_reduction(graph, Unfold(), (graph.frontier[0], graph.frontier[-1]))


class TestViewHygieneRules:
    def test_shift_chain_rejected(self):
        graph = _root([A], [A])
        graph = Shift(amount=1).apply(graph, (graph.frontier[0],))
        assert not no_shift_chains(graph, Shift(amount=1), (graph.frontier[0],))

    def test_stride_requires_one_to_many_budget(self):
        graph = _root([A], [A])
        assert stride_paired_with_one_to_many(graph, Stride(stride=Size.of(B)), (graph.frontier[0],))
        graph = Stride(stride=Size.of(B)).apply(graph, (graph.frontier[0],))
        assert not stride_paired_with_one_to_many(
            graph, Stride(stride=Size.of(B)), (graph.frontier[0],)
        )


class TestCommutingOrder:
    def test_view_after_commuting_contraction_rejected(self):
        """Figure 3b: 1-to-1 views are pushed below contractions."""
        graph = _root([A, H], [A, H, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        # A Shift on an unrelated output dim commutes with the Reduce, so the
        # canonical order is Shift first.
        assert not canonical_commuting_order(graph, Shift(amount=1), (graph.frontier[0],))

    def test_dependent_view_allowed(self):
        graph = _root([A, H], [A, H, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        reduction = graph.frontier[-1]
        # Touching what the Reduce produced does not commute, so it is allowed.
        assert canonical_commuting_order(graph, Share(new_weight=True), (reduction,))

    def test_contraction_after_view_allowed(self):
        graph = _root([A, H], [A, H, C])
        graph = Shift(amount=1).apply(graph, (graph.frontier[0],))
        assert canonical_commuting_order(graph, Reduce(size=Size.of(C)), ())


class TestEngine:
    def test_engine_combines_rules(self):
        engine = CanonicalizationEngine()
        graph = _root([A], [A])
        graph = Shift(amount=1).apply(graph, (graph.frontier[0],))
        assert not engine.is_canonical(graph, Shift(amount=1), (graph.frontier[0],))

    def test_engine_is_extensible(self):
        engine = CanonicalizationEngine()
        engine.add_rule(lambda graph, primitive, operands: not isinstance(primitive, Shift))
        graph = _root([A], [A])
        assert not engine.is_canonical(graph, Shift(amount=1), (graph.frontier[0],))
        assert engine.is_canonical(graph, Reduce(size=Size.of(C)), ())
