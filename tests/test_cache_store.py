"""Crash/contention harness for the process-safe shared cache store.

This file is the acceptance bar of the store (ROADMAP open item 2, in the
style of the Theano compile-lock test contract):

* lock semantics — timeout, forced unlock, stale dead-pid recovery — against
  *real* holder processes (the ``lock_holder`` fixture in ``conftest.py``);
* append/merge store format — deltas join, existing entries win, the LRU cap
  compacts, legacy whole-pickle snapshots migrate in place;
* real multiprocess contention — N writer processes race one store and every
  writer's delta survives (the old whole-pickle snapshot kept only the last
  writer's);
* crash injection — a writer SIGKILLed mid-append (``crashed_writer``) leaves
  the store loadable and its lock recoverable within the timeout;
* serial-vs-concurrent parity — two concurrent ``repro run``s sharing one
  store produce the serial run's fingerprint and both publish their deltas.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro.results import ArtifactStore
from repro.runtime import (
    CACHE_FORMAT_VERSION,
    CacheLockTimeout,
    CacheSet,
    FileLock,
    SharedCacheStore,
    SnapshotStatus,
)
from repro.runtime.store import FRAME_HEADER, FRAME_MAGIC

REPO_ROOT = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# FileLock semantics
# ---------------------------------------------------------------------------


class TestFileLock:
    def test_acquire_records_holder_info_and_release_frees(self, tmp_path):
        lock = FileLock(tmp_path / "store.lock")
        lock.acquire()
        assert lock.is_held()
        info = lock.read_info()
        assert info["pid"] == os.getpid()
        assert lock.last_wait < 1.0
        lock.release()
        assert not lock.is_held()
        assert lock.read_info() is None
        assert not (tmp_path / "store.lock").exists()

    def test_contended_acquire_times_out_then_succeeds_after_release(
        self, tmp_path, lock_holder
    ):
        lock_path = tmp_path / "store.lock"
        holder = lock_holder(lock_path)
        waiter = FileLock(lock_path)
        with pytest.raises(CacheLockTimeout) as excinfo:
            waiter.acquire(timeout=0.3)
        assert excinfo.value.waited >= 0.3
        assert str(holder.pid) in str(excinfo.value)
        holder.release()
        waiter.acquire(timeout=10.0)
        assert waiter.is_held()
        waiter.release()

    def test_forced_unlock_breaks_a_live_holder(self, tmp_path, lock_holder):
        lock_path = tmp_path / "store.lock"
        holder = lock_holder(lock_path)
        usurper = FileLock(lock_path)
        assert usurper.break_lock()  # unconditional manual unlock
        usurper.acquire(timeout=1.0)
        assert usurper.read_info()["pid"] == os.getpid()
        usurper.release()
        holder.release()  # the child's own release is tolerated afterwards

    def test_stale_dead_pid_lock_is_broken_within_the_timeout(
        self, tmp_path, lock_holder
    ):
        lock_path = tmp_path / "store.lock"
        holder = lock_holder(lock_path)
        holder.kill()  # SIGKILL: the lock directory survives, its owner dies
        assert (lock_path / "info").exists()
        waiter = FileLock(lock_path)
        waiter.acquire(timeout=5.0)  # dead-pid probe breaks it immediately
        assert waiter.breaks == 1
        assert waiter.last_wait < 5.0
        waiter.release()

    def test_conditional_break_aborts_when_the_holder_changed(self, tmp_path):
        lock = FileLock(tmp_path / "store.lock")
        lock.acquire()
        stale_view = dict(lock.read_info())
        # The holder "changed" since stale_view was read: re-arm the info.
        with open(lock.info_path, "w", encoding="utf-8") as handle:
            json.dump({**stale_view, "time": stale_view["time"] + 99.0}, handle)
        assert not FileLock(lock.path).break_lock(expected=stale_view)
        assert lock.read_info() is not None
        lock.release()

    def test_reentrant_acquire_is_an_error(self, tmp_path):
        lock = FileLock(tmp_path / "store.lock")
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()


# ---------------------------------------------------------------------------
# Store format: append/merge, repair, migration, cap
# ---------------------------------------------------------------------------


class TestSharedCacheStore:
    def test_publish_then_load_round_trip(self, tmp_path):
        path = tmp_path / "store.pkl"
        status = SharedCacheStore(path).publish({"reward": {("c", "s"): 1.5}})
        assert status.status == "saved"
        assert status.entries == {"reward": 1}
        entries, load_status = SharedCacheStore(path).load()
        assert load_status.status == "loaded"
        assert entries == {"reward": {("c", "s"): 1.5}}
        assert load_status.store_entries == {"reward": 1}

    def test_second_publisher_merges_instead_of_overwriting(self, tmp_path):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {"a": 1.0}})
        status = SharedCacheStore(path).publish({"reward": {"b": 2.0}})
        assert status.status == "merged"
        assert status.entries == {"reward": 1}
        assert status.store_entries == {"reward": 2}
        entries, _ = SharedCacheStore(path).load()
        assert entries["reward"] == {"a": 1.0, "b": 2.0}

    def test_existing_store_entries_win_over_republished_keys(self, tmp_path):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {"k": 1.0}})
        status = SharedCacheStore(path).publish({"reward": {"k": 2.0, "fresh": 3.0}})
        assert status.entries == {"reward": 1}  # only the genuinely new key
        entries, _ = SharedCacheStore(path).load()
        assert entries["reward"]["k"] == 1.0

    def test_cap_compacts_to_the_most_recent_entries(self, tmp_path):
        path = tmp_path / "store.pkl"
        store = SharedCacheStore(path)
        for index in range(5):
            store.publish({"reward": {f"sig{index}": float(index)}}, max_entries=3)
        entries, status = SharedCacheStore(path).load()
        assert len(entries["reward"]) == 3
        assert set(entries["reward"]) == {"sig2", "sig3", "sig4"}  # newest survive
        assert status.store_entries == {"reward": 3}

    def test_torn_tail_is_read_around_and_repaired_by_the_next_publish(self, tmp_path):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {"good": 1.0}})
        with open(path, "ab") as handle:
            handle.write(b"\x00torn garbage from a crashed writer")
        entries, status = SharedCacheStore(path).load()
        assert status.status == "loaded"
        assert "torn tail" in status.error
        assert entries["reward"] == {"good": 1.0}
        # The next publish truncates the tail before appending.
        SharedCacheStore(path).publish({"reward": {"after": 2.0}})
        entries, status = SharedCacheStore(path).load()
        assert status.error == ""
        assert entries["reward"] == {"good": 1.0, "after": 2.0}

    def test_wholly_torn_store_reports_unreadable_and_recovers(self, tmp_path):
        path = tmp_path / "store.pkl"
        path.write_bytes(FRAME_MAGIC + b"\x00\x00")  # torn before any frame
        entries, status = SharedCacheStore(path).load()
        assert entries is None and status.status == "unreadable"
        publish = SharedCacheStore(path).publish({"reward": {"k": 1.0}})
        assert publish.ok
        entries, status = SharedCacheStore(path).load()
        assert status.status == "loaded" and entries["reward"] == {"k": 1.0}

    def test_wrong_version_frames_report_version_mismatch(self, tmp_path):
        path = tmp_path / "store.pkl"
        payload = pickle.dumps({"version": 999, "caches": {"reward": {"k": 1.0}}})
        path.write_bytes(
            FRAME_HEADER.pack(FRAME_MAGIC, len(payload), zlib.crc32(payload)) + payload
        )
        entries, status = SharedCacheStore(path).load()
        assert entries is None
        assert status.status == "version-mismatch"
        assert status.snapshot_version == 999

    def test_legacy_whole_pickle_snapshot_loads_and_migrates_in_place(self, tmp_path):
        path = tmp_path / "store.pkl"
        path.write_bytes(
            pickle.dumps(
                {"version": CACHE_FORMAT_VERSION, "caches": {"reward": {"old": 1.0}}}
            )
        )
        entries, status = SharedCacheStore(path).load()
        assert status.status == "loaded" and entries["reward"] == {"old": 1.0}
        # First publish rewrites the legacy pickle as a framed store.
        SharedCacheStore(path).publish({"reward": {"new": 2.0}})
        assert path.read_bytes().startswith(FRAME_MAGIC)
        entries, _ = SharedCacheStore(path).load()
        assert entries["reward"] == {"old": 1.0, "new": 2.0}

    def test_read_new_entries_is_incremental(self, tmp_path):
        path = tmp_path / "store.pkl"
        reader = SharedCacheStore(path)
        assert reader.read_new_entries() == {}
        SharedCacheStore(path).publish({"reward": {"a": 1.0}})
        assert reader.read_new_entries() == {"reward": {"a": 1.0}}
        SharedCacheStore(path).publish({"reward": {"b": 2.0}})
        assert reader.read_new_entries() == {"reward": {"b": 2.0}}
        assert reader.read_new_entries() == {}

    def test_read_new_entries_survives_a_concurrent_compaction(self, tmp_path):
        path = tmp_path / "store.pkl"
        reader = SharedCacheStore(path)
        store = SharedCacheStore(path)
        for index in range(4):
            store.publish({"reward": {f"sig{index}": float(index)}})
        assert len(reader.read_new_entries()["reward"]) == 4
        # Another process compacts the store under the reader's feet.
        SharedCacheStore(path).publish({}, max_entries=2)
        assert len(reader.read_new_entries().get("reward", {})) == 2

    def test_entry_counts_and_clear(self, tmp_path):
        path = tmp_path / "store.pkl"
        store = SharedCacheStore(path)
        assert store.entry_counts() is None
        store.publish({"reward": {"a": 1.0}, "compile": {"b": 2.0}})
        assert store.entry_counts() == {"reward": 1, "compile": 1}
        assert store.clear()
        assert not path.exists()
        assert not store.clear()  # second clear: nothing left, no error


# ---------------------------------------------------------------------------
# CacheSet integration and SnapshotStatus surface
# ---------------------------------------------------------------------------


class TestCacheSetIntegration:
    def test_locked_store_reports_locked_on_save_and_load(self, tmp_path, lock_holder):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {"warm": 1.0}})
        lock_holder(str(path) + ".lock")
        caches = CacheSet()
        caches.reward.put("fresh", 2.0)
        saved = caches.save_snapshot(str(path), lock_timeout=0.2)
        assert saved.status == "locked" and not saved.ok
        assert "locked" in saved.summary()
        loaded = caches.load_snapshot(str(path), lock_timeout=0.2)
        assert loaded.status == "locked" and not loaded.ok
        assert len(caches.reward) == 1  # nothing was merged in

    def test_merged_save_surfaces_delta_and_store_totals(self, tmp_path):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {"other": 1.0}})
        caches = CacheSet()
        caches.reward.put("mine", 2.0)
        status = caches.save_snapshot(str(path))
        assert status.status == "merged" and status.ok
        assert status.entries == {"reward": 1}
        assert status.store_entries["reward"] == 2
        assert "merged (reward=1" in status.summary()

    def test_snapshot_status_round_trips_through_to_dict(self):
        status = SnapshotStatus(
            "save", "/tmp/x", "merged",
            entries={"reward": 1}, store_entries={"reward": 5}, lock_wait_seconds=0.25,
        )
        assert SnapshotStatus(**status.to_dict()) == status
        assert json.loads(json.dumps(status.to_dict())) == status.to_dict()


# ---------------------------------------------------------------------------
# Real multiprocess contention
# ---------------------------------------------------------------------------

_WRITERS = 6
_ENTRIES_PER_WRITER = 5


def _contending_writer(store_path: str, index: int, barrier, outcomes) -> None:
    """Child body: publish this writer's delta the moment everyone is ready."""
    store = SharedCacheStore(store_path, lock_timeout=30.0)
    barrier.wait(30.0)
    entries = {
        "reward": {
            (f"writer-{index}", f"sig-{j}"): float(index * 100 + j)
            for j in range(_ENTRIES_PER_WRITER)
        }
    }
    status = store.publish(entries)
    outcomes.put((index, status.status, status.entries.get("reward", 0)))


class TestMultiprocessContention:
    def test_n_concurrent_writers_all_deltas_survive(self, tmp_path):
        """The acceptance scenario: N writers × one store, nothing lost."""
        path = tmp_path / "store.pkl"
        mp = multiprocessing.get_context("fork")
        barrier = mp.Barrier(_WRITERS)
        outcomes = mp.Queue()
        workers = [
            mp.Process(
                target=_contending_writer, args=(str(path), index, barrier, outcomes)
            )
            for index in range(_WRITERS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(60.0)
            assert worker.exitcode == 0
        results = [outcomes.get(timeout=10.0) for _ in range(_WRITERS)]
        statuses = sorted(status for _, status, _ in results)
        # Exactly one writer found the store empty; everyone else merged.
        assert statuses == ["merged"] * (_WRITERS - 1) + ["saved"]
        assert all(added == _ENTRIES_PER_WRITER for _, _, added in results)

        entries, status = SharedCacheStore(path).load()
        assert status.status == "loaded"
        assert len(entries["reward"]) == _WRITERS * _ENTRIES_PER_WRITER
        for index in range(_WRITERS):
            for j in range(_ENTRIES_PER_WRITER):
                assert entries["reward"][(f"writer-{index}", f"sig-{j}")] == float(
                    index * 100 + j
                )


# ---------------------------------------------------------------------------
# Crash injection
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    def test_sigkill_mid_write_leaves_store_loadable_and_lock_recoverable(
        self, tmp_path, crashed_writer
    ):
        path = tmp_path / "store.pkl"
        SharedCacheStore(path).publish({"reward": {("pre", "crash"): 1.0}})
        dead_pid = crashed_writer(path)

        # The crash left a dead-pid lock and a torn trailing frame.
        lock_dir = Path(str(path) + ".lock")
        assert lock_dir.is_dir()
        assert FileLock(lock_dir).read_info()["pid"] == dead_pid

        # Loading recovers the lock (dead-pid break, well within the timeout)
        # and reads everything up to the torn tail.
        entries, status = SharedCacheStore(path, lock_timeout=5.0).load()
        assert status.status == "loaded"
        assert "torn tail" in status.error
        assert entries["reward"] == {("pre", "crash"): 1.0}

        # Publishing repairs the tail; subsequent loads are pristine.
        publish = SharedCacheStore(path, lock_timeout=5.0).publish(
            {"reward": {("post", "crash"): 2.0}}
        )
        assert publish.status == "merged"
        entries, status = SharedCacheStore(path).load()
        assert status.error == ""
        assert entries["reward"] == {("pre", "crash"): 1.0, ("post", "crash"): 2.0}

    def test_crash_before_any_complete_frame_still_recovers(
        self, tmp_path, crashed_writer
    ):
        path = tmp_path / "store.pkl"
        path.parent.mkdir(parents=True, exist_ok=True)
        crashed_writer(path)  # the torn frame is the *only* content
        entries, status = SharedCacheStore(path, lock_timeout=5.0).load()
        assert entries is None and status.status == "unreadable"
        publish = SharedCacheStore(path, lock_timeout=5.0).publish(
            {"reward": {"fresh": 1.0}}
        )
        assert publish.status in ("saved", "merged")
        entries, status = SharedCacheStore(path).load()
        assert status.status == "loaded" and entries["reward"] == {"fresh": 1.0}


# ---------------------------------------------------------------------------
# Serial vs concurrent CLI parity (end to end, cheap experiment)
# ---------------------------------------------------------------------------


def _run_command(results_dir: Path) -> list[str]:
    return [
        sys.executable, "-m", "repro.cli",
        "run", "figure10", "--smoke", "--train-steps", "2",
        "--results-dir", str(results_dir),
    ]


class TestSerialVsConcurrentParity:
    def test_two_concurrent_runs_match_the_serial_fingerprint_and_merge(self, tmp_path):
        env = {**os.environ, "PYTHONPATH": "src"}
        serial_dir, shared_dir = tmp_path / "serial", tmp_path / "shared"

        subprocess.run(
            _run_command(serial_dir),
            cwd=REPO_ROOT, env=env, check=True, capture_output=True, text=True,
        )
        (serial_record,) = ArtifactStore(serial_dir).list_runs()

        # A sentinel another process already published: the old whole-pickle
        # snapshot was last-writer-wins, the store must keep it.
        shared_store_path = ArtifactStore(shared_dir).cache_path
        SharedCacheStore(shared_store_path).publish(
            {"reward": {("foreign", "sentinel"): 42.0}}
        )

        workers = [
            subprocess.Popen(
                _run_command(shared_dir),
                cwd=REPO_ROOT, env=env,
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for _ in range(2)
        ]
        for worker in workers:
            _, stderr = worker.communicate(timeout=300)
            assert worker.returncode == 0, stderr

        records = ArtifactStore(shared_dir).list_runs()
        assert [record.status for record in records] == ["completed", "completed"]
        assert {record.fingerprint() for record in records} == {
            serial_record.fingerprint()
        }

        entries, status = SharedCacheStore(shared_store_path).load()
        assert status.status == "loaded"
        assert entries["reward"][("foreign", "sentinel")] == 42.0
        assert len(entries.get("compile", {})) >= 2  # the runs' deltas landed too
