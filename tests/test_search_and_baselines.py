"""Tests for extraction, substitution, evaluators, baselines and experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    NAS_PTE_SEQUENCES,
    StackedConvolution,
    alphanas_substitution,
    quantize_model,
    quantized_latency,
    stacked_conv_program,
)
from repro.codegen.eager import lower_to_module
from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler import MOBILE_CPU, TVMBackend
from repro.core.library import (
    C_IN,
    C_OUT,
    GROUPS,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    SHRINK,
    H,
    W,
    build_conv2d,
    build_grouped_projection,
    build_operator2,
)
from repro.nn.models.profiles import MODEL_PROFILES, RESNET18_PROFILE
from repro.nn.models.resnet import resnet18
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.search import (
    LatencyEvaluator,
    SynthesizedConv2d,
    SynthesizedLinear,
    extract_conv_slots,
    conv_spec_from_slots,
    synthesized_conv_factory,
)
from repro.search.extraction import original_macs, slot_is_substitutable, substitutable_slots
from repro.nn.models.common import ConvSlot


class TestExtraction:
    def test_extract_conv_slots_from_resnet(self):
        slots = extract_conv_slots(resnet18)
        assert len(slots) > 10
        eligible = substitutable_slots(slots)
        assert eligible and all(slot.kernel_size == 3 and slot.groups == 1 for slot in eligible)

    def test_stem_and_strided_slots_excluded(self):
        assert not slot_is_substitutable(ConvSlot("stem", 3, 8, 8, 3, 1))
        assert not slot_is_substitutable(ConvSlot("down", 64, 128, 28, 3, 2))
        assert slot_is_substitutable(ConvSlot("conv", 64, 64, 28, 3, 1))

    def test_conv_spec_has_one_binding_per_slot(self):
        slots = extract_conv_slots(resnet18)
        spec = conv_spec_from_slots(slots, batch=4)
        assert len(spec.bindings) == len(substitutable_slots(slots))

    def test_original_macs_positive(self):
        assert original_macs(RESNET18_PROFILE, batch=1) > 1e9


class TestSubstitution:
    def test_synthesized_conv_preserves_shapes(self, rng):
        slot = ConvSlot("conv", 8, 16, 8, 3, 1)
        module = SynthesizedConv2d(build_operator2(), slot)
        out = module(Tensor(rng.normal(size=(2, 8, 8, 8))))
        assert out.shape == (2, 16, 8, 8)

    def test_synthesized_conv_handles_stride_by_pooling(self, rng):
        slot = ConvSlot("down", 8, 16, 8, 3, 2)
        module = SynthesizedConv2d(build_operator2(), slot)
        out = module(Tensor(rng.normal(size=(1, 8, 8, 8))))
        assert out.shape == (1, 16, 4, 4)

    def test_batch_size_change_shares_weights(self, rng):
        slot = ConvSlot("conv", 8, 8, 8, 3, 1)
        module = SynthesizedConv2d(build_operator2(), slot)
        module(Tensor(rng.normal(size=(2, 8, 8, 8))))
        module(Tensor(rng.normal(size=(5, 8, 8, 8))))
        assert len(module._instances) >= 2
        assert all(inst.weights[0] is module.weights[0] for inst in module._instances.values())

    def test_synthesized_linear_matches_grouped_projection(self, rng):
        module = SynthesizedLinear(build_grouped_projection(), 8, 8, coefficients={GROUPS: 2})
        out = module(Tensor(rng.normal(size=(3, 4, 8))))
        assert out.shape == (3, 4, 8)

    def test_factory_substitutes_only_eligible_slots(self):
        factory = synthesized_conv_factory(build_operator2())
        substituted = factory(ConvSlot("conv", 8, 8, 8, 3, 1))
        kept = factory(ConvSlot("stem", 3, 8, 8, 3, 1))
        assert isinstance(substituted, SynthesizedConv2d)
        assert not isinstance(kept, SynthesizedConv2d)

    def test_substituted_resnet_trains_one_step(self, rng):
        model = resnet18(conv_factory=synthesized_conv_factory(build_operator2()))
        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        from repro.nn import functional as F

        F.cross_entropy(out, np.array([1, 2])).backward()
        synthesized_params = [
            p for module in model.modules() if isinstance(module, SynthesizedConv2d)
            for p in module.weights
        ]
        assert synthesized_params
        assert any(p.grad is not None for p in synthesized_params)


class TestLatencyEvaluator:
    def test_baseline_and_substituted_latencies_positive(self):
        evaluator = LatencyEvaluator(
            slots=RESNET18_PROFILE, backend=TVMBackend(trials=16), target=MOBILE_CPU
        )
        baseline = evaluator.baseline_latency()
        substituted = evaluator.substituted_latency(build_operator2())
        assert baseline > 0 and substituted > 0

    def test_layerwise_returns_substitutable_slots_only(self):
        evaluator = LatencyEvaluator(
            slots=RESNET18_PROFILE, backend=TVMBackend(trials=16), target=MOBILE_CPU
        )
        rows = evaluator.layerwise(build_operator2())
        assert len(rows) == len(substitutable_slots(RESNET18_PROFILE))

    def test_macs_accounting(self):
        evaluator = LatencyEvaluator(
            slots=RESNET18_PROFILE, backend=TVMBackend(trials=8), target=MOBILE_CPU
        )
        assert evaluator.macs(build_operator2()) < evaluator.macs(None)


class TestBaselines:
    BINDING = {N: 1, C_IN: 64, C_OUT: 64, H: 14, W: 14, K1: 3, GROUPS: 2, SHRINK: 2}

    def test_nas_pte_grouped_macs(self):
        grouped = NAS_PTE_SEQUENCES["seq1_grouped"]()
        conv = build_conv2d()
        assert grouped.macs(self.BINDING) == conv.macs(self.BINDING) // 2

    def test_nas_pte_bottleneck_macs(self):
        bottleneck = NAS_PTE_SEQUENCES["seq2_bottleneck"]()
        conv = build_conv2d()
        assert bottleneck.macs(self.BINDING) == conv.macs(self.BINDING) // 2

    def test_nas_pte_operators_lower_and_run(self, rng):
        small = {N: 1, C_IN: 8, C_OUT: 8, H: 6, W: 6, K1: 3, GROUPS: 2, SHRINK: 2}
        for name, builder in NAS_PTE_SEQUENCES.items():
            operator = builder()
            module = lower_to_module(operator, small, rng=rng)
            out = module(Tensor(rng.normal(size=(1, 8, 6, 6))))
            assert out.shape == (1, 8, 6, 6), name

    def test_grouped_conv_semantics_block_diagonal(self, rng):
        """Channels of one group must not affect outputs of another group."""
        small = {N: 1, C_IN: 4, C_OUT: 4, H: 4, W: 4, K1: 3, GROUPS: 2, SHRINK: 2}
        operator = NAS_PTE_SEQUENCES["seq1_grouped"]()
        module = lower_to_module(operator, small, rng=rng)
        x = np.zeros((1, 4, 4, 4))
        x[0, 3] = 1.0  # activate only the last input channel (second group)
        out = module(Tensor(x)).data
        assert np.allclose(out[0, :2], 0.0)  # first group's outputs unaffected
        assert not np.allclose(out[0, 2:], 0.0)

    def test_stacked_convolution_module_and_program(self, rng):
        module = StackedConvolution(8, 16)
        out = module(Tensor(rng.normal(size=(1, 8, 6, 6))))
        assert out.shape == (1, 16, 6, 6)
        slot = ConvSlot("c", 64, 64, 14, 3, 1)
        program = stacked_conv_program(slot)
        assert len(program.stages) == 2
        assert program.macs < loop_macs(slot)

    def test_quantization_preserves_shapes_and_reduces_latency(self, rng):
        model = Linear(8, 4)
        original = model.weight.data.copy()
        quantize_model(model)
        assert model.weight.data.shape == original.shape
        assert np.abs(model.weight.data - original).max() < np.abs(original).max() * 0.1
        assert quantized_latency(RESNET18_PROFILE[:4], MOBILE_CPU) > 0

    def test_alphanas_reduction_in_expected_range(self):
        result = alphanas_substitution(MODEL_PROFILES["resnet34"])
        assert 0.1 < result.flops_reduction < 0.7
        assert result.estimated_training_speedup > 1.0


def loop_macs(slot: ConvSlot) -> int:
    return slot.macs(1)
