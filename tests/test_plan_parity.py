"""Plan/eager parity: compiled execution plans match the interpreter.

The compiled path (``codegen.plan``) and the original eager interpreter
(``EagerOperator._forward_interpreted``) must agree — forward outputs and
parameter/input gradients — for every operator the system can synthesize, in
both compute dtypes.  These tests pin that contract over the whole operator
library plus a spread of randomly synthesized pGraphs, and check that the
process-wide plan cache deduplicates structurally identical (graph, binding)
pairs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.codegen.eager import lower_to_module
from repro.codegen.plan import cached_plan, compile_plan, plan_cache_key
from repro.core.enumeration import default_options_for, synthesize
from repro.core.library import (
    BLOCK,
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    LIBRARY,
    M,
    N,
    OUT_FEATURES,
    POOL,
    SHRINK,
    W,
    build_operator1,
    conv2d_spec,
)
from repro.nn import functional as F
from repro.nn.tensor import Tensor, compute_dtype, no_grad
from repro.search.cache import plan_cache

CONV_BINDING = {N: 2, C_IN: 8, C_OUT: 8, H: 6, W: 6, K1: 3, GROUPS: 4, SHRINK: 2}
MATMUL_BINDING = {M: 4, K: 6, OUT_FEATURES: 6, GROUPS: 2}
POOL_BINDING = {H: 12, POOL: 3, BLOCK: 2}

LIBRARY_BINDINGS = {
    "matmul": MATMUL_BINDING,
    "conv2d": CONV_BINDING,
    "avgpool1d": POOL_BINDING,
    "pixelshuffle": POOL_BINDING,
    "operator1": CONV_BINDING,
    "operator2": CONV_BINDING,
    "shift_conv": CONV_BINDING,
    "grouped_projection": MATMUL_BINDING,
}

#: Both legs run in the same dtype; the tolerance absorbs the contraction
#: reordering the fused einsum is allowed to do.
TOLERANCES = {
    "float64": {"rtol": 1e-8, "atol": 1e-10},
    "float32": {"rtol": 1e-3, "atol": 1e-5},
}


def _forward_backward(operator, binding, x, compiled: bool, monkeypatch):
    """(output, input grad, weight grads) under one execution mode."""
    monkeypatch.setenv("REPRO_COMPILED_FORWARD", "1" if compiled else "0")
    module = lower_to_module(operator, binding, rng=np.random.default_rng(7))
    x_tensor = Tensor(x, requires_grad=True)
    output = module(x_tensor)
    F.sum(F.mul(output, output)).backward()
    return (
        output.data.copy(),
        x_tensor.grad.copy(),
        [weight.grad.copy() if weight.grad is not None else None for weight in module.weights],
    )


def _assert_parity(operator, binding, dtype, monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", dtype)
    tolerance = TOLERANCES[dtype]
    rng = np.random.default_rng(3)
    x = rng.normal(size=operator.concrete_input_shape(binding))

    eager_out, eager_gx, eager_gw = _forward_backward(operator, binding, x, False, monkeypatch)
    plan_out, plan_gx, plan_gw = _forward_backward(operator, binding, x, True, monkeypatch)

    assert plan_out.dtype == np.dtype(dtype)
    np.testing.assert_allclose(plan_out, eager_out, **tolerance)
    np.testing.assert_allclose(plan_gx, eager_gx, **tolerance)
    assert len(plan_gw) == len(eager_gw)
    for plan_grad, eager_grad in zip(plan_gw, eager_gw):
        assert (plan_grad is None) == (eager_grad is None)
        if plan_grad is not None:
            np.testing.assert_allclose(plan_grad, eager_grad, **tolerance)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("name", sorted(LIBRARY))
def test_library_operator_parity(name, dtype, monkeypatch):
    operator = LIBRARY[name]()
    _assert_parity(operator, LIBRARY_BINDINGS[name], dtype, monkeypatch)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_synthesized_operator_parity(dtype, monkeypatch):
    """Property-style spread: random complete pGraphs agree in both modes."""
    monkeypatch.setenv("REPRO_DTYPE", dtype)
    spec = conv2d_spec(bindings=(CONV_BINDING,))
    options = default_options_for(spec, coefficients=[K1, GROUPS], max_depth=4)
    operators, _ = synthesize(
        spec, options, max_results=12, max_nodes=4000, rng=random.Random(11)
    )
    assert operators, "synthesis produced no candidates to check"
    rng = np.random.default_rng(3)
    checked = 0
    for operator in operators:
        x = rng.normal(size=operator.concrete_input_shape(CONV_BINDING))
        try:
            # Candidates even the interpreter rejects (indivisible extents,
            # residual axes) are not parity subjects — skip them.
            _forward_backward(operator, CONV_BINDING, x, False, monkeypatch)
        except (RuntimeError, ValueError):
            continue
        _assert_parity(operator, CONV_BINDING, dtype, monkeypatch)
        checked += 1
    assert checked >= 5, "too few synthesized operators survived to a parity check"


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_weight_grads_without_input_grad(dtype, monkeypatch):
    """First-layer case: the input is raw data, weight grads must still agree."""
    monkeypatch.setenv("REPRO_DTYPE", dtype)
    tolerance = TOLERANCES[dtype]
    operator = build_operator1()
    x = np.random.default_rng(4).normal(size=operator.concrete_input_shape(CONV_BINDING))
    grads = {}
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_COMPILED_FORWARD", mode)
        module = lower_to_module(operator, CONV_BINDING, rng=np.random.default_rng(7))
        output = module(Tensor(x))  # requires_grad=False input
        F.sum(F.mul(output, output)).backward()
        grads[mode] = [weight.grad.copy() for weight in module.weights]
    for compiled, eager in zip(grads["1"], grads["0"]):
        np.testing.assert_allclose(compiled, eager, **tolerance)


def test_forward_under_no_grad_matches(monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", "float64")
    operator = build_operator1()
    module = lower_to_module(operator, CONV_BINDING, rng=np.random.default_rng(5))
    x = np.random.default_rng(1).normal(size=operator.concrete_input_shape(CONV_BINDING))
    with no_grad():
        monkeypatch.setenv("REPRO_COMPILED_FORWARD", "1")
        compiled_out = module(Tensor(x))
        monkeypatch.setenv("REPRO_COMPILED_FORWARD", "0")
        eager_out = module(Tensor(x))
    assert not compiled_out.requires_grad
    assert not compiled_out._parents
    np.testing.assert_allclose(compiled_out.data, eager_out.data, rtol=1e-8, atol=1e-10)


def test_plan_cache_shares_structurally_identical_pairs(monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", "float64")
    plan_cache().clear()
    first = build_operator1()
    second = build_operator1()
    assert first is not second
    assert plan_cache_key(first, CONV_BINDING) == plan_cache_key(second, CONV_BINDING)
    plan_a = cached_plan(first, CONV_BINDING)
    plan_b = cached_plan(second, CONV_BINDING)
    assert plan_a is plan_b
    assert len(plan_cache()) == 1
    # A different binding compiles (and caches) a fresh plan.
    other_binding = dict(CONV_BINDING)
    other_binding[N] = 3
    assert cached_plan(first, other_binding) is not plan_a
    assert len(plan_cache()) == 2


def test_plan_fuses_contractions(monkeypatch):
    """The compiled operator1 collapses its Shares/Expand/Reduces into one step."""
    from repro.codegen.plan import ContractionStep

    plan = compile_plan(build_operator1(), CONV_BINDING)
    contractions = [step for step in plan.steps if isinstance(step, ContractionStep)]
    assert len(contractions) == 1
    # value + two weights + the Expand's ones operand
    kinds = sorted(kind for kind, _ in contractions[0].operands)
    assert kinds == ["ones", "value", "weight", "weight"]
    # Interpreted, the same lowering needs two einsums and five sums; fused it
    # is a handful of steps.
    assert len(plan.steps) <= 6


def test_compute_dtype_follows_knob(monkeypatch):
    monkeypatch.setenv("REPRO_DTYPE", "float32")
    assert compute_dtype() == np.float32
    assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float32
    monkeypatch.setenv("REPRO_DTYPE", "float64")
    assert compute_dtype() == np.float64
    monkeypatch.delenv("REPRO_DTYPE")
    monkeypatch.setenv("REPRO_SMOKE", "1")
    assert compute_dtype() == np.float32
    monkeypatch.setenv("REPRO_SMOKE", "0")
    assert compute_dtype() == np.float64


def test_compiled_is_default_and_escape_hatch_interprets(monkeypatch):
    monkeypatch.delenv("REPRO_COMPILED_FORWARD", raising=False)
    operator = build_operator1()
    module = lower_to_module(operator, CONV_BINDING, rng=np.random.default_rng(5))
    x = Tensor(np.random.default_rng(2).normal(size=operator.concrete_input_shape(CONV_BINDING)))
    module(x)
    assert module._plan is not None  # the compiled path populated the plan
    fresh = lower_to_module(operator, CONV_BINDING, rng=np.random.default_rng(5))
    monkeypatch.setenv("REPRO_COMPILED_FORWARD", "0")
    fresh(x)
    assert fresh._plan is None  # the interpreter never compiles
