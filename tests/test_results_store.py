"""Tests for the results subsystem: records, the artifact store, cache persistence."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.results import ArtifactStore, ResultRecord, sanitize_metrics
from repro.search.cache import (
    CACHE_FORMAT_VERSION,
    cache_snapshot_filename,
    cache_stats,
    cached_reward,
    clear_caches,
    load_caches,
    reward_cache,
    save_caches,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def make_record(run_id="figure5-20260101-000000-abc123", **overrides) -> ResultRecord:
    payload = dict(
        run_id=run_id,
        experiment="figure5",
        status="completed",
        config={"smoke": True, "train_steps": None, "processes": None, "seed": None, "options": {}},
        started_at="2026-01-01T00:00:00+00:00",
        finished_at="2026-01-01T00:00:20+00:00",
        duration_seconds=20.0,
        metrics={"geomean_speedup_tvm_a100": 2.5, "rows": 18},
        table="model target backend speedup\nresnet18 a100 tvm 2.50x",
        cache_stats={"compile": {"hits": 10, "misses": 2}},
        environment={"REPRO_SMOKE": "1"},
    )
    payload.update(overrides)
    return ResultRecord(**payload)


# ---------------------------------------------------------------------------
# ResultRecord
# ---------------------------------------------------------------------------


def test_record_json_round_trip():
    record = make_record()
    restored = ResultRecord.from_json(record.to_json())
    assert restored == record
    assert restored.fingerprint() == record.fingerprint()


def test_record_fingerprint_covers_payload_not_incidentals():
    record = make_record()
    # Incidental fields do not change identity...
    twin = make_record(
        run_id="figure5-20270101-999999-zzzzzz",
        started_at="2027-01-01T00:00:00+00:00",
        duration_seconds=0.5,
        cache_stats={"compile": {"hits": 0, "misses": 12}},
    )
    assert twin.fingerprint() == record.fingerprint()
    # ...but the deterministic payload does.
    assert make_record(metrics={"rows": 17}).fingerprint() != record.fingerprint()
    assert make_record(config={"smoke": False}).fingerprint() != record.fingerprint()


def test_sanitize_metrics_handles_non_finite_and_non_numeric():
    cleaned = sanitize_metrics(
        {"ok": 1.5, "count": 3, "inf": float("inf"), "nan": float("nan"), "text": "n/a"}
    )
    assert cleaned == {"ok": 1.5, "count": 3, "inf": None, "nan": None, "text": None}


# ---------------------------------------------------------------------------
# ArtifactStore
# ---------------------------------------------------------------------------


def test_store_save_load_list_latest(tmp_path):
    store = ArtifactStore(tmp_path)
    first = make_record("figure5-20260101-000000-aaaaaa")
    second = make_record(
        "table3-20260101-000100-bbbbbb",
        experiment="table3",
        started_at="2026-01-01T00:01:00+00:00",
    )
    store.save(first)
    store.save(second)

    assert store.load(first.run_id) == first
    assert (store.run_dir(first.run_id) / "table.txt").read_text().startswith("model target")
    assert [record.run_id for record in store.list_runs()] == [first.run_id, second.run_id]
    assert [record.run_id for record in store.list_runs("table3")] == [second.run_id]
    assert store.latest().run_id == second.run_id
    assert store.latest("figure5").run_id == first.run_id


def test_store_root_defaults_to_results_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "elsewhere"))
    store = ArtifactStore()
    assert store.root == tmp_path / "elsewhere"
    assert store.cache_path.name == cache_snapshot_filename()


def test_store_skips_unreadable_records(tmp_path):
    store = ArtifactStore(tmp_path)
    store.save(make_record())
    bad = store.runs_dir / "broken-run"
    bad.mkdir(parents=True)
    (bad / "record.json").write_text("{not json")
    assert len(store.list_runs()) == 1


# ---------------------------------------------------------------------------
# Cache persistence
# ---------------------------------------------------------------------------


def test_cache_persist_and_reload_in_process(tmp_path):
    path = tmp_path / cache_snapshot_filename()
    calls = []
    cached_reward(("persist-test",), "sig", lambda: calls.append(1) or 0.75)
    saved = save_caches(str(path))
    assert saved["reward"] == 1

    clear_caches()  # simulate a fresh process
    added = load_caches(str(path))
    assert added["reward"] == 1
    value = cached_reward(("persist-test",), "sig", lambda: calls.append(1) or 0.0)
    assert value == 0.75 and calls == [1]
    assert cache_stats()["reward"].hits == 1


def test_load_ignores_missing_and_version_mismatched_snapshots(tmp_path):
    assert load_caches(str(tmp_path / "absent.pkl")) == {}

    stale = tmp_path / "stale.pkl"
    payload = {"version": CACHE_FORMAT_VERSION + 1, "caches": {"reward": {("k",): 1.0}}}
    stale.write_bytes(pickle.dumps(payload))
    assert load_caches(str(stale)) == {}
    assert len(reward_cache()) == 0

    corrupt = tmp_path / "corrupt.pkl"
    corrupt.write_bytes(b"not a pickle")
    assert load_caches(str(corrupt)) == {}


def test_save_skips_unpicklable_entries(tmp_path):
    path = tmp_path / "snapshot.pkl"
    reward_cache().put(("fine",), 1.0)
    reward_cache().put(("poison",), lambda: None)  # lambdas cannot be pickled
    saved = save_caches(str(path))
    assert saved["reward"] == 1

    clear_caches()
    assert load_caches(str(path)) == {"reward": 1, "compile": 0, "baseline": 0}
    found, value = reward_cache().lookup(("fine",))
    assert found and value == 1.0


def test_in_process_values_win_over_persisted_ones(tmp_path):
    path = tmp_path / "snapshot.pkl"
    reward_cache().put(("shared",), 1.0)
    save_caches(str(path))
    clear_caches()
    reward_cache().put(("shared",), 2.0)
    assert load_caches(str(path))["reward"] == 0
    assert reward_cache().lookup(("shared",)) == (True, 2.0)


def test_disabled_caches_do_not_clobber_a_warm_snapshot(tmp_path, monkeypatch):
    path = tmp_path / "snapshot.pkl"
    reward_cache().put(("warm",), 1.0)
    assert save_caches(str(path))["reward"] == 1

    monkeypatch.setenv("REPRO_EVAL_CACHE", "0")
    clear_caches()
    assert save_caches(str(path)) == {}  # must not overwrite the warm file
    assert load_caches(str(path)) == {}  # loading is a no-op while disabled

    monkeypatch.delenv("REPRO_EVAL_CACHE")
    assert load_caches(str(path))["reward"] == 1


def test_save_survives_unwritable_destination(tmp_path):
    reward_cache().put(("k",), 1.0)
    target = tmp_path / "file-not-dir" / "snapshot.pkl"
    (tmp_path / "file-not-dir").write_text("")  # makedirs will fail on this
    assert save_caches(str(target)) == {}  # logged, not raised


def test_cache_persist_across_two_processes(tmp_path):
    """Process A computes and saves; process B loads and must not recompute."""
    path = tmp_path / cache_snapshot_filename()
    producer = textwrap.dedent(
        f"""
        from repro.search.cache import cached_reward, save_caches
        cached_reward(("two-proc",), "sig", lambda: 41.5)
        counts = save_caches({str(path)!r})
        assert counts["reward"] == 1, counts
        """
    )
    consumer = textwrap.dedent(
        f"""
        from repro.search.cache import cache_stats, cached_reward, load_caches
        added = load_caches({str(path)!r})
        assert added["reward"] == 1, added
        def recompute():
            raise AssertionError("work item was recomputed despite the snapshot")
        value = cached_reward(("two-proc",), "sig", recompute)
        assert value == 41.5, value
        assert cache_stats()["reward"].hits == 1
        """
    )
    for script in (producer, consumer):
        subprocess.run(
            [sys.executable, "-c", script],
            cwd=REPO_ROOT,
            env={**os.environ, "PYTHONPATH": "src"},
            check=True,
            capture_output=True,
            text=True,
        )
