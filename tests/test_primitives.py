"""Tests for the eight primitives' frontier (bottom-up) semantics."""

from __future__ import annotations

import pytest

from repro.core.pgraph import DimRole, PGraph
from repro.core.primitives import (
    Expand,
    Merge,
    PrimitiveError,
    Reduce,
    Share,
    Shift,
    Split,
    Stride,
    Unfold,
)
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import coefficient, primary

H = primary("H", default=12)
W = primary("W", default=8)
C = primary("C", default=4)
B = coefficient("b", default=3)
S = coefficient("s", default=2)


def _root(output, input_shape) -> PGraph:
    return PGraph.root(ShapeSpec.of(output), ShapeSpec.of(input_shape))


class TestMerge:
    def test_splits_one_dim_into_two(self):
        graph = _root([H], [H])
        graph = Merge(block=Size.of(B)).apply(graph, (graph.frontier[0],))
        assert len(graph.frontier) == 2
        assert graph.frontier[0].size == Size.of(H) / B
        assert graph.frontier[1].size == Size.of(B)

    def test_rejects_block_one(self):
        graph = _root([H], [H])
        with pytest.raises(PrimitiveError):
            Merge(block=Size.one()).apply(graph, (graph.frontier[0],))

    def test_rejects_primary_denominator(self):
        graph = _root([B], [B])
        with pytest.raises(PrimitiveError):
            Merge(block=Size.of(H)).apply(graph, (graph.frontier[0],))


class TestSplit:
    def test_combines_two_dims(self):
        graph = _root([H, W], [H, W])
        graph = Split().apply(graph, (graph.frontier[0], graph.frontier[1]))
        assert len(graph.frontier) == 1
        assert graph.frontier[0].size == Size.of(H) * W

    def test_operand_must_be_in_frontier(self):
        graph = _root([H, W], [H, W])
        other = _root([C], [C])
        with pytest.raises(PrimitiveError):
            Split().apply(graph, (graph.frontier[0], other.frontier[0]))


class TestShiftExpandStride:
    def test_shift_preserves_size(self):
        graph = _root([H], [H])
        graph = Shift(amount=1).apply(graph, (graph.frontier[0],))
        assert graph.frontier[0].size == Size.of(H)

    def test_expand_removes_dim(self):
        graph = _root([H, C], [H])
        graph = Expand().apply(graph, (graph.frontier[1],))
        assert graph.frontier_shape.same_multiset(ShapeSpec.of([H]))

    def test_stride_scales_size(self):
        graph = _root([C], [C])
        graph = Stride(stride=Size.of(S)).apply(graph, (graph.frontier[0],))
        assert graph.frontier[0].size == Size.of(C) * S

    def test_stride_of_one_rejected(self):
        graph = _root([C], [C])
        with pytest.raises(PrimitiveError):
            Stride(stride=Size.one()).apply(graph, (graph.frontier[0],))


class TestUnfold:
    def test_combines_main_and_window(self):
        graph = _root([H], [H])
        graph = Reduce(size=Size.of(B)).apply(graph, ())
        window = graph.frontier[-1]
        graph = Unfold().apply(graph, (graph.frontier[0], window))
        assert len(graph.frontier) == 1
        assert graph.frontier[0].size == Size.of(H)

    def test_window_must_not_be_primary(self):
        graph = _root([H, W], [H, W])
        with pytest.raises(PrimitiveError):
            Unfold().apply(graph, (graph.frontier[0], graph.frontier[1]))


class TestReduce:
    def test_adds_reduction_dim(self):
        graph = _root([H], [H, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        assert graph.frontier[-1].is_reduction
        assert graph.frontier[-1].size == Size.of(C)
        assert graph.is_complete

    def test_size_one_rejected(self):
        graph = _root([H], [H])
        with pytest.raises(PrimitiveError):
            Reduce(size=Size.one()).apply(graph, ())


class TestShare:
    def test_creates_weight_with_shared_dim(self):
        graph = _root([H], [H])
        graph = Share(new_weight=True).apply(graph, (graph.frontier[0],))
        assert len(graph.weights) == 1
        assert graph.weights[0].dims[0].size == Size.of(H)
        # The data path keeps the shared dim.
        assert graph.frontier_shape.same_multiset(ShapeSpec.of([H]))

    def test_match_moves_dim_to_weight(self):
        graph = _root([H, C], [H])
        graph = Share(new_weight=True).apply(graph, (graph.frontier[0], graph.frontier[1]))
        assert graph.frontier_shape.same_multiset(ShapeSpec.of([H]))
        assert len(graph.weights[0].dims) == 2

    def test_append_requires_previous_share(self):
        graph = _root([H], [H])
        with pytest.raises(PrimitiveError):
            Share(new_weight=False).apply(graph, (graph.frontier[0],))

    def test_append_extends_existing_weight(self):
        graph = _root([H, C], [H, C])
        graph = Share(new_weight=True).apply(graph, (graph.frontier[0],))
        graph = Share(new_weight=False).apply(graph, (graph.frontier[1],))
        assert len(graph.weights) == 1
        assert len(graph.weights[0].dims) == 2

    def test_requires_at_least_one_operand(self):
        graph = _root([H], [H])
        with pytest.raises(PrimitiveError):
            Share(new_weight=True).apply(graph, ())


class TestPGraphAccounting:
    def test_depth_and_counts(self):
        graph = _root([H], [H, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        graph = Share(new_weight=True).apply(graph, (graph.frontier[-1],))
        assert graph.depth == 2
        assert graph.count_primitive(Reduce) == 1
        assert graph.count_primitive(Share) == 1

    def test_macs_output_times_reductions(self):
        graph = _root([H], [H, C])
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        binding = {H: 12, C: 4}
        assert graph.macs(binding) == 12 * 4

    def test_parameter_count(self):
        graph = _root([H, C], [H])
        graph = Share(new_weight=True).apply(graph, (graph.frontier[0], graph.frontier[1]))
        assert graph.parameter_count({H: 12, C: 4}) == 48

    def test_signature_distinguishes_structures(self):
        graph = _root([H, W], [H, W])
        a = Shift(amount=1).apply(graph, (graph.frontier[0],))
        b = Shift(amount=1).apply(graph, (graph.frontier[1],))
        assert a.signature() != b.signature()

    def test_immutability_of_application(self):
        graph = _root([H], [H])
        extended = Shift(amount=1).apply(graph, (graph.frontier[0],))
        assert graph.depth == 0
        assert extended.depth == 1
        assert graph.frontier != extended.frontier

    def test_roles(self):
        graph = _root([H], [H, C])
        assert graph.frontier[0].role is DimRole.OUTPUT
        graph = Reduce(size=Size.of(C)).apply(graph, ())
        assert graph.frontier[-1].role is DimRole.REDUCTION
