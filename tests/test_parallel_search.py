"""Serial/sharded parity and determinism of the sharded search executor.

Covers :mod:`repro.search.parallel` (deterministic partition, order-preserving
merge, worker-cache merge-back), the batched MCTS frontier API
(``propose_batch`` / ``pending_evaluations`` / ``apply_results``), and the
headline guarantee: for a fixed seed, ``REPRO_SEARCH_SHARDS=1`` and ``=4``
produce bit-identical candidate sets, rewards and record fingerprints.
"""

from __future__ import annotations

import functools
import logging
from pathlib import Path

import pytest

from repro.core.enumeration import default_options_for
from repro.core.library import K, M, OUT_FEATURES, matmul_spec
from repro.core.mcts import MCTS, MCTSConfig
from repro.experiments.runner import ExperimentConfig, applied_env, run_experiment
from repro.runtime import RuntimeConfig, RuntimeContext, SharedCacheStore, current
from repro.search.cache import (
    cache_sizes,
    clear_caches,
    load_caches,
    reward_cache,
    save_caches,
    search_shards,
)
from repro.search.parallel import (
    shard_partition,
    sharded_map,
    sharded_reward_evaluator,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_caches()
    yield
    clear_caches()


def _sample_key(record):
    return (record.operator.graph.signature(), record.reward, record.iteration)


def _matmul_search(reward_fn, *, seed=1, iterations=40, batch_size=4, cache_context=None):
    spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
    options = default_options_for(spec, coefficients=[], max_depth=3)
    return MCTS(
        spec=spec,
        options=options,
        reward_fn=reward_fn,
        config=MCTSConfig(
            iterations=iterations,
            seed=seed,
            batch_size=batch_size,
            cache_context=cache_context,
        ),
    )


def _signature_reward(operator) -> float:
    """A deterministic, picklable reward: a pure function of the signature."""
    return (hash(operator.graph.signature()) % 1000) / 1000.0


def _double(x):
    return x * 2


# ---------------------------------------------------------------------------
# sharded_map: partition, order, merge
# ---------------------------------------------------------------------------


class TestShardedMap:
    def test_partition_is_strided_and_covers_everything(self):
        partition = shard_partition(7, 3)
        assert partition == [[0, 3, 6], [1, 4], [2, 5]]
        assert sorted(index for shard in partition for index in shard) == list(range(7))

    def test_results_in_input_order_any_shard_count(self):
        items = list(range(11))
        expected = [item * 2 for item in items]
        for shards in (1, 2, 3, 8, 16):
            assert sharded_map(_double, items, shards=shards, max_workers=4) == expected

    def test_serial_fallbacks_are_result_identical(self):
        # One item, one shard, and no spare workers all take the serial path.
        assert sharded_map(_double, [21], shards=4) == [42]
        assert sharded_map(_double, [1, 2], shards=1) == [2, 4]
        assert sharded_map(_double, [1, 2], shards=4, max_workers=1) == [2, 4]

    def test_unpicklable_work_falls_back_to_serial(self):
        local = 10
        assert sharded_map(lambda x: x + local, [1, 2, 3], shards=2, max_workers=2) == [11, 12, 13]

    def test_unpicklable_results_fall_back_to_serial(self):
        results = sharded_map(_make_closure, [1, 2, 3], shards=2, max_workers=2)
        assert [fn() for fn in results] == [1, 2, 3]

    def test_worker_reward_caches_merge_back_into_the_parent(self):
        worker = functools.partial(_cached_square, "merge-test")
        assert sharded_map(worker, [1, 2, 3, 4], shards=2, max_workers=2) == [1, 4, 9, 16]
        # The workers computed the rewards, yet the parent cache is warm.
        assert len(reward_cache()) == 4
        calls = []
        assert _cached_square("merge-test", 3, calls) == 9
        assert calls == []  # parent hit, no recompute

    def test_shards_env_knob_is_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEARCH_SHARDS", "5")
        assert search_shards() == 5
        monkeypatch.delenv("REPRO_SEARCH_SHARDS")
        assert search_shards() == 1


def _make_closure(value):
    """Picklable worker whose *result* (a closure) cannot cross back."""
    return lambda: value


def _cached_square(context, value, calls=None):
    from repro.search.cache import cached_reward

    def compute():
        if calls is not None:
            calls.append(value)
        return float(value * value)

    return cached_reward(context, str(value), compute)


# ---------------------------------------------------------------------------
# Batched MCTS frontier
# ---------------------------------------------------------------------------


class TestBatchedFrontier:
    def test_propose_apply_round_trip_matches_run(self):
        """Driving the frontier API by hand reproduces run() exactly."""
        reference = _matmul_search(_signature_reward).run()

        clear_caches()
        search = _matmul_search(_signature_reward)
        done = 0
        while done < search.config.iterations:
            wave = search.propose_batch(
                min(search.config.batch_size, search.config.iterations - done)
            )
            pending = search.pending_evaluations(wave)
            rewards = {sig: _signature_reward(op) for sig, op in pending}
            search.apply_results(wave, rewards)
            done += len(wave)
        assert [_sample_key(s) for s in search.best_samples()] == [
            _sample_key(s) for s in reference
        ]

    def test_pending_evaluations_are_unique_and_exclude_known(self):
        search = _matmul_search(_signature_reward, iterations=12, batch_size=12)
        wave = search.propose_batch(12)
        pending = search.pending_evaluations(wave)
        signatures = [sig for sig, _ in pending]
        assert len(signatures) == len(set(signatures))
        search.apply_results(wave, dict.fromkeys(signatures, 0.5))
        # A later wave never re-requests an already-evaluated signature.
        second = search.propose_batch(12)
        assert not set(sig for sig, _ in search.pending_evaluations(second)) & set(signatures)

    def test_batch_width_one_reproduces_the_classic_loop(self):
        """run(batch_size=1) equals the classic one-sample-at-a-time loop.

        The classic loop is expressed through the frontier API itself:
        propose one rollout, evaluate it immediately, apply it — reward
        available before the next selection, exactly like the pre-batching
        implementation.
        """
        classic = _matmul_search(_signature_reward, batch_size=1)
        for _ in range(classic.config.iterations):
            (pending,) = classic.propose_batch(1)
            wave = [pending]
            rewards = {sig: _signature_reward(op) for sig, op in classic.pending_evaluations(wave)}
            classic.apply_results(wave, rewards)

        clear_caches()
        batched = _matmul_search(_signature_reward, batch_size=1).run()
        assert [_sample_key(s) for s in batched] == [
            _sample_key(s) for s in classic.best_samples()
        ]


class TestMCTSDeterminism:
    def test_same_seed_same_sample_sequence(self):
        first = _matmul_search(_signature_reward, cache_context="det").run()
        second = _matmul_search(_signature_reward, cache_context="det").run()
        assert first, "the search must find samples for the test to mean anything"
        assert [_sample_key(s) for s in first] == [_sample_key(s) for s in second]

    def test_sample_sequence_survives_a_cache_round_trip(self, tmp_path):
        """Warm rewards from a persisted snapshot must not alter the search."""
        calls = []

        def counting_reward(operator):
            calls.append(operator.graph.signature())
            return _signature_reward(operator)

        first = _matmul_search(counting_reward, cache_context="round-trip").run()
        assert calls, "first run must actually evaluate"
        snapshot = tmp_path / "caches.pkl"
        save_caches(str(snapshot))

        clear_caches()
        load_caches(str(snapshot))
        calls.clear()
        second = _matmul_search(counting_reward, cache_context="round-trip").run()
        assert calls == []  # every reward came from the reloaded snapshot
        assert [_sample_key(s) for s in first] == [_sample_key(s) for s in second]

    def test_serial_vs_sharded_waves_are_bit_identical(self):
        serial = _matmul_search(_signature_reward, cache_context="parity-serial").run()

        clear_caches()
        evaluator = sharded_reward_evaluator(
            _signature_reward, "parity-sharded", shards=4, max_workers=4
        )
        sharded = _matmul_search(_signature_reward, cache_context="parity-sharded").run(
            evaluate_batch=evaluator
        )
        assert [_sample_key(s) for s in serial] == [_sample_key(s) for s in sharded]
        # The sharded run left the parent's reward cache exactly as warm.
        assert len(reward_cache()) >= len({s.operator.graph.signature() for s in sharded})


# ---------------------------------------------------------------------------
# Experiment-level parity: REPRO_SEARCH_SHARDS=1 vs =4
# ---------------------------------------------------------------------------


class TestExperimentParity:
    def test_figure8_record_is_identical_serial_vs_sharded(self):
        """The acceptance scenario: fixed seed, shards=1 vs =4, same record."""
        config = ExperimentConfig(smoke=True, train_steps=2, seed=0)
        with applied_env({"REPRO_SEARCH_SHARDS": "1"}):
            serial = run_experiment("figure8", config)
        clear_caches()
        with applied_env({"REPRO_SEARCH_SHARDS": "4"}):
            sharded = run_experiment("figure8", config)
        assert serial.record.table == sharded.record.table
        assert serial.record.metrics == sharded.record.metrics
        assert serial.record.fingerprint() == sharded.record.fingerprint()

    def test_explicit_shards_config_shares_the_serial_fingerprint(self):
        """`repro run --shards 4` must produce the same record identity.

        The shard count is excluded from the fingerprinted config (results
        are identical by construction); it is still recorded in the run's
        environment for `repro report`.
        """
        serial = run_experiment("figure8", ExperimentConfig(smoke=True, train_steps=2))
        clear_caches()
        sharded = run_experiment(
            "figure8", ExperimentConfig(smoke=True, train_steps=2, shards=4)
        )
        assert serial.record.fingerprint() == sharded.record.fingerprint()
        assert sharded.record.config["shards"] is None
        # The count survives in the record's resolved runtime config, marked
        # as an explicit override.
        assert sharded.record.environment["runtime"]["shards"] == 4
        assert sharded.record.environment["provenance"]["shards"] == "explicit"

    def test_figure8_variants_identical_across_forked_workers(self):
        """Force real worker processes (even on one core) and compare."""
        from repro.compiler.targets import MOBILE_CPU
        from repro.experiments.figure8 import _VARIANTS, _variant_points

        serial = [_variant_points(2, 0, MOBILE_CPU, variant) for variant in _VARIANTS]
        clear_caches()
        worker = functools.partial(_variant_points, 2, 0, MOBILE_CPU)
        forked = sharded_map(worker, _VARIANTS, shards=3, max_workers=3)
        assert serial == forked
        # The workers' training/tuning results were merged back.
        sizes = cache_sizes()
        assert sizes["baseline"] > 0 and sizes["compile"] > 0


# ---------------------------------------------------------------------------
# Live store sync at wave boundaries (REPRO_CACHE_LIVE_SYNC)
# ---------------------------------------------------------------------------


def _live_probe(item):
    """Picklable worker: a cached reward that records which process computed it."""
    return current().cached_reward("live", f"sig{item}", lambda: float(item))


def _live_context(tmp_path, **overrides) -> RuntimeContext:
    config = RuntimeConfig(
        results_dir=str(tmp_path / "results"), cache_live_sync=True, **overrides
    )
    return RuntimeContext(config)


class TestLiveStoreSync:
    def test_map_absorbs_foreign_entries_and_publishes_its_own(self, tmp_path):
        ctx = _live_context(tmp_path)
        # Another process already published an entry this one never computed.
        SharedCacheStore(ctx.snapshot_path()).publish(
            {"reward": {("live", "foreign"): 7.25}}
        )
        results = sharded_map(_live_probe, [1, 2, 3, 4], shards=2, max_workers=2, runtime=ctx)
        assert results == [1.0, 2.0, 3.0, 4.0]
        # Absorbed before the fan-out: a lookup is a hit, not a recompute.
        assert ctx.cached_reward("live", "foreign", lambda: 0.0) == 7.25
        # Published after the merge: a fresh process sees this wave's rewards.
        entries, status = SharedCacheStore(ctx.snapshot_path()).load()
        assert status.status == "loaded"
        assert entries["reward"][("live", "foreign")] == 7.25
        for item in (1, 2, 3, 4):
            assert entries["reward"][("live", f"sig{item}")] == float(item)

    def test_serial_fallback_path_syncs_too(self, tmp_path):
        """On a one-core box sharded_map degrades to serial; sync must survive."""
        ctx = _live_context(tmp_path)
        results = sharded_map(_live_probe, [5, 6], shards=4, max_workers=1, runtime=ctx)
        assert results == [5.0, 6.0]
        entries, status = SharedCacheStore(ctx.snapshot_path()).load()
        assert status.status == "loaded"
        assert entries["reward"] == {("live", "sig5"): 5.0, ("live", "sig6"): 6.0}

    def test_held_lock_skips_the_publish_without_failing_the_map(
        self, tmp_path, lock_holder, caplog
    ):
        ctx = _live_context(tmp_path, cache_lock_timeout=0.2)
        SharedCacheStore(ctx.snapshot_path()).publish(
            {"reward": {("live", "foreign"): 7.25}}
        )
        holder = lock_holder(ctx.snapshot_path() + ".lock")
        with caplog.at_level(logging.WARNING, logger="repro.search.parallel"):
            results = sharded_map(
                _live_probe, [1, 2, 3, 4], shards=2, max_workers=2, runtime=ctx
            )
        assert results == [1.0, 2.0, 3.0, 4.0]  # live sync never gates results
        # The refresh is lock-free and still absorbed the foreign entry...
        assert ctx.cached_reward("live", "foreign", lambda: 0.0) == 7.25
        # ...but the publish was skipped, with a warning, not an error.
        assert any("live cache publish" in message for message in caplog.messages)
        holder.release()
        entries, _ = SharedCacheStore(ctx.snapshot_path()).load()
        assert ("live", "sig1") not in entries["reward"]

    def test_publish_recovers_from_a_crashed_writer(self, tmp_path, crashed_writer):
        """A SIGKILLed writer's dead-pid lock and torn tail don't stop live sync."""
        ctx = _live_context(tmp_path, cache_lock_timeout=5.0)
        Path(ctx.snapshot_path()).parent.mkdir(parents=True, exist_ok=True)
        crashed_writer(ctx.snapshot_path())
        results = sharded_map(_live_probe, [1, 2], shards=2, max_workers=2, runtime=ctx)
        assert results == [1.0, 2.0]
        entries, status = SharedCacheStore(ctx.snapshot_path()).load()
        assert status.status == "loaded"
        assert status.error == ""  # the publish repaired the torn tail
        assert entries["reward"][("live", "sig1")] == 1.0

    def test_live_sync_is_off_by_default(self, tmp_path):
        ctx = RuntimeContext(RuntimeConfig(results_dir=str(tmp_path / "results")))
        assert sharded_map(_live_probe, [1, 2], shards=2, max_workers=2, runtime=ctx) == [1.0, 2.0]
        assert not Path(ctx.snapshot_path()).exists()
