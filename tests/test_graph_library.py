"""Tests for the ahead-of-time graph library (:mod:`repro.library`).

Covers the determinism contract (serial == sharded == crash-resumed builds,
bit for bit), the on-disk artifact/sidecar format, the structural embeddings,
signature invariances the dedup relies on, warm-started search, the runtime
knobs, and the `repro library` / `repro list --json` CLI surface.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.cli.main import main
from repro.core.canonicalize import canonical_commuting_order
from repro.core.enumeration import SynthesisStats, enumerate_children
from repro.core.library import K, M, OUT_FEATURES, matmul_spec
from repro.core.mcts import MCTS, MCTSConfig
from repro.core.pgraph import PGraph, reserve_dim_uids
from repro.core.primitives import Reduce, Shift
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import primary
from repro.library.builder import build_library
from repro.library.embeddings import (
    FEATURE_NAMES,
    distance,
    feature_vector,
    nearest_neighbours,
)
from repro.library.specs import design_spaces, space_for
from repro.library.store import (
    GraphLibrary,
    RewardSidecar,
    checkpoint_filename,
    context_digest,
    library_filename,
    options_fingerprint,
    spec_key,
)
from repro.library.warmstart import (
    export_rewards,
    find_library_name,
    plan_warm_start,
)
from repro.runtime import RuntimeConfig, RuntimeContext
from repro.search.session import SearchConfig

A = primary("A", default=8)
B = primary("B", default=12)


def _runtime(tmp_path, **overrides) -> RuntimeContext:
    """An isolated context (own caches) rooted inside the test's tmp dir."""
    config = RuntimeConfig(
        results_dir=str(tmp_path / "results"),
        library_dir=str(tmp_path / "library"),
        **overrides,
    )
    return RuntimeContext(config)


def _gpt2_space(max_depth: int = 3):
    return space_for("gpt2", max_depth=max_depth)


def _build_gpt2(runtime: RuntimeContext, **kwargs):
    space = _gpt2_space()
    return build_library(
        space.spec, space.options, name=space.name, runtime=runtime, **kwargs
    )


# ---------------------------------------------------------------------------
# Build determinism: serial == sharded == resumed
# ---------------------------------------------------------------------------


class TestBuildDeterminism:
    def test_serial_and_sharded_builds_are_bit_identical(self, tmp_path):
        serial_rt = _runtime(tmp_path / "serial")
        sharded_rt = _runtime(tmp_path / "sharded")
        serial = _build_gpt2(serial_rt, shards=1)
        sharded = _build_gpt2(sharded_rt, shards=3)
        assert serial.entries == sharded.entries > 0
        assert serial.content_hash == sharded.content_hash
        with open(serial.path, "rb") as handle:
            serial_bytes = handle.read()
        with open(sharded.path, "rb") as handle:
            sharded_bytes = handle.read()
        assert serial_bytes == sharded_bytes

    def test_matching_artifact_is_reused_and_force_rebuilds(self, tmp_path):
        runtime = _runtime(tmp_path)
        first = _build_gpt2(runtime)
        assert not first.reused
        second = _build_gpt2(runtime)
        assert second.reused
        assert second.content_hash == first.content_hash
        third = _build_gpt2(runtime, force=True)
        assert not third.reused
        assert third.content_hash == first.content_hash

    def test_sigkill_mid_build_resumes_to_the_same_hash(self, tmp_path):
        """A build SIGKILLed after its level-2 checkpoint converges on resume.

        The child builds serially and kills itself (hard, no cleanup) once
        the level-2 checkpoint is durable; the parent then resumes the build
        at a different shard count and must reproduce the uninterrupted
        artifact bit for bit.
        """
        fresh = _build_gpt2(_runtime(tmp_path / "fresh"))
        runtime = _runtime(tmp_path / "crashed")

        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process
            os.close(read_fd)

            def kill_at_level_two(level: int) -> None:
                if level == 2:
                    os.write(write_fd, b"k")
                    os.kill(os.getpid(), signal.SIGKILL)

            _build_gpt2(runtime, shards=1, on_level=kill_at_level_two)
            os._exit(1)  # unreachable when the kill fires

        os.close(write_fd)
        assert os.read(read_fd, 1) == b"k"
        os.close(read_fd)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL

        checkpoint = os.path.join(runtime.library_path(), checkpoint_filename("gpt2"))
        assert os.path.exists(checkpoint)

        resumed = _build_gpt2(runtime, shards=2)
        assert resumed.resumed_from_level == 2
        assert resumed.content_hash == fresh.content_hash
        assert not os.path.exists(checkpoint), "a finished build removes its checkpoint"

    def test_torn_checkpoint_falls_back_to_a_fresh_build(self, tmp_path):
        fresh = _build_gpt2(_runtime(tmp_path / "fresh"))
        runtime = _runtime(tmp_path / "torn")

        class _Stop(Exception):
            pass

        def stop_at_level_one(level: int) -> None:
            if level == 1:
                raise _Stop()

        with pytest.raises(_Stop):
            _build_gpt2(runtime, on_level=stop_at_level_one)
        checkpoint = os.path.join(runtime.library_path(), checkpoint_filename("gpt2"))
        size = os.path.getsize(checkpoint)
        with open(checkpoint, "r+b") as handle:
            handle.truncate(size - 7)  # tear the pickle frame's tail

        resumed = _build_gpt2(runtime)
        assert resumed.resumed_from_level == 0
        assert resumed.content_hash == fresh.content_hash

    def test_garbage_checkpoint_is_ignored(self, tmp_path):
        runtime = _runtime(tmp_path)
        os.makedirs(runtime.library_path(), exist_ok=True)
        checkpoint = os.path.join(runtime.library_path(), checkpoint_filename("gpt2"))
        with open(checkpoint, "wb") as handle:
            handle.write(b"not a checkpoint at all")
        result = _build_gpt2(runtime)
        assert result.resumed_from_level == 0
        assert result.entries > 0


# ---------------------------------------------------------------------------
# Artifact and sidecar format
# ---------------------------------------------------------------------------


class TestStoreFormat:
    def test_artifact_round_trips_through_disk(self, tmp_path):
        runtime = _runtime(tmp_path)
        built = _build_gpt2(runtime)
        loaded = GraphLibrary.load(built.path)
        assert loaded is not None
        assert len(loaded) == built.entries
        assert loaded.content_hash() == built.content_hash
        assert loaded.meta["spec_key"] == spec_key(_gpt2_space().spec)
        by_signature = {entry.signature: entry for entry in loaded}
        for entry in built.library:
            twin = by_signature[entry.signature]
            assert twin.to_payload() == entry.to_payload()

    def test_prefix_signature_walks_to_a_depth_one_ancestor(self, tmp_path):
        runtime = _runtime(tmp_path)
        library = _build_gpt2(runtime).library
        depth_one = {e.signature for e in library if e.depth == 1}
        assert depth_one
        for entry in library.complete_entries():
            prefix = library.prefix_signature(entry, depth=1)
            assert prefix in depth_one
            assert entry.signature.startswith(prefix)

    def test_complete_entries_carry_neighbours(self, tmp_path):
        runtime = _runtime(tmp_path)
        library = _build_gpt2(runtime).library
        complete = library.complete_entries()
        assert complete
        signatures = {entry.signature for entry in complete}
        for entry in complete:
            assert entry.neighbours, "every complete entry gets a kNN list"
            assert entry.signature not in entry.neighbours
            assert set(entry.neighbours) <= signatures

    def test_spec_key_and_options_fingerprint_sensitivity(self):
        deep = _gpt2_space(max_depth=3)
        deeper = space_for("gpt2", max_depth=4)
        assert spec_key(deep.spec) == spec_key(deeper.spec)
        assert options_fingerprint(deep.options) != options_fingerprint(deeper.options)
        other = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        assert spec_key(other) != spec_key(deep.spec)

    def test_sidecar_round_trip_is_idempotent_and_context_scoped(self, tmp_path):
        sidecar = RewardSidecar(str(tmp_path / "rewards-test-v1.rplb"))
        digest = context_digest(("ctx", 1))
        assert sidecar.load(digest) == {}
        assert sidecar.publish(digest, {"sig-a": 0.25, "sig-b": 0.75}) == 2
        assert sidecar.publish(digest, {"sig-a": 0.25, "sig-b": 0.75}) == 0
        assert sidecar.publish(digest, {"sig-b": 0.75, "sig-c": 0.5}) == 1
        assert sidecar.load(digest) == {"sig-a": 0.25, "sig-b": 0.75, "sig-c": 0.5}
        assert sidecar.load(context_digest(("ctx", 2))) == {}


# ---------------------------------------------------------------------------
# Structural embeddings
# ---------------------------------------------------------------------------


class TestEmbeddings:
    def test_feature_vector_matches_the_declared_names(self):
        space = _gpt2_space()
        root = PGraph.root(space.spec.output_shape, space.spec.input_shape)
        features = feature_vector(root, space.binding)
        assert len(features) == len(FEATURE_NAMES)
        assert all(isinstance(value, float) for value in features)

    def test_distance_is_a_metric_on_identical_vectors(self):
        assert distance((1.0, 2.0), (1.0, 2.0)) == 0.0
        assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)

    def test_nearest_neighbours_excludes_self_and_sorts_by_distance(self):
        pool = [
            ("far", (10.0, 0.0)),
            ("near", (1.0, 0.0)),
            ("self", (0.0, 0.0)),
            ("mid", (5.0, 0.0)),
        ]
        ranked = nearest_neighbours("self", (0.0, 0.0), pool, k=3)
        assert list(ranked) == ["near", "mid", "far"]


# ---------------------------------------------------------------------------
# Signature invariances the dedup rests on
# ---------------------------------------------------------------------------


class TestSignatureInvariance:
    def test_relabeling_invariance_across_independent_roots(self):
        """The same action sequence on fresh roots (fresh uids) collapses."""

        def build_once() -> str:
            root = PGraph.root(ShapeSpec.of([A, B]), ShapeSpec.of([A, B]))
            graph = Reduce(size=Size.of(K)).apply(root, ())
            graph = Shift(1).apply(graph, (graph.frontier[0],))
            return graph.signature()

        assert build_once() == build_once()

    def test_uid_reservation_keeps_worker_minted_dims_fresh(self):
        root = PGraph.root(ShapeSpec.of([A, B]), ShapeSpec.of([A, B]))
        highest = max(dim.uid for dim in root.frontier)
        reserve_dim_uids(highest + 64)
        fresh = PGraph.root(ShapeSpec.of([A, B]), ShapeSpec.of([A, B]))
        assert min(dim.uid for dim in fresh.frontier) > highest + 64

    def test_commuting_orders_have_one_canonical_representative(self):
        """Independent applications survive canonicalization in one order only."""
        root = PGraph.root(ShapeSpec.of([A, B]), ShapeSpec.of([A, B]))
        first, second = root.frontier
        after_first = Shift(1).apply(root, (first,))
        after_second = Shift(1).apply(root, (second,))
        order_one = canonical_commuting_order(after_first, Shift(1), (second,))
        order_two = canonical_commuting_order(after_second, Shift(1), (first,))
        assert order_one != order_two, "exactly one commuting order is canonical"

    def test_distinct_root_children_do_not_collide(self):
        space = _gpt2_space()
        root = PGraph.root(space.spec.output_shape, space.spec.input_shape)
        children = enumerate_children(root, space.options)
        signatures = [graph.signature() for _, graph in children]
        assert len(signatures) == len(set(signatures))
        assert len(signatures) > 1

    def test_library_signatures_are_globally_unique(self, tmp_path):
        library = _build_gpt2(_runtime(tmp_path)).library
        signatures = [entry.signature for entry in library]
        assert len(signatures) == len(set(signatures))


# ---------------------------------------------------------------------------
# Synthesis statistics (per-rule rejections, shape-distance dead ends)
# ---------------------------------------------------------------------------


class TestSynthesisStats:
    def test_enumerate_children_attributes_rejections_to_rules(self):
        space = _gpt2_space()
        root = PGraph.root(space.spec.output_shape, space.spec.input_shape)
        stats = SynthesisStats()
        enumerate_children(root, space.options, stats=stats)
        assert sum(stats.canonicalization_rejections.values()) >= 0
        # Two levels in, the commuting-order rule must have fired.
        for _, child in enumerate_children(root, space.options):
            enumerate_children(child, space.options, stats=stats)
        assert "canonical_commuting_order" in stats.canonicalization_rejections

    def test_build_persists_stats_into_the_artifact(self, tmp_path):
        library = _build_gpt2(_runtime(tmp_path)).library
        stats = library.meta["stats"]
        assert stats["nodes_visited"] > 0
        assert stats["children_generated"] > 0
        assert stats["dead_ends_by_distance"] >= 0
        assert stats["canonicalization_rejections"], "gpt2 space rejects some orders"
        assert stats["feature_names"] == list(FEATURE_NAMES)

    def test_stats_merge_folds_rule_counts(self):
        left = SynthesisStats(nodes_visited=2)
        left.note_canonicalization_rejection("rule_a")
        right = SynthesisStats(nodes_visited=3, dead_ends_by_distance=1)
        right.note_canonicalization_rejection("rule_a")
        right.note_canonicalization_rejection("rule_b")
        left.merge(right)
        assert left.nodes_visited == 5
        assert left.dead_ends_by_distance == 1
        assert left.canonicalization_rejections == {"rule_a": 2, "rule_b": 1}


# ---------------------------------------------------------------------------
# Warm-started search
# ---------------------------------------------------------------------------


def _toy_search(reward_fn, *, seed=1, iterations=25, root_priority=()):
    space = _gpt2_space()
    return MCTS(
        spec=space.spec,
        options=space.options,
        reward_fn=reward_fn,
        config=MCTSConfig(
            iterations=iterations, seed=seed, root_priority=tuple(root_priority)
        ),
    )


def _sample_keys(samples):
    return [(s.operator.graph.signature(), s.reward, s.iteration) for s in samples]


class TestWarmStart:
    def test_plan_is_none_without_a_library(self, tmp_path):
        runtime = _runtime(tmp_path)
        space = _gpt2_space()
        assert find_library_name(space.spec, runtime) is None
        assert plan_warm_start(space.spec, cache_context="c", runtime=runtime) is None

    def test_find_library_name_discovers_by_spec_key(self, tmp_path):
        runtime = _runtime(tmp_path)
        _build_gpt2(runtime)
        space = _gpt2_space()
        assert find_library_name(space.spec, runtime) == "gpt2"
        other = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
        assert find_library_name(other, runtime) is None

    def test_plan_ranks_rewarded_entries_first_and_seeds_the_cache(self, tmp_path):
        runtime = _runtime(tmp_path)
        built = _build_gpt2(runtime)
        complete = sorted(e.signature for e in built.library.complete_entries())
        rewarded = complete[-1]  # last alphabetically: rank must beat the order
        context = ("proxy", 3)
        assert export_rewards(
            {rewarded: 0.9}, name="gpt2", cache_context=context, runtime=runtime
        ) == 1

        plan = plan_warm_start(
            _gpt2_space().spec, cache_context=context, runtime=runtime
        )
        assert plan is not None
        assert plan.name == "gpt2"
        assert plan.content_hash == built.content_hash
        assert plan.seeded_rewards == 1
        assert (context, rewarded) in runtime.caches.reward
        depth_one = {e.signature for e in built.library if e.depth == 1}
        assert plan.root_priority
        assert set(plan.root_priority) <= depth_one
        # The rewarded entry's depth-1 ancestor leads the priority list.
        rewarded_entry = built.library.get(rewarded)
        assert plan.root_priority[0] == built.library.prefix_signature(
            rewarded_entry, depth=1
        )

        # Re-planning seeds nothing new: the cache already holds the reward.
        again = plan_warm_start(
            _gpt2_space().spec, cache_context=context, runtime=runtime
        )
        assert again is not None and again.seeded_rewards == 0

    def test_root_priority_expands_the_preferred_child_first(self, tmp_path):
        space = _gpt2_space()
        root = PGraph.root(space.spec.output_shape, space.spec.input_shape)
        children = enumerate_children(root, space.options)
        preferred = sorted(graph.signature() for _, graph in children)[0]

        search = _toy_search(lambda op: 0.5, root_priority=(preferred,))
        search.run()
        expanded = [child.graph.signature() for child in search._root.children]
        assert expanded, "the toy search must expand the root"
        assert expanded[0] == preferred

    def test_unmatched_priority_reproduces_the_cold_search_exactly(self):
        cold = _toy_search(lambda op: 0.5).run()
        noop = _toy_search(lambda op: 0.5, root_priority=("no-such-sig",)).run()
        assert _sample_keys(noop) == _sample_keys(cold)

    def test_prioritized_search_is_deterministic(self):
        space = _gpt2_space()
        root = PGraph.root(space.spec.output_shape, space.spec.input_shape)
        sig = enumerate_children(root, space.options)[0][1].signature()
        one = _toy_search(lambda op: 0.5, root_priority=(sig,)).run()
        two = _toy_search(lambda op: 0.5, root_priority=(sig,)).run()
        assert _sample_keys(one) == _sample_keys(two)

    def test_warm_started_experiment_saves_proxy_trainings(self, tmp_path):
        """End to end: cold run -> export rewards -> warm run trains less."""
        config = ExperimentConfig(smoke=True)

        cold_rt = _runtime(tmp_path, warm_start=False)
        with cold_rt.activate(adopt=False):
            cold = run_experiment("search", config, store=None)
        cold_entries = cold_rt.caches.reward.export_entries()
        assert cold_entries, "the cold search must proxy-train candidates"
        context = next(iter(cold_entries))[0]
        exported = export_rewards(
            {sig: reward for (_, sig), reward in cold_entries.items()},
            name="gpt2",
            cache_context=context,
            runtime=cold_rt,
        )
        assert exported == len(cold_entries)
        _build_gpt2(cold_rt)  # the artifact the warm run auto-discovers

        warm_rt = _runtime(tmp_path, warm_start=True)
        with warm_rt.activate(adopt=False):
            plan = plan_warm_start(
                _gpt2_space().spec, cache_context=context, runtime=warm_rt
            )
            assert plan is not None and plan.seeded_rewards == len(cold_entries)
            warm = run_experiment("search", config, store=None)
        warm_entries = warm_rt.caches.reward.export_entries()
        warm_trainings = len(warm_entries) - plan.seeded_rewards
        assert warm_trainings < len(cold_entries)
        # Seeded rewards keep the warm run's best at least as good as cold.
        assert max(warm_entries.values()) >= max(cold_entries.values())
        assert warm.record.status == "completed"

    def test_search_config_effective_warm_start(self, tmp_path):
        on = _runtime(tmp_path, warm_start=True)
        off = _runtime(tmp_path, warm_start=False)
        assert SearchConfig().effective_warm_start(on) is True
        assert SearchConfig().effective_warm_start(off) is False
        assert SearchConfig(warm_start=False).effective_warm_start(on) is False
        assert SearchConfig(warm_start=True).effective_warm_start(off) is True


# ---------------------------------------------------------------------------
# Runtime knobs
# ---------------------------------------------------------------------------


class TestRuntimeKnobs:
    def test_env_parsing_and_provenance(self):
        config = RuntimeConfig.from_env(
            {"REPRO_LIBRARY_DIR": "/elsewhere/lib", "REPRO_WARM_START": "1"}
        )
        assert config.library_dir == "/elsewhere/lib"
        assert config.warm_start is True
        assert config.provenance_map()["library_dir"] == "env"
        assert config.provenance_map()["warm_start"] == "env"

    def test_library_root_defaults_under_results_dir(self):
        config = RuntimeConfig.from_env({"REPRO_RESULTS_DIR": "/tmp/r"})
        assert config.library_root() == os.path.join("/tmp/r", "library")
        assert config.describe()["library_dir"] == os.path.join("/tmp/r", "library")
        assert config.describe()["warm_start"] is False

    def test_context_library_path_follows_the_config(self, tmp_path):
        runtime = _runtime(tmp_path)
        assert runtime.library_path() == str(tmp_path / "library")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def _cli_dirs(tmp_path) -> list[str]:
    return [
        "--library-dir", str(tmp_path / "library"),
        "--results-dir", str(tmp_path / "results"),
    ]


class TestLibraryCli:
    def test_build_stats_query_round_trip(self, tmp_path, capsys):
        assert main(
            ["library", "build", "gpt2", "--max-depth", "2", *_cli_dirs(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "gpt2" in out and "built" in out

        assert main(["library", "stats", "--json", *_cli_dirs(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        (entry,) = payload["libraries"]
        assert entry["name"] == "gpt2"
        assert entry["entries"] > 0
        assert "canonicalization_rejections" in entry["stats"]
        assert "dead_ends_by_distance" in entry["stats"]

        assert main(
            ["library", "stats", "gpt2", *_cli_dirs(tmp_path)]
        ) == 0
        human = capsys.readouterr().out
        assert "canonicalization rejections" in human
        assert "shape distance" in human

        assert main(
            ["library", "query", "gpt2", "--top", "2", "--json", *_cli_dirs(tmp_path)]
        ) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["complete"] >= len(listing["entries"]) > 0
        signature = listing["entries"][0]["signature"]

        assert main(
            [
                "library", "query", "gpt2",
                "--signature", signature,
                "--json",
                *_cli_dirs(tmp_path),
            ]
        ) == 0
        entry = json.loads(capsys.readouterr().out)
        assert entry["signature"] == signature
        assert entry["complete"] is True

    def test_build_rejects_an_unknown_family(self, tmp_path, capsys):
        assert main(["library", "build", "nope", *_cli_dirs(tmp_path)]) == 2
        assert "unknown family" in capsys.readouterr().err

    def test_stats_fails_cleanly_on_an_empty_root(self, tmp_path, capsys):
        assert main(["library", "stats", *_cli_dirs(tmp_path)]) == 1
        assert "no library artifacts" in capsys.readouterr().err

    def test_query_fails_cleanly_without_an_artifact(self, tmp_path, capsys):
        assert main(["library", "query", "gpt2", *_cli_dirs(tmp_path)]) == 1
        assert "no artifact" in capsys.readouterr().err

    def test_every_family_is_buildable(self):
        # The registry itself: every family resolves to a bound space whose
        # budgets are positive (a build would run; building all five here
        # would be slow for a unit test).
        spaces = design_spaces()
        assert set(spaces) == {"gpt2", "resnet", "resnext", "densenet", "efficientnet"}
        for space in spaces.values():
            assert space.options.max_depth >= 2
            assert space.binding, "every space is fully bound"

    def test_list_json_renders_experiments_and_runs(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        assert main(["list", "--json", "--results-dir", results]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "search" in payload["experiments"]
        assert payload["runs"] == []
        assert payload["results_dir"] == results
