"""Unit and property tests for symbolic sizes (repro.ir.size)."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.ir.size import Size, SizeError
from repro.ir.variables import Variable, VariableKind, coefficient, primary

H = primary("H", default=8)
W = primary("W", default=6)
S = coefficient("s", default=2)


class TestConstruction:
    def test_of_int(self):
        assert Size.of(4).evaluate({}) == 4

    def test_of_variable(self):
        assert Size.of(H).evaluate({H: 10}) == 10

    def test_of_size_is_identity(self):
        size = Size.of(H) * 2
        assert Size.of(size) is size

    def test_rejects_non_positive_ints(self):
        with pytest.raises(SizeError):
            Size.of(0)
        with pytest.raises(SizeError):
            Size.of(-3)

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            Size.of("H")

    def test_one(self):
        assert Size.one().is_one
        assert Size.one().evaluate({}) == 1

    def test_product(self):
        assert Size.product([2, 3, H]).evaluate({H: 5}) == 30


class TestAlgebra:
    def test_multiplication_combines_powers(self):
        size = Size.of(H) * Size.of(H)
        assert size.power_of(H) == 2
        assert size.evaluate({H: 3}) == 9

    def test_multiplication_by_int(self):
        assert (Size.of(H) * 4).evaluate({H: 2}) == 8
        assert (4 * Size.of(H)).evaluate({H: 2}) == 8

    def test_division_cancels(self):
        size = (Size.of(H) * Size.of(S)) / Size.of(S)
        assert size == Size.of(H)

    def test_division_creates_negative_power(self):
        size = Size.of(H) / Size.of(S)
        assert size.power_of(S) == -1
        assert size.evaluate({H: 8, S: 2}) == 4

    def test_pow(self):
        assert Size.of(H).pow(3).evaluate({H: 2}) == 8

    def test_structural_equality(self):
        assert Size.of(H) * 2 == 2 * Size.of(H)
        assert Size.of(H) * Size.of(W) == Size.of(W) * Size.of(H)

    def test_hashable(self):
        assert len({Size.of(H), Size.of(H), Size.of(W)}) == 2


class TestQueries:
    def test_variables_by_kind(self):
        size = Size.of(H) / Size.of(S)
        assert size.primary_variables() == frozenset({H})
        assert size.coefficient_variables() == frozenset({S})

    def test_primary_in_denominator_flag(self):
        assert (Size.one() / H).has_primary_in_denominator
        assert not (Size.of(H) / S).has_primary_in_denominator

    def test_divides(self):
        assert Size.of(S).divides(Size.of(H) * S)
        assert not (Size.of(H) * S).divides(Size.of(S))

    def test_is_plausible(self):
        assert (Size.of(H) / S).is_plausible
        assert not (Size.one() / H).is_plausible
        assert not Size(Fraction(1, 2), ()).is_plausible

    def test_degree(self):
        size = Size.of(H) * Size.of(W) / Size.of(S)
        assert size.degree(VariableKind.PRIMARY) == 2
        assert size.degree(VariableKind.COEFFICIENT) == -1


class TestEvaluation:
    def test_uses_defaults(self):
        assert Size.of(H).evaluate() == 8

    def test_missing_binding_raises(self):
        unbound = Variable("Q")
        with pytest.raises(SizeError):
            Size.of(unbound).evaluate({})

    def test_non_integer_result_raises(self):
        with pytest.raises(SizeError):
            (Size.of(H) / S).evaluate({H: 7, S: 2})

    def test_evaluates_to_integer_predicate(self):
        assert (Size.of(H) / S).evaluates_to_integer({H: 8, S: 2})
        assert not (Size.of(H) / S).evaluates_to_integer({H: 7, S: 2})

    def test_non_positive_binding_raises(self):
        with pytest.raises(SizeError):
            Size.of(H).evaluate({H: 0})


@given(
    a=st.integers(min_value=1, max_value=64),
    b=st.integers(min_value=1, max_value=64),
    c=st.integers(min_value=1, max_value=8),
)
def test_property_mul_div_roundtrip(a: int, b: int, c: int):
    """(x * y) / y == x and evaluation is multiplicative."""
    x = Size.of(a) * H
    y = Size.of(b) * Size.of(S).pow(c)
    assert (x * y) / y == x
    binding = {H: 4, S: 2}
    assert (x * y).evaluate(binding) == x.evaluate(binding) * y.evaluate(binding)


@given(st.integers(min_value=1, max_value=1000))
def test_property_constant_roundtrip(value: int):
    assert Size.of(value).evaluate({}) == value
