"""Tests for the evaluation-reuse subsystem (reward/compile/baseline caches).

Covers the process-wide caches in :mod:`repro.search.cache`, their wiring
into MCTS, the compiler backends and the search session, and the budget
plumbing bugfixes (``REPRO_TRAIN_STEPS``, ``rollout_depth=0``, narrowed
reward-suppression).
"""

from __future__ import annotations

import pytest

from repro.codegen.eager import LoweringError
from repro.compiler.backends import CompilerBackend, TuneResult, TVMBackend, loopnest_for_slot
from repro.compiler.schedule import default_schedule
from repro.compiler.targets import MOBILE_CPU
from repro.core.enumeration import default_options_for
from repro.core.library import K, M, OUT_FEATURES, matmul_spec
from repro.core.mcts import MCTS, MCTSConfig
from repro.nn.models.common import ConvSlot
from repro.nn.models.resnet import resnet18
from repro.search import SearchConfig, SearchSession
from repro.search.cache import (
    KeyedCache,
    cache_max_entries,
    cache_stats,
    cached_reward,
    caches_enabled,
    clear_caches,
    compile_cache,
    default_train_steps,
    load_caches,
    parallel_map,
    reward_cache,
    save_caches,
    smoke_mode,
)
from repro.search.evaluator import AccuracyEvaluator, EvaluationSettings


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts and ends with empty process-wide caches."""
    clear_caches()
    yield
    clear_caches()


def _matmul_search(reward_fn, *, seed=1, iterations=40, cache_context=None, rollout_depth=None):
    spec = matmul_spec(bindings=({M: 4, K: 6, OUT_FEATURES: 5},))
    options = default_options_for(spec, coefficients=[], max_depth=3)
    return MCTS(
        spec=spec,
        options=options,
        reward_fn=reward_fn,
        config=MCTSConfig(
            iterations=iterations,
            seed=seed,
            cache_context=cache_context,
            rollout_depth=rollout_depth,
        ),
    )


class TestKeyedCache:
    def test_get_or_compute_counts_hits_and_misses(self):
        cache = KeyedCache("t")
        calls = []
        assert cache.get_or_compute("k", lambda: calls.append(1) or 7) == 7
        assert cache.get_or_compute("k", lambda: calls.append(1) or 8) == 7
        assert len(calls) == 1
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_disable_knob_bypasses_the_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_EVAL_CACHE", "0")
        assert not caches_enabled()
        cache = KeyedCache("t")
        calls = []
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        cache.get_or_compute("k", lambda: calls.append(1) or 1)
        assert len(calls) == 2
        monkeypatch.delenv("REPRO_EVAL_CACHE")
        assert caches_enabled()

    def test_clear_resets_contents_and_stats(self):
        cache = KeyedCache("t")
        cache.put("k", 1)
        cache.lookup("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0


class TestSnapshotEviction:
    """The persisted snapshot is size-capped with LRU-style eviction."""

    def test_export_keeps_the_most_recently_used_entries(self):
        cache = KeyedCache("t")
        for index in range(5):
            cache.put(index, index)
        cache.lookup(0)  # refresh: 0 is now the most recently used
        exported = cache.export_entries(max_entries=3)
        assert set(exported) == {3, 4, 0}
        # The in-memory cache itself is never evicted.
        assert len(cache) == 5

    def test_export_without_cap_returns_everything(self):
        cache = KeyedCache("t")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.export_entries() == {"a": 1, "b": 2}
        assert cache.export_entries(max_entries=0) == {"a": 1, "b": 2}

    def test_save_caches_applies_the_cap_and_load_restores_survivors(self, tmp_path):
        for index in range(6):
            cached_reward("evict-ctx", f"sig{index}", lambda index=index: float(index))
        cached_reward("evict-ctx", "sig1", lambda: -1.0)  # hit: refreshes sig1
        path = tmp_path / "snapshot.pkl"
        saved = save_caches(str(path), max_entries=3)
        assert saved["reward"] == 3

        clear_caches()
        loaded = load_caches(str(path))
        assert loaded["reward"] == 3
        survivors = {
            signature
            for signature in (f"sig{index}" for index in range(6))
            if ("evict-ctx", signature) in reward_cache()
        }
        assert survivors == {"sig1", "sig4", "sig5"}

    def test_cap_knob_reads_environment(self, monkeypatch):
        assert cache_max_entries() == 4096
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        assert cache_max_entries() == 7
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "0")
        assert cache_max_entries() == 0  # <= 0 disables the cap


class TestRewardCacheAcrossRuns:
    def test_second_mcts_run_reuses_rewards(self):
        calls = []

        def reward(operator):
            calls.append(operator.graph.signature())
            return 0.5

        first = _matmul_search(reward, cache_context="shared-spec")
        first_samples = first.run()
        first_calls = len(calls)
        assert first_samples and first_calls > 0

        second = _matmul_search(reward, cache_context="shared-spec")
        second_samples = second.run()
        # Identical seed and spec: every rollout's reward is already cached,
        # so the reward function is never invoked again...
        assert len(calls) == first_calls
        assert reward_cache().stats.hits > 0
        # ...but the second run still records its own samples.
        assert [s.operator.graph.signature() for s in second_samples] == [
            s.operator.graph.signature() for s in first_samples
        ]

    def test_within_run_memoization_survives_cache_disable(self, monkeypatch):
        """MCTS never re-evaluates a signature in one run, even with caches off."""
        monkeypatch.setenv("REPRO_EVAL_CACHE", "0")
        calls = []

        def reward(operator):
            calls.append(operator.graph.signature())
            return 0.5

        _matmul_search(reward, iterations=50).run()
        assert len(calls) == len(set(calls))

    def test_private_contexts_do_not_share_rewards(self):
        calls = []

        def reward(operator):
            calls.append(operator.graph.signature())
            return 0.5

        _matmul_search(reward).run()  # cache_context=None: instance-private
        first_calls = len(calls)
        _matmul_search(reward).run()
        assert len(calls) == 2 * first_calls


class TestRolloutDepthZero:
    def test_rollout_depth_zero_is_respected(self):
        """``rollout_depth=0`` must not silently fall back to max_depth."""

        def reward(operator):  # pragma: no cover - must never run
            raise AssertionError("rollout_depth=0 should prevent any completion")

        search = _matmul_search(reward, iterations=10, rollout_depth=0)
        samples = search.run()
        assert samples == []

    def test_rollout_depth_none_still_defaults_to_max_depth(self):
        search = _matmul_search(lambda operator: 0.5, iterations=40, rollout_depth=None)
        assert search.run(), "default rollout depth should still find operators"


class TestCompileCache:
    def test_compile_cache_hit_counts(self):
        backend = TVMBackend(trials=8)
        program = loopnest_for_slot(ConvSlot("c", 16, 16, 8, 3, 1))
        first = backend.compile(program, MOBILE_CPU)
        second = backend.compile(program, MOBILE_CPU)
        assert second is first
        stats = cache_stats()["compile"]
        assert stats.hits == 1 and stats.misses == 1

    def test_different_backend_config_is_a_different_key(self):
        program = loopnest_for_slot(ConvSlot("c", 16, 16, 8, 3, 1))
        TVMBackend(trials=8).compile(program, MOBILE_CPU)
        TVMBackend(trials=16).compile(program, MOBILE_CPU)
        assert cache_stats()["compile"].misses == 2

    def test_second_suite_run_has_positive_hit_rate(self):
        """Re-running an evaluation hits the caches instead of re-tuning."""
        backend = TVMBackend(trials=8)
        slots = [ConvSlot(f"c{i}", 16, 16, 8, 3, 1) for i in range(3)]
        for _ in range(2):
            for slot in slots:
                backend.compile(loopnest_for_slot(slot), MOBILE_CPU)
        stats = cache_stats()["compile"]
        assert stats.hit_rate > 0.0
        # The three slots share one shape, so even the first sweep reuses it.
        assert stats.misses == 1


class _CountingBackend(CompilerBackend):
    """A backend that counts how many programs it actually tunes."""

    name = "counting"

    def __init__(self):
        self.compiled = 0

    def config_key(self):
        return (self.name, id(self))  # never shares cache entries across tests

    def _compile_uncached(self, program, target):
        self.compiled += 1
        return TuneResult(
            latency_seconds=1e-3, schedule=default_schedule(), backend=self.name, trials=1
        )


class TestSessionBaselineHoisting:
    def test_baseline_compiled_exactly_once_per_session(self):
        backend = _CountingBackend()
        session = SearchSession(
            resnet18,
            config=SearchConfig(evaluation=EvaluationSettings(train_steps=1)),
            backends=[backend],
            targets=[MOBILE_CPU],
        )
        from repro.core.library import build_operator2

        operator = build_operator2()
        session.evaluate_operator(operator, accuracy=1.0)
        after_first = backend.compiled
        session.evaluate_operator(operator, accuracy=1.0)
        # The second candidate triggers no further baseline compilation: every
        # unique program was compiled during the first evaluation (identical
        # slot programs also dedupe through the compile cache).
        assert backend.compiled == after_first

    def test_accuracy_baseline_trained_once_per_session(self):
        settings = EvaluationSettings(train_steps=1, dataset_size=32, batch_size=8)
        evaluator = AccuracyEvaluator(resnet18, settings)
        calls = []
        original = evaluator._train

        def counting_train(factory):
            calls.append(factory)
            return original(factory)

        evaluator._train = counting_train
        first = evaluator.baseline_accuracy()
        second = evaluator.baseline_accuracy()
        assert first == second
        assert len(calls) == 1


class TestBudgetPlumbing:
    def test_train_steps_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "7")
        assert EvaluationSettings().train_steps == 7

    def test_explicit_train_steps_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "7")
        assert EvaluationSettings(train_steps=3).train_steps == 3

    def test_malformed_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRAIN_STEPS", "not-a-number")
        monkeypatch.delenv("REPRO_SMOKE", raising=False)
        assert EvaluationSettings().train_steps == 40

    def test_smoke_mode_shrinks_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRAIN_STEPS", raising=False)
        monkeypatch.setenv("REPRO_SMOKE", "1")
        assert smoke_mode()
        assert default_train_steps(full=40, smoke=8) == 8
        monkeypatch.setenv("REPRO_SMOKE", "0")
        assert not smoke_mode()
        assert default_train_steps(full=40, smoke=8) == 40


class TestRewardSuppressionNarrowing:
    def _evaluator(self):
        return AccuracyEvaluator(
            resnet18, EvaluationSettings(train_steps=1, dataset_size=32, batch_size=8)
        )

    def test_expected_instantiation_failures_get_zero_reward(self):
        from repro.core.library import build_operator2

        evaluator = self._evaluator()
        evaluator._train = lambda factory: (_ for _ in ()).throw(LoweringError("bad binding"))
        assert evaluator.evaluate(build_operator2()) == 0.0

    def test_unexpected_exceptions_propagate(self):
        from repro.core.library import build_operator2

        evaluator = self._evaluator()
        evaluator._train = lambda factory: (_ for _ in ()).throw(RuntimeError("genuine bug"))
        with pytest.raises(RuntimeError, match="genuine bug"):
            evaluator.evaluate(build_operator2())


class TestParallelMap:
    def test_serial_default(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_processes(self):
        assert parallel_map(_square, [1, 2, 3, 4], processes=2) == [1, 4, 9, 16]

    def test_unpicklable_work_falls_back_to_serial(self):
        local = 10
        assert parallel_map(lambda x: x + local, [1, 2], processes=2) == [11, 12]


def _square(x):
    return x * x


class TestCachedRewardHelper:
    def test_same_signature_same_context_computed_once(self):
        calls = []

        def compute():
            calls.append(1)
            return 0.25

        assert cached_reward("ctx", "sig", compute) == 0.25
        assert cached_reward("ctx", "sig", compute) == 0.25
        assert len(calls) == 1

    def test_contexts_are_isolated(self):
        cached_reward("ctx-a", "sig", lambda: 0.1)
        assert cached_reward("ctx-b", "sig", lambda: 0.9) == 0.9
