"""Supervised shard execution under injected and real faults.

Covers :mod:`repro.runtime.faults` (plan grammar, site registry, armed-worker
confinement) and the supervised executor in :mod:`repro.search.parallel`:
killed workers are retried, hung workers are reaped within the shard timeout,
exhausted retries fall back to in-process serial execution of just that
partition, injected store faults surface as statuses — and in every case the
results (and experiment fingerprints) are bit-identical to the fault-free run.
"""

from __future__ import annotations

import functools
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.runtime import (
    FaultInjected,
    FaultPlan,
    FaultPlanError,
    RuntimeConfig,
    RuntimeContext,
    current,
)
from repro.runtime.faults import (
    SITE_ITEM_EVAL,
    SITE_SHARD_ENTRY,
    SITE_SNAPSHOT_LOAD,
    SITE_STORE_PUBLISH,
    arm_worker,
    disarm_worker,
    fault_sites,
    inject,
)
from repro.search.cache import clear_caches
from repro.search.parallel import sharded_map


@pytest.fixture(autouse=True)
def _fresh_state():
    clear_caches()
    disarm_worker()
    yield
    clear_caches()
    disarm_worker()


def _double(x):
    return x * 2


def _pid_probe(x):
    """Returns the worker's pid with the result, so tests can see *where* an
    item actually ran (forked child vs the parent's serial fallback)."""
    return (os.getpid(), x * 2)


def _boom(x):
    raise ValueError(f"genuine failure on {x}")


def _block_first_attempt(scratch: str, x):
    """Item 3 blocks forever on its first attempt, after publishing its pid.

    The test kills that pid with a real ``os.kill`` (no registry involved);
    the marker file makes the retry attempt sail through.
    """
    if x == 3:
        marker = Path(scratch) / "attempt-1-started"
        if not marker.exists():
            marker.touch()
            (Path(scratch) / "pid").write_text(str(os.getpid()), encoding="utf-8")
            time.sleep(120)
    return x * 2


# ---------------------------------------------------------------------------
# Fault plan grammar
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_multi_rule_spec(self):
        plan = FaultPlan.parse(
            "kill:shard-entry:shard=1,attempt=2; hang:item-eval:seconds=0.5;"
            "raise:store-publish"
        )
        assert [rule.action for rule in plan.rules] == ["kill", "hang", "raise"]
        kill = plan.rules[0]
        assert (kill.site, kill.shard, kill.attempt) == (SITE_SHARD_ENTRY, 1, 2)
        assert plan.rules[1].seconds == 0.5
        assert plan.rules[2].site == SITE_STORE_PUBLISH

    def test_empty_spec_has_no_rules(self):
        assert FaultPlan.parse("").rules == ()
        assert FaultPlan.parse("  ").rules == ()

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:shard-entry",  # unknown action
            "kill:warp-core",  # unknown site
            "kill:shard-entry:color=red",  # unknown matcher key
            "kill:shard-entry:shard=abc",  # malformed value
            "kill",  # missing site
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse(spec)

    def test_rule_for_respects_shard_and_attempt_matchers(self):
        plan = FaultPlan.parse("kill:shard-entry:shard=1,attempt=2")
        assert plan.rule_for(SITE_SHARD_ENTRY, 1, 2) is not None
        assert plan.rule_for(SITE_SHARD_ENTRY, 1, 1) is None
        assert plan.rule_for(SITE_SHARD_ENTRY, 0, 2) is None
        assert plan.rule_for(SITE_ITEM_EVAL, 1, 2) is None

    def test_all_injection_sites_are_registered(self):
        assert {
            SITE_SHARD_ENTRY,
            SITE_ITEM_EVAL,
            SITE_STORE_PUBLISH,
            SITE_SNAPSHOT_LOAD,
        } <= set(fault_sites())

    def test_inject_rejects_unregistered_sites(self):
        with pytest.raises(ValueError, match="unregistered fault site"):
            inject("not-a-site")


# ---------------------------------------------------------------------------
# In-process injection semantics
# ---------------------------------------------------------------------------


class TestInjectionConfinement:
    def test_inject_is_a_noop_without_a_plan(self):
        ctx = RuntimeContext(RuntimeConfig())
        inject(SITE_SHARD_ENTRY, runtime=ctx)  # must not raise

    def test_raise_rule_fires_as_fault_injected(self):
        ctx = RuntimeContext(RuntimeConfig(fault_plan="raise:store-publish"))
        with pytest.raises(FaultInjected):
            inject(SITE_STORE_PUBLISH, runtime=ctx)

    def test_fault_injected_is_an_os_error(self):
        # The store's existing `except OSError` envelopes are the recovery
        # path for injected publish/load faults; the subclassing is the
        # contract that makes that work.
        assert issubclass(FaultInjected, OSError)

    def test_destructive_rules_are_ignored_outside_a_worker(self):
        # A kill rule matching this (unarmed, parent) process must not fire —
        # otherwise `repro chaos` would kill the supervisor itself.
        ctx = RuntimeContext(RuntimeConfig(fault_plan="kill:shard-entry"))
        inject(SITE_SHARD_ENTRY, runtime=ctx)  # still alive ⇒ confinement held

    def test_destructive_rules_honor_armed_identity_matchers(self):
        ctx = RuntimeContext(RuntimeConfig(fault_plan="kill:shard-entry:shard=7"))
        arm_worker(shard=3, attempt=1)
        try:
            inject(SITE_SHARD_ENTRY, runtime=ctx)  # shard 3 ≠ 7: no fire
        finally:
            disarm_worker()


# ---------------------------------------------------------------------------
# Supervised execution: the degradation ladder
# ---------------------------------------------------------------------------


class TestSupervisedExecution:
    def test_killed_worker_is_retried_transparently(self):
        ctx = current().derive(fault_plan="kill:shard-entry:shard=1,attempt=1")
        assert sharded_map(_double, [1, 2, 3, 4, 5], shards=2, runtime=ctx) == [
            2, 4, 6, 8, 10,
        ]
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["signal"]
        assert failures[0].shard == 1 and failures[0].attempt == 1
        assert failures[0].signal == signal.SIGKILL

    def test_exit_rule_reports_the_exit_code(self):
        ctx = current().derive(
            fault_plan="exit:shard-entry:shard=0,attempt=1,exitcode=7"
        )
        assert sharded_map(_double, [1, 2, 3, 4], shards=2, runtime=ctx) == [2, 4, 6, 8]
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["exit"]
        assert failures[0].exitcode == 7

    def test_item_eval_fault_is_surfaced_cooperatively(self):
        ctx = current().derive(fault_plan="raise:item-eval:shard=0,attempt=1")
        assert sharded_map(_double, [1, 2, 3, 4], shards=2, runtime=ctx) == [2, 4, 6, 8]
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["fault"]
        assert "injected fault" in failures[0].detail

    def test_hung_worker_is_reaped_within_the_shard_timeout(self):
        ctx = current().derive(
            fault_plan="hang:shard-entry:shard=0,attempt=1", shard_timeout=1.0
        )
        start = time.monotonic()
        assert sharded_map(_double, [1, 2, 3, 4], shards=2, runtime=ctx) == [2, 4, 6, 8]
        wall = time.monotonic() - start
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["timeout"]
        assert failures[0].elapsed >= 1.0
        assert wall < 30.0  # reaped at the timeout, not at the 3600s hang

    def test_exhausted_retries_fall_back_to_in_process_serial(self):
        # shard 1 dies on *every* attempt; shard 0 runs normally in a child.
        ctx = current().derive(
            fault_plan="kill:shard-entry:shard=1", shard_retries=1
        )
        results = sharded_map(_pid_probe, [1, 2, 3, 4], shards=2, runtime=ctx)
        assert [value for _, value in results] == [2, 4, 6, 8]
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["signal", "signal"]
        assert [f.attempt for f in failures] == [1, 2]
        # Strided partition: shard 0 ran items 1,3 in a child; shard 1's
        # items 2,4 ran in *this* process via the serial fallback.
        parent = os.getpid()
        assert results[0][0] != parent and results[2][0] != parent
        assert results[1][0] == parent and results[3][0] == parent

    def test_real_os_kill_is_recovered_like_an_injected_one(self, tmp_path):
        pid_file = tmp_path / "pid"

        def sniper():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not pid_file.exists():
                time.sleep(0.02)
            os.kill(int(pid_file.read_text(encoding="utf-8")), signal.SIGKILL)

        thread = threading.Thread(target=sniper, daemon=True)
        thread.start()
        ctx = current().derive(shard_timeout=60.0)
        worker = functools.partial(_block_first_attempt, str(tmp_path))
        assert sharded_map(worker, [1, 2, 3, 4], shards=2, runtime=ctx) == [2, 4, 6, 8]
        thread.join(timeout=30.0)
        failures = ctx.drain_shard_failures()
        assert [f.kind for f in failures] == ["signal"]
        assert failures[0].signal == signal.SIGKILL

    def test_genuine_exceptions_still_propagate_first_class(self):
        ctx = current().derive(shards=2)
        with pytest.raises(ValueError, match="genuine failure"):
            sharded_map(_boom, [1, 2, 3, 4], shards=2, runtime=ctx)

    def test_fault_free_runs_record_no_failures(self):
        ctx = current().derive(shards=2)
        assert sharded_map(_double, [1, 2, 3, 4], shards=2, runtime=ctx) == [2, 4, 6, 8]
        assert ctx.drain_shard_failures() == []


# ---------------------------------------------------------------------------
# Experiment-level parity: fault-ridden ≡ fault-free
# ---------------------------------------------------------------------------


class TestChaosParity:
    def test_figure8_fingerprint_survives_a_killed_shard(self):
        config = ExperimentConfig(smoke=True, train_steps=2, seed=0)
        clean_ctx = current().derive(shards=1, fault_plan="")
        with clean_ctx.activate(adopt=False):
            clean = run_experiment("figure8", config)

        clear_caches()
        chaos_ctx = current().derive(
            shards=4, fault_plan="kill:shard-entry:shard=1,attempt=1"
        )
        with chaos_ctx.activate(adopt=False):
            chaos = run_experiment("figure8", config)

        assert clean.record.fingerprint() == chaos.record.fingerprint()
        assert clean.record.metrics == chaos.record.metrics
        # The failures are diagnostics in the record's environment — present,
        # but deliberately outside the fingerprinted payload.
        recorded = chaos.record.environment.get("shard_failures")
        assert recorded and recorded[0]["kind"] == "signal"
        assert "shard_failures" not in clean.record.environment


# ---------------------------------------------------------------------------
# Store faults: publish / snapshot-load
# ---------------------------------------------------------------------------


class TestStoreFaults:
    def _warm_context(self, tmp_path, fault_plan=""):
        ctx = RuntimeContext(
            RuntimeConfig(results_dir=str(tmp_path), fault_plan=fault_plan)
        )
        ctx.caches.reward.put(("chaos", "sig"), 1.0)
        return ctx

    def test_injected_publish_fault_becomes_write_failed(self, tmp_path):
        ctx = self._warm_context(tmp_path, fault_plan="raise:store-publish")
        with ctx.activate(adopt=False):
            status = ctx.save_caches(str(tmp_path / "snap.pkl"))
        assert status.status == "write-failed"

    def test_injected_load_fault_becomes_unreadable(self, tmp_path):
        snapshot = tmp_path / "snap.pkl"
        writer = self._warm_context(tmp_path)
        with writer.activate(adopt=False):
            assert writer.save_caches(str(snapshot)).ok

        reader = self._warm_context(tmp_path, fault_plan="raise:snapshot-load")
        with reader.activate(adopt=False):
            status = reader.load_caches(str(snapshot))
        assert status.status == "unreadable"

    def test_destructive_store_rules_never_kill_the_parent(self, tmp_path):
        # `kill:store-publish` in the parent process: confinement downgrades
        # it to a warning and the save completes normally.
        ctx = self._warm_context(tmp_path, fault_plan="kill:store-publish")
        with ctx.activate(adopt=False):
            status = ctx.save_caches(str(tmp_path / "snap.pkl"))
        assert status.status in ("saved", "merged")


# ---------------------------------------------------------------------------
# Knob plumbing
# ---------------------------------------------------------------------------


class TestKnobPlumbing:
    def test_env_knobs_resolve_with_provenance(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill:shard-entry:shard=1")
        monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_SHARD_RETRIES", "5")
        config = RuntimeConfig.from_env()
        assert config.fault_plan == "kill:shard-entry:shard=1"
        assert config.shard_timeout == 12.5
        assert config.shard_retries == 5
        provenance = config.provenance_map()
        assert provenance["fault_plan"] == "env"
        assert provenance["shard_timeout"] == "env"
        assert provenance["shard_retries"] == "env"

    def test_defaults_without_env(self):
        config = RuntimeConfig()
        assert config.fault_plan == ""
        assert config.shard_timeout == 300.0
        assert config.shard_retries == 2

    def test_shard_failures_ledger_is_bounded_and_drains(self):
        from repro.search.parallel import ShardFailure

        ctx = RuntimeContext(RuntimeConfig())
        ctx.record_shard_failures(
            [ShardFailure(shard=0, attempt=1, kind="signal", detail=f"f{i}")
             for i in range(1200)]
        )
        assert len(ctx.shard_failures) == 1000  # capped, newest kept
        drained = ctx.drain_shard_failures()
        assert len(drained) == 1000 and drained[-1].detail == "f1199"
        assert ctx.drain_shard_failures() == []

    def test_shard_failures_do_not_cross_the_fork_payload(self):
        import pickle

        from repro.search.parallel import ShardFailure

        ctx = RuntimeContext(RuntimeConfig())
        ctx.record_shard_failures(
            [ShardFailure(shard=0, attempt=1, kind="exit", detail="x")]
        )
        clone = pickle.loads(pickle.dumps(ctx))
        assert clone.shard_failures == []
