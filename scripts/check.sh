#!/usr/bin/env bash
# Smoke job: tier-1 tests + a CLI round trip that must leave a result artifact.
#
# The tier-1 command is `python -m pytest -x -q` (see ROADMAP.md).  One seed
# failure is known and documented in README.md (test_figure9's parameter
# reduction bound); it is deselected here so the job verifies everything
# else while the `-x` tier-1 command still reports it.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
RESULTS_DIR="$(mktemp -d)"
export REPRO_RESULTS_DIR="$RESULTS_DIR"
trap 'rm -rf "$RESULTS_DIR"' EXIT

echo "== tier-1 tests (known figure9 seed failure deselected) =="
python -m pytest -x -q \
  --deselect benchmarks/test_figure9.py::test_figure9_layerwise_comparison

echo "== CLI smoke: repro run figure5 --smoke && repro report =="
python -m repro.cli run figure5 --smoke
python -m repro.cli report

echo "== artifact check =="
ls "$RESULTS_DIR"/runs/*/record.json > /dev/null || {
  echo "FAIL: no result artifact produced under $RESULTS_DIR" >&2
  exit 1
}
echo "OK: result artifacts present"
