#!/usr/bin/env bash
# Smoke job: tier-1 tests + a CLI round trip that must leave a result artifact.
#
# The tier-1 command is `python -m pytest -x -q` (see ROADMAP.md).  One seed
# failure is known and documented in README.md (test_figure9's parameter
# reduction bound); it is deselected here so the job verifies everything
# else while the `-x` tier-1 command still reports it.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
RESULTS_DIR="$(mktemp -d)"
export REPRO_RESULTS_DIR="$RESULTS_DIR"
trap 'rm -rf "$RESULTS_DIR"' EXIT

echo "== tier-1 tests (known figure9 seed failure deselected) =="
python -m pytest -x -q \
  --deselect benchmarks/test_figure9.py::test_figure9_layerwise_comparison

echo "== CLI smoke: repro run figure5 --smoke && repro report =="
python -m repro.cli run figure5 --smoke
python -m repro.cli report

echo "== artifact check =="
ls "$RESULTS_DIR"/runs/*/record.json > /dev/null || {
  echo "FAIL: no result artifact produced under $RESULTS_DIR" >&2
  exit 1
}
echo "OK: result artifacts present"

echo "== timing sanity: smoke benches must not regress =="
# figure5 is compiler-tuning-bound: guard its absolute smoke wall-clock.
# (The threshold is generous — about 5x the current ~18 s — so only a real
# regression trips it, not machine noise.)
python -m repro.cli bench figure5 --smoke --no-compare --max-seconds 90
# figure8 is proxy-training-bound: it must stay fast in absolute terms AND
# keep the compiled-plan + float32 path >= 1.5x over the eager float64
# interpreter at identical budgets (the escape-hatch comparison would
# silently erode otherwise).
python -m repro.cli bench figure8 --smoke --max-seconds 60
python - "$RESULTS_DIR/BENCH_figure8.json" <<'PY'
import json, sys
entry = json.load(open(sys.argv[1]))["entries"][-1]
speedup = entry["speedup_vs_eager_float64"]
assert speedup is not None and speedup >= 1.5, (
    f"compiled-plan speedup regressed: {speedup}x < 1.5x"
)
print(f"OK: compiled-plan speedup {speedup}x (>= 1.5x)")
PY
