#!/usr/bin/env bash
# Smoke job: tier-1 tests + a CLI round trip that must leave a result artifact.
#
# The tier-1 command is `python -m pytest -x -q` (see ROADMAP.md).  The one
# known reproduction gap (test_figure9's parameter-reduction bound, see
# README.md) is a documented non-strict xfail, so the full suite runs green
# with no deselects.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
RESULTS_DIR="$(mktemp -d)"
export REPRO_RESULTS_DIR="$RESULTS_DIR"
trap 'rm -rf "$RESULTS_DIR"' EXIT

echo "== static analysis: repro lint (invariant rules + reviewed baseline) =="
# The AST-based analyzer replaces the old grep guard.  It enforces, against
# src/repro/ with scripts/lint_baseline.txt as the reviewed allowlist:
#   env-confinement   REPRO_* env reads only in src/repro/runtime/ (including
#                     aliased imports and computed keys grep could not see)
#   mutable-global    no module-level mutable state outside runtime/
#   nondeterminism    no ambient RNG / wall-clock / set-iteration entropy
#   runtime-threading runtime= is forwarded to runtime-accepting callees
#   exception-hygiene no bare except: / silently swallowed broad handlers
# Any unbaselined finding — or stale baseline entry — fails the job.
python -m repro.cli lint
echo "OK: static invariants hold (zero unbaselined findings)"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== CLI smoke: repro run figure5 --smoke && repro report =="
python -m repro.cli run figure5 --smoke
python -m repro.cli report

echo "== artifact check =="
ls "$RESULTS_DIR"/runs/*/record.json > /dev/null || {
  echo "FAIL: no result artifact produced under $RESULTS_DIR" >&2
  exit 1
}
echo "OK: result artifacts present"

echo "== concurrency stress: two parallel runs race one shared store =="
# Two `repro run`s into one results dir, concurrently.  Both must complete,
# both must publish their cache delta into the shared store (the pre-store
# whole-pickle snapshot was last-writer-wins), and both records must carry
# the serial run's fingerprint — warmth from a concurrent writer can never
# change a result.
STRESS_DIR="$RESULTS_DIR/stress"
REPRO_RESULTS_DIR="$STRESS_DIR" python -m repro.cli run figure5 --smoke \
  > "$RESULTS_DIR/stress-a.log" 2>&1 &
STRESS_A=$!
REPRO_RESULTS_DIR="$STRESS_DIR" python -m repro.cli run figure5 --smoke \
  > "$RESULTS_DIR/stress-b.log" 2>&1 &
STRESS_B=$!
wait "$STRESS_A" || { echo "FAIL: concurrent run A failed" >&2; cat "$RESULTS_DIR/stress-a.log" >&2; exit 1; }
wait "$STRESS_B" || { echo "FAIL: concurrent run B failed" >&2; cat "$RESULTS_DIR/stress-b.log" >&2; exit 1; }
# Each process reported a successful publish (saved or merged, never
# locked/write-failed): its delta reached the store.
for log in "$RESULTS_DIR/stress-a.log" "$RESULTS_DIR/stress-b.log"; do
  grep -q "cache snapshot saved" "$log" || {
    echo "FAIL: $log has no successful cache publish" >&2; cat "$log" >&2; exit 1
  }
done
python - "$RESULTS_DIR" "$STRESS_DIR" <<'PY'
import json, sys
from pathlib import Path

serial_dir, stress_dir = Path(sys.argv[1]), Path(sys.argv[2])

def fingerprints(root):
    records = [
        json.loads(path.read_text())
        for path in sorted(root.glob("runs/*/record.json"))
    ]
    return [r["fingerprint"] for r in records
            if r["experiment"] == "figure5" and r["status"] == "completed"]

(serial,) = fingerprints(serial_dir)  # the CLI smoke leg's run
stress = fingerprints(stress_dir)
assert len(stress) == 2, f"expected 2 concurrent records, found {len(stress)}"
assert set(stress) == {serial}, f"fingerprint divergence: {stress} != {serial}"

from repro.runtime import SharedCacheStore
(store_path,) = (stress_dir / "cache").glob("evaluation-cache-*.pkl")
entries, status = SharedCacheStore(store_path).load()
assert status.status == "loaded", f"shared store not loadable: {status.summary()}"
total = sum(len(per_cache) for per_cache in entries.values())
assert total > 0, "no cache entries survived the concurrent runs"
print(f"OK: concurrent fingerprints match serial; shared store holds {total} entries")
PY

echo "== chaos: a killed shard worker must not change the record =="
# The supervised executor's contract, end to end through the CLI: kill shard
# 1's worker on its first attempt at every sharded fan-out, let the retry
# ladder recover, and require the run's fingerprint to equal the clean serial
# run's.  --expect-failures guards the leg against silently running
# fault-free (a typo'd plan would otherwise pass vacuously).
python -m repro.cli chaos figure5 --smoke --shards 2 \
  --plan "kill:shard-entry:shard=1,attempt=1" --expect-failures
echo "OK: fingerprint parity held under a killed shard worker"

echo "== timing sanity: smoke benches must not regress =="
# figure5 is compiler-tuning-bound: guard its absolute smoke wall-clock.
# (The threshold is generous — about 5x the current ~18 s — so only a real
# regression trips it, not machine noise.)
python -m repro.cli bench figure5 --smoke --no-compare --max-seconds 90
# figure8 is proxy-training-bound: it must stay fast in absolute terms AND
# keep the compiled-plan + float32 path >= 1.5x over the eager float64
# interpreter at identical budgets (the escape-hatch comparison would
# silently erode otherwise).
python -m repro.cli bench figure8 --smoke --max-seconds 60
python - "$RESULTS_DIR/BENCH_figure8.json" <<'PY'
import json, sys
entry = json.load(open(sys.argv[1]))["entries"][-1]
speedup = entry["speedup_vs_eager_float64"]
assert speedup is not None and speedup >= 1.5, (
    f"compiled-plan speedup regressed: {speedup}x < 1.5x"
)
print(f"OK: compiled-plan speedup {speedup}x (>= 1.5x)")
PY

echo "== serve smoke: coalesced requests must match serial fingerprints =="
# The serving layer's acceptance contract, end to end through the CLI: a
# real SearchServer on an ephemeral port, 3 concurrent socket clients with
# distinct seeds, and — inside `bench serve` itself — a serial
# `run_experiment` of every request whose fingerprint must equal the served
# one.  A clean exit also means the server thread joined (no orphan
# workers); the lock check below ensures the store was released.
SERVE_DIR="$RESULTS_DIR/serve"
python -m repro.cli bench serve --clients 3 --smoke --train-steps 2 --seed 0 \
  --results-dir "$SERVE_DIR"
python - "$SERVE_DIR" <<'PY'
import json, sys
from pathlib import Path

serve_dir = Path(sys.argv[1])
entry = json.loads((serve_dir / "BENCH_serve.json").read_text())["entries"][-1]
assert entry["clients"] == 3, f"expected 3 clients, got {entry['clients']}"
assert entry["parity"] is True, "served fingerprints diverged from serial runs"
coalescer = entry["coalescer"]
assert coalescer["waves"] >= 1, "the coalescer never ran a wave"
amortized = coalescer["coalesced"] + coalescer["cache_hits"]
assert amortized >= 1, f"no cross-client amortization recorded: {coalescer}"
locks = list(serve_dir.rglob("*.lock"))
assert not locks, f"store lock(s) left behind: {locks}"
print(f"OK: 3 served fingerprints match serial; "
      f"{coalescer['waves']} wave(s), {amortized} evaluation(s) amortized")
PY

echo "== library: shard-parity build + warm-started search =="
# The graph library's determinism contract, end to end through the CLI: the
# gpt2 design space built serially and rebuilt from scratch at 2 shards must
# produce bit-identical artifacts (same content hash), and a warm-started
# smoke search against the built library must run green (REPRO_WARM_START
# degrades to a cold search only when no matching library exists — here one
# does, so this exercises frontier seeding + sidecar publish for real).
LIB_DIR="$RESULTS_DIR/library-check"
library_hash() {
  python -m repro.cli library stats gpt2 --json \
    --library-dir "$LIB_DIR" --results-dir "$RESULTS_DIR" \
    | python -c "import json,sys; print(json.load(sys.stdin)['libraries'][0]['content_hash'])"
}
python -m repro.cli library build gpt2 --max-depth 3 --shards 1 \
  --library-dir "$LIB_DIR" --results-dir "$RESULTS_DIR"
HASH_SERIAL="$(library_hash)"
rm -rf "$LIB_DIR"
python -m repro.cli library build gpt2 --max-depth 3 --shards 2 \
  --library-dir "$LIB_DIR" --results-dir "$RESULTS_DIR"
HASH_SHARDED="$(library_hash)"
if [ "$HASH_SERIAL" != "$HASH_SHARDED" ]; then
  echo "FAIL: serial ($HASH_SERIAL) and 2-shard ($HASH_SHARDED) library builds diverge" >&2
  exit 1
fi
REPRO_WARM_START=1 REPRO_LIBRARY_DIR="$LIB_DIR" \
  python -m repro.cli run search --smoke
echo "OK: library builds bit-identical across shard counts ($HASH_SERIAL); warm-started search green"

echo "== sharded sweep: bench --all at 1 and 2 shards must agree =="
# Every registered experiment, once per shard setting, into one trajectory
# file per setting.  Since the RuntimeContext redesign this exercises the
# explicit context path end to end: the CLI edge builds the context from the
# environment, --shards becomes an explicit config override on a derived
# context, and the sharded executor ships/bootstraps contexts in its forked
# workers.  A tiny training budget keeps this a smoke test; what it
# guards is (a) every experiment still runs under the sharded executor and
# (b) the sharded sweep never costs *grossly* more than serial.  At smoke
# scale the margin below is dominated by its absolute term, so this catches
# catastrophic structural regressions (a per-wave fork storm, cache
# re-pickling per item), not small overheads — fine-grained shard perf is
# the acceptance bench's job, not this smoke job's.
python -m repro.cli bench --all --smoke --no-compare --train-steps 2 --seed 0 \
  --shards 1 --output "$RESULTS_DIR/BENCH_all_serial.json"
python -m repro.cli bench --all --smoke --no-compare --train-steps 2 --seed 0 \
  --shards 2 --output "$RESULTS_DIR/BENCH_all_sharded.json"
python - "$RESULTS_DIR/BENCH_all_serial.json" "$RESULTS_DIR/BENCH_all_sharded.json" <<'PY'
import json, sys
serial = json.load(open(sys.argv[1]))["entries"]
sharded = json.load(open(sys.argv[2]))["entries"]
assert [e["experiment"] for e in serial] == [e["experiment"] for e in sharded]
total_serial = sum(e["compiled"]["mean_seconds"] for e in serial)
total_sharded = sum(e["compiled"]["mean_seconds"] for e in sharded)
# Generous margin: both legs are live measurements on a possibly-noisy host,
# so only a gross structural regression should trip this, never scheduler
# jitter.
assert total_sharded <= total_serial * 1.5 + 20.0, (
    f"sharded sweep regressed: {total_sharded:.1f}s vs serial {total_serial:.1f}s"
)
print(f"OK: bench --all serial {total_serial:.1f}s, 2 shards {total_sharded:.1f}s")
PY
