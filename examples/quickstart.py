"""Quickstart: build, inspect, lower and search neural operators with repro.

This walks the public API end to end:

1. express a standard operator (2-D convolution) with the Syno primitives;
2. lower it to a differentiable module and run it on data;
3. run guided synthesis for the matmul slot and look at what comes out;
4. run a small MCTS search with a toy reward;
5. run a paper experiment through the shared runner API — the same code path
   as ``repro run <experiment>`` — and read back its structured ResultRecord.

Run with:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro.codegen.eager import lower_to_module
from repro.codegen.loopnest import lower_to_loopnest
from repro.core.enumeration import default_options_for, synthesize
from repro.core.library import (
    C_IN,
    C_OUT,
    H,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    W,
    build_conv2d,
    matmul_spec,
)
from repro.core.mcts import MCTS, MCTSConfig
from repro.nn.tensor import Tensor


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    section("1. A 2-D convolution expressed with Syno primitives")
    conv = build_conv2d()
    print(conv.describe())
    binding = {N: 2, C_IN: 8, C_OUT: 16, H: 8, W: 8, K1: 3}
    print("parameters:", conv.parameter_count(binding))
    print("MACs:      ", conv.macs(binding))

    section("2. Lowering to a differentiable module (the PyTorch-like backend)")
    module = lower_to_module(conv, binding, rng=np.random.default_rng(0))
    x = Tensor(np.random.default_rng(1).normal(size=(2, 8, 8, 8)), requires_grad=True)
    y = module(x)
    print("output shape:", y.shape)
    y.sum().backward()
    print("gradient w.r.t. input has shape:", x.grad.shape)

    section("3. Lowering to a loop-nest program (the TVM-like backend)")
    program = lower_to_loopnest(conv, binding)
    for stage in program.stages:
        print(f"  stage {stage.name}: {stage.macs} MACs, extents {stage.extents}")

    section("4. Guided synthesis for the matmul slot")
    spec = matmul_spec(bindings=({M: 16, K: 32, OUT_FEATURES: 24},))
    options = default_options_for(spec, coefficients=[], max_depth=3)
    operators, stats = synthesize(spec, options, max_results=8, max_nodes=4000)
    print(f"found {len(operators)} operators after visiting {stats.nodes_visited} nodes "
          f"({stats.pruned_by_distance} pruned by shape distance)")
    for operator in operators[:3]:
        print("  -", operator.graph.signature())

    section("5. MCTS with a toy reward (prefer fewer MACs under the budget)")
    reference = 16 * 32 * 24

    def reward(operator):
        return max(0.0, 1.0 - operator.macs({M: 16, K: 32, OUT_FEATURES: 24}) / (4 * reference))

    search = MCTS(spec=spec, options=options, reward_fn=reward, config=MCTSConfig(iterations=40))
    best = search.run()[0]
    print("best reward:", round(best.reward, 3))
    print(best.operator.describe())

    section("6. A paper experiment through the runner API (same path as `repro run`)")
    # No ad-hoc knob fiddling: ExperimentConfig carries smoke/train_steps/seed
    # and the runner turns them into explicit overrides on a derived
    # repro.runtime.RuntimeContext activated for the duration of the run (the
    # record's environment captures the resolved config + provenance).
    # Passing a store would persist the record like the CLI does.
    from repro.experiments.runner import ExperimentConfig, run_experiment

    outcome = run_experiment("ablation-materialization", ExperimentConfig())
    print(outcome.record.table)
    print("metrics:", outcome.record.metrics)
    print("fingerprint:", outcome.record.fingerprint())
    print("equivalent CLI: repro run ablation-materialization")


if __name__ == "__main__":
    main()
