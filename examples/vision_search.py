"""End-to-end vision search (Algorithm 1) on a tiny ResNet-18 backbone.

Runs the full pipeline at small scale: extract the convolution slots, run the
MCTS search with proxy-training accuracy as reward under a FLOPs budget, keep
candidates within the accuracy margin, and report their latencies on the
mobile CPU with both compiler backends.

Run with:  REPRO_MCTS_ITERATIONS=8 python examples/vision_search.py
(the default of 8 iterations takes a couple of minutes on a laptop CPU).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.compiler import MOBILE_CPU, InductorBackend, TVMBackend
from repro.nn.models.resnet import resnet18
from repro.search import EvaluationSettings, SearchConfig, SearchSession


def main() -> None:
    iterations = int(os.environ.get("REPRO_MCTS_ITERATIONS", 8))
    config = SearchConfig(
        max_depth=6,
        mcts_iterations=iterations,
        macs_budget_ratio=1.0,
        accuracy_margin=0.05,
        evaluation=EvaluationSettings(train_steps=int(os.environ.get("REPRO_TRAIN_STEPS", 20))),
    )
    session = SearchSession(
        model_builder=resnet18,
        config=config,
        backends=[TVMBackend(trials=24), InductorBackend()],
        targets=[MOBILE_CPU],
    )
    print(f"extracted {len(session.slots)} conv slots; "
          f"original MACs of the substitutable ones: {session.original_macs}")
    print(f"baseline proxy accuracy: {session.accuracy_evaluator.baseline_accuracy():.3f}")

    candidates = session.run()
    print(f"\n{len(candidates)} candidates within the accuracy margin:")
    for candidate in candidates:
        speedups = ", ".join(f"{k[0]}/{k[1]}={v:.2f}x" for k, v in candidate.speedups.items())
        print(f"  accuracy={candidate.accuracy:.3f} (loss {candidate.accuracy_loss:+.3f}) "
              f"macs={candidate.macs} params={candidate.parameters}  {speedups}")
        print(f"    {candidate.operator.graph.signature()}")


if __name__ == "__main__":
    main()
