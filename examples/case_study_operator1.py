"""Case study: the paper's Operator 1 (Figure 7 / Listing 2).

Reconstructs Operator 1 from primitives, verifies it trains as a drop-in
convolution replacement inside ResNet-18, and compares its tuned latency with
the standard convolution on the three hardware targets and both compilers.

Run with:  python examples/case_study_operator1.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler import A100, MOBILE_CPU, MOBILE_GPU, InductorBackend, TVMBackend
from repro.compiler.backends import loopnest_for_slot
from repro.core.library import C_IN, C_OUT, GROUPS, H, K1, N, SHRINK, W, build_operator1
from repro.nn.data import SyntheticImageDataset
from repro.nn.models.common import ConvSlot
from repro.nn.models.resnet import resnet18
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.substitution import synthesized_conv_factory


def main() -> None:
    operator1 = build_operator1()
    print("=== Operator 1 structure ===")
    print(operator1.describe())

    slot = ConvSlot("resnet34.L17", 256, 256, 14, 3, 1)
    binding = {N: 1, C_IN: 256, C_OUT: 256, H: 14, W: 14, K1: 3, GROUPS: 4, SHRINK: 4}
    print("\nparameters vs standard conv:",
          operator1.parameter_count(binding), "vs", slot.parameters())

    print("\n=== Tuned latency on one ResNet-34 layer (256ch, 14x14) ===")
    program = lower_to_loopnest(operator1, binding)
    baseline = loopnest_for_slot(slot, batch=1)
    for target in (MOBILE_CPU, MOBILE_GPU, A100):
        for backend in (TVMBackend(trials=48), InductorBackend()):
            base = backend.compile(baseline, target).latency_ms
            ours = backend.compile(program, target).latency_ms
            print(f"  {target.name:11s} {backend.name:14s} "
                  f"conv={base:8.3f}ms  operator1={ours:8.3f}ms  ({base / ours:.2f}x)")

    print("\n=== Training Operator 1 inside ResNet-18 on the proxy task ===")
    dataset = SyntheticImageDataset(num_samples=128, image_size=8)
    train_set, val_set = dataset.split()
    steps = int(os.environ.get("REPRO_TRAIN_STEPS", 30))
    model = resnet18(conv_factory=synthesized_conv_factory(operator1))
    result = Trainer(model, TrainingConfig(max_steps=steps)).fit_classifier(train_set, val_set)
    print(f"  proxy accuracy after {result.steps} steps: {result.final_accuracy:.3f}")


if __name__ == "__main__":
    main()
