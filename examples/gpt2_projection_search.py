"""GPT-2 QKV-projection substitution (the Section 9.3 experiment, scaled down).

Substitutes a grouped projection operator for the QKV projections of a tiny
GPT-2, trains both models on the synthetic language-modelling task, and
reports perplexities plus the estimated training-step speedup at real GPT-2
dimensions.

Run with:  python examples/gpt2_projection_search.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import figure10


def main() -> None:
    steps = int(os.environ.get("REPRO_TRAIN_STEPS", 40))
    result = figure10.run(train_steps=steps)
    print("=== GPT-2 QKV substitution ===")
    print(result.to_table())
    print("\nloss trajectory (baseline vs substituted):")
    for index in range(0, len(result.baseline_losses), max(len(result.baseline_losses) // 10, 1)):
        baseline = result.baseline_losses[index]
        syno = result.syno_losses[index] if index < len(result.syno_losses) else float("nan")
        print(f"  step {index:4d}: baseline={baseline:.3f}  syno={syno:.3f}")


if __name__ == "__main__":
    main()
