"""Packaging for the repro distribution.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so legacy editable
installs (``pip install -e . --no-use-pep517``) work in offline environments
where the ``wheel`` package is unavailable.  Installing registers the
``repro`` console script; from a source checkout the same CLI is available as
``python -m repro.cli`` with ``src`` on ``PYTHONPATH``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.2.0",
    description="Reproduction of 'Syno: Structured Synthesis for Neural Operators' (ASPLOS'25)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    entry_points={"console_scripts": ["repro=repro.cli.main:main"]},
)
