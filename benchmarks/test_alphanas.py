"""Benchmark for the Section 9.2 comparison against αNAS."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(120)
def test_alphanas_comparison(benchmark):
    result = run_experiment_once(benchmark, "alphanas").result
    print()
    print(result.to_table())
    for row in result.rows:
        # αNAS's coarse substitution lands in the ~25-50% FLOPs reduction range.
        assert 0.15 <= row.alphanas_flops_reduction <= 0.6
        # Syno's fine-grained operators cut more FLOPs than αNAS's coarse pass
        # on ResNet-34 (the paper: 63% vs 25%).
        if row.model == "resnet34":
            assert row.syno_flops_reduction > row.alphanas_flops_reduction
            assert row.syno_inference_speedup > 1.0
