"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper (see DESIGN.md's
experiment index and EXPERIMENTS.md for the recorded outcomes).  Benchmarks
run their experiment exactly once per session (rounds=1) because the quantity
of interest is the experiment's *output*, not the harness's wall-clock time;
the timing is still recorded by pytest-benchmark for regression tracking.

Set ``REPRO_TRAIN_STEPS`` to raise the proxy-training budget (default: short).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

os.environ.setdefault("REPRO_TRAIN_STEPS", "20")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
