"""Benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper through the same
runner API the ``repro`` CLI uses (:mod:`repro.experiments.runner`, via
``benchmarks._harness.run_experiment_once``), so pytest and the command line
produce results identically; see docs/experiments.md for the figure → command
map.  Benchmarks run their experiment exactly once per session (rounds=1)
because the quantity of interest is the experiment's *output*, not the
harness's wall-clock time; the timing is still recorded by pytest-benchmark
for regression tracking.

Budget knobs (fields of :class:`repro.runtime.RuntimeConfig`; setting the
``REPRO_*`` environment variables here is the supported process-edge
fallback, re-read by the ambient default context):

* ``REPRO_SMOKE`` — defaults to ``1`` here so ``python -m pytest -x -q`` at
  the repo root finishes in minutes (fewer models/layers/samples, smaller
  tuning budgets, short proxy training).  Export ``REPRO_SMOKE=0`` for a
  full-fidelity run.
* ``REPRO_TRAIN_STEPS`` — overrides the proxy-training step budget.  It is
  read by ``EvaluationSettings`` and every experiment's ``run()`` default,
  so setting it genuinely raises (or lowers) the training budget everywhere.
* ``REPRO_EVAL_PROCESSES`` — opt-in worker-process count for parallel
  candidate evaluation.

Every benchmark is also guarded by a ``timeout`` marker.  When the
``pytest-timeout`` plugin is installed it enforces the marker; otherwise the
SIGALRM fallback below does, so a hung experiment fails instead of wedging
the suite.
"""

import os
import signal
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

os.environ.setdefault("REPRO_SMOKE", "1")

#: default per-test guard (seconds) when a benchmark carries no timeout marker.
DEFAULT_TIMEOUT = int(os.environ.get("REPRO_BENCH_TIMEOUT", "900"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): fail the test if it runs longer than this"
    )


def _timeout_seconds(item) -> int:
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        return int(marker.args[0])
    return DEFAULT_TIMEOUT


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """SIGALRM-based stand-in for pytest-timeout when the plugin is absent."""
    seconds = _timeout_seconds(item)
    if (
        item.config.pluginmanager.hasplugin("timeout")  # real plugin handles it
        or not hasattr(signal, "SIGALRM")
        or seconds <= 0
    ):
        return (yield)

    def _on_alarm(signum, frame):
        raise TimeoutError(f"{item.nodeid} exceeded the {seconds}s timeout guard")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.alarm(seconds)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
