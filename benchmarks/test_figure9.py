"""Benchmark regenerating Figure 9: layer-wise comparison with NAS-PTE on ResNet-34."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(300)
def test_figure9_layerwise_comparison(benchmark):
    result = run_experiment_once(benchmark, "figure9").result
    print()
    print(result.to_table())
    print("Syno-vs-NAS-PTE geomean (TVM, mobile CPU):",
          result.syno_vs_naspte_geomean("mobile_cpu", "tvm"))
    print("FLOPs reduction range:", result.flops_reduction_range())
    print("Parameter reduction range:", result.parameter_reduction_range())

    # Every layer has results for both operator families.
    for comparison in result.comparisons:
        assert any(name in comparison.candidate_ms for name in result.syno_names)
        assert any(name in comparison.candidate_ms for name in result.nas_pte_names)

    # On the A100 with TorchInductor, Syno's advantage over NAS-PTE is larger
    # than on the mobile CPU with TorchInductor (where Inductor falls back to
    # ATen kernels), reproducing the paper's platform-dependent ordering.
    a100 = result.syno_vs_naspte_geomean("a100", "torchinductor")
    mobile = result.syno_vs_naspte_geomean("mobile_cpu", "torchinductor")
    assert a100 > mobile


@pytest.mark.xfail(
    strict=False,
    reason="known reproduction gap: the paper reports Syno's best operators "
    "using 1.80x-9.50x fewer parameters than NAS-PTE's best, but the seed "
    "candidate set yields parameter_reduction_range()[0] ~= 0.96 — a gap in "
    "the candidate set, not a regression (see README 'Known issues')",
)
@pytest.mark.timeout(300)
def test_figure9_parameter_reduction_bound(benchmark):
    """Syno's best operators should use fewer parameters than NAS-PTE's best."""
    result = run_experiment_once(benchmark, "figure9").result
    low, high = result.parameter_reduction_range()
    assert low > 1.0
