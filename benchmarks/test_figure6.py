"""Benchmark regenerating Figure 6: accuracy-vs-latency Pareto curves."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(600)
def test_figure6_pareto_curves(benchmark):
    result = run_experiment_once(benchmark, "figure6", models=["resnet18", "resnet34"]).result
    print()
    print(result.to_table())
    for model in ("resnet18", "resnet34"):
        points = [p for p in result.points if p.model == model]
        baseline = next(p for p in points if p.candidate == "baseline")
        # At least one Syno candidate is faster than the baseline model.
        assert any(p.latency_ms < baseline.latency_ms for p in points if p.candidate != "baseline")
        # The Pareto front contains at least one Syno point (the latency end).
        front = result.pareto_front(model)
        assert any(p.candidate != "baseline" for p in front)


@pytest.mark.timeout(600)
def test_figure6_resnet34_vs_resnet18_headline(benchmark):
    """The paper highlights Syno-optimized ResNet-34 beating baseline ResNet-18 in latency."""
    result = run_experiment_once(
        benchmark, "figure6", models=["resnet18", "resnet34"], train_steps=8
    ).result
    baseline18 = next(
        p for p in result.points if p.model == "resnet18" and p.candidate == "baseline"
    )
    best34 = min(
        (p for p in result.points if p.model == "resnet34" and p.candidate != "baseline"),
        key=lambda p: p.latency_ms,
    )
    assert best34.latency_ms < baseline18.latency_ms
