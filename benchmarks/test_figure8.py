"""Benchmark regenerating Figure 8: Operator 1 vs stacked conv vs INT8 quantization."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(300)
def test_figure8_case_study(benchmark):
    result = run_experiment_once(benchmark, "figure8").result
    print()
    print(result.to_table())
    original = result.point("original")
    operator1 = result.point("operator1")
    stacked = result.point("stacked_convolution")
    quantized = result.point("int8_quantized")
    # Latency ordering: Operator 1 is faster than the original model and than
    # the stacked convolution; INT8 also beats the original.
    assert operator1.latency_ms < original.latency_ms
    assert operator1.latency_ms < stacked.latency_ms
    assert quantized.latency_ms < original.latency_ms
    # Quantization keeps most of the original accuracy (its drop is small).
    assert quantized.accuracy >= original.accuracy - 0.1
