"""Benchmark regenerating Table 3: canonical rates by pGraph size."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(120)
def test_table3_canonicalization_rates(benchmark):
    result = run_experiment_once(benchmark, "table3").result
    print()
    print(result.to_table())
    # Canonicalization prunes a large majority of random candidates
    # (the paper reports a >70x reduction; the exact factor depends on scale).
    assert result.redundancy_factor > 3.0
    # The canonical rate collapses for large pGraphs (0.00% at size >= 8).
    large = [size for size in result.per_size if size >= 7]
    if large:
        assert all(result.canonical_rate(size) <= 0.10 for size in large)
    # Small pGraphs are much more often canonical than large ones.
    small_sizes = [s for s in result.per_size if s <= 3]
    large_sizes = [s for s in result.per_size if s >= 6]
    if small_sizes and large_sizes:
        small_rate = max(result.canonical_rate(s) for s in small_sizes)
        large_rate = max(result.canonical_rate(s) for s in large_sizes)
        assert small_rate > large_rate
