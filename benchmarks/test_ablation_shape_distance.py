"""Benchmark regenerating the Section 9.4 shape-distance ablation."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(120)
def test_shape_distance_ablation(benchmark):
    result = run_experiment_once(benchmark, "ablation-shape-distance").result
    print()
    print(result.to_table())
    # Guided sampling finds valid operators; unguided sampling finds (almost)
    # none — the paper's 5M-trials-vs-500M-trials contrast at small scale.
    assert result.guided_valid > 0
    assert result.guided_valid > result.unguided_valid
    assert result.yield_ratio >= 2.0
