"""Benchmark for the materialized-reduction ablation (Figure 4's optimization)."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(60)
def test_materialized_reduction_ablation(benchmark):
    result = run_experiment_once(benchmark, "ablation-materialization").result
    print()
    print(result.to_table())
    # The Figure 4 example: naive k*H MACs vs (1 + k/s)*H after materialization.
    figure4 = result.row("figure4")
    assert figure4.gain > 1.5
    # Operator 1's staged lowering (Listing 2) is far cheaper than the naive nest.
    assert result.row("operator1").gain > 5.0
    # No operator gets worse: the pass falls back to the naive program.
    assert all(row.gain >= 1.0 for row in result.rows)
