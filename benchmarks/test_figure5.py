"""Benchmark regenerating Figure 5: end-to-end speedups on the five vision models."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(300)
def test_figure5_end_to_end_speedups(benchmark):
    result = run_experiment_once(benchmark, "figure5").result
    print()
    print(result.to_table())
    # The paper's headline claim: Syno finds operators that speed up every
    # model on every platform with both compilers (geomeans 1.37x - 2.06x).
    for backend in ("tvm", "torchinductor"):
        for target in ("mobile_cpu", "mobile_gpu", "a100"):
            assert result.geomean_speedup(target, backend) > 1.0
    # ResNets (non-NAS-optimized) should gain more than EfficientNetV2 (the
    # NAS-optimized backbone), mirroring the paper's per-model ordering.
    resnet = [r.speedup for r in result.rows if r.model == "resnet18" and r.backend == "tvm"]
    efficientnet = [
        r.speedup for r in result.rows if r.model == "efficientnet_v2_s" and r.backend == "tvm"
    ]
    assert min(resnet) > min(efficientnet)
