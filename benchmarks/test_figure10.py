"""Benchmark regenerating Figure 10: GPT-2 perplexity vs training steps."""

import pytest

from benchmarks._harness import run_experiment_once


@pytest.mark.timeout(120)
def test_figure10_gpt2_perplexity(benchmark):
    result = run_experiment_once(benchmark, "figure10", train_steps=30).result
    print()
    print(result.to_table())
    # Both runs actually trained (losses decreased from their starting point).
    assert result.baseline_losses[-1] < result.baseline_losses[0]
    assert result.syno_losses[-1] < result.syno_losses[0]
    # The substituted model reaches a perplexity no worse than ~15% above the
    # baseline (the paper reports it is in fact better: 99 vs 111).
    assert result.syno_perplexity < result.baseline_perplexity * 1.15
    # The grouped QKV projection yields a training-step speedup (paper: ~1.1x).
    assert result.training_speedup > 1.0
