"""Helpers shared by the benchmark files."""


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark.

    The quantity of interest is the experiment's output (the regenerated
    table/figure), not the harness's wall-clock time, so a single round is
    enough; pytest-benchmark still records the timing for regression tracking.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
