"""Helpers shared by the benchmark files.

Benchmarks are thin wrappers over the same runner API the ``repro`` CLI uses
(:func:`repro.experiments.runner.run_experiment`), so a figure regenerated
from pytest and one regenerated from the command line go through identical
code.  The runner is invoked without an artifact store: benchmark runs assert
on the live result object and leave no files behind (use ``repro run`` to
persist records).
"""


def run_once(benchmark, fn, *args, **kwargs):
    """Run a callable exactly once under pytest-benchmark.

    The quantity of interest is the experiment's output (the regenerated
    table/figure), not the harness's wall-clock time, so a single round is
    enough; pytest-benchmark still records the timing for regression tracking.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def run_experiment_once(benchmark, name, **options):
    """Run one registered experiment through the shared runner, exactly once.

    ``options`` are per-experiment keyword arguments (e.g. ``models=[...]``,
    ``train_steps=8``) forwarded to the experiment's ``run()`` via
    :class:`~repro.experiments.runner.ExperimentConfig`.  Budget knobs that
    the config models as first-class fields (``train_steps``, ``seed``,
    ``processes``, ``shards``, ``smoke``) are lifted onto those fields so a
    benchmark run and the equivalent ``repro run`` CLI invocation build the
    *same* config — and therefore records with comparable fingerprints.
    Returns the :class:`~repro.experiments.runner.RunOutcome`: assertions use
    ``outcome.result`` (the experiment's result dataclass) and the rendered
    table is on ``outcome.record.table``.
    """
    from repro.experiments.runner import ExperimentConfig, run_experiment

    config_fields = {
        key: options.pop(key)
        for key in ("smoke", "train_steps", "processes", "shards", "seed")
        if key in options
    }
    config = ExperimentConfig(options=options, **config_fields)
    return run_once(benchmark, run_experiment, name, config)
