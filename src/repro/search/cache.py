"""Compatibility shims over the scoped runtime API (:mod:`repro.runtime`).

This module used to own the process-wide evaluation caches and the ten-odd
``REPRO_*`` environment knobs.  Both now live on an explicit, scoped
:class:`~repro.runtime.RuntimeContext`; everything below is a thin
deprecation shim that delegates to the *ambient* context
(:func:`repro.runtime.current`) so the historical call signatures keep
working:

* knob readers (``smoke_mode``, ``default_train_steps``, ``search_shards``,
  ``compute_dtype_name``, ...) read the ambient context's
  :class:`~repro.runtime.RuntimeConfig`.  With no context activated, that is
  the process-default context whose config is re-parsed from the ``REPRO_*``
  environment — the compatibility edge.  Once a process has activated an
  explicit context, env-fallback reads emit a ``DeprecationWarning`` once
  per knob.
* cache accessors (``reward_cache``, ``compile_cache``, ``baseline_cache``,
  ``plan_cache``) return the ambient context's
  :class:`~repro.runtime.CacheSet` members, and ``save_caches`` /
  ``load_caches`` / ``clear_caches`` / ``cache_stats`` / ``cache_sizes``
  operate on that same set.

New code should take a ``runtime`` argument (or call
``repro.runtime.current()`` once) instead of importing from here; see
``docs/architecture.md``.  :func:`parallel_map` — the legacy opt-in
process fan-out for candidate evaluation — still lives here.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from repro.runtime import (
    CACHE_FORMAT_VERSION,
    CacheStats,
    KeyedCache,
    cache_snapshot_filename,
    current,
    env_int,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "KeyedCache",
    "baseline_cache",
    "cache_max_entries",
    "cache_sizes",
    "cache_snapshot_filename",
    "cache_stats",
    "cached_baseline",
    "cached_reward",
    "caches_enabled",
    "clear_caches",
    "compile_cache",
    "compiled_forward_enabled",
    "compute_dtype_name",
    "default_train_steps",
    "env_int",
    "evaluation_processes",
    "load_caches",
    "parallel_map",
    "plan_cache",
    "reward_cache",
    "save_caches",
    "search_shards",
    "smoke_mode",
    "smoke_value",
    "tuning_trials",
]

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


# ---------------------------------------------------------------------------
# Knob shims (formerly direct environment reads)
# ---------------------------------------------------------------------------


def smoke_mode() -> bool:
    """Whether the ambient context runs the fast-path (smoke) budget."""
    return current().config.smoke


def default_train_steps(full: int = 40, smoke: int = 8) -> int:
    """The ambient proxy-training step budget (explicit steps beat smoke/full)."""
    return current().config.resolve_train_steps(full=full, smoke=smoke)


def tuning_trials(full: int, smoke: int | None = None) -> int:
    """The schedule-tuning trial budget, shrunk under smoke mode."""
    return current().config.tuning_trials(full, smoke)


def smoke_value(full: T, smoke: T) -> T:
    """Pick between the full-fidelity and smoke-budget value of a knob."""
    return current().config.smoke_value(full, smoke)


def evaluation_processes() -> int:
    """Worker-process count for parallel candidate evaluation (default: serial)."""
    return max(current().config.eval_processes, 1)


def search_shards() -> int:
    """Shard count for sharded search execution (1 = serial).

    Read by :func:`repro.search.parallel.sharded_map` and everything built on
    it; results are bit-identical at any shard count — sharding only changes
    *where* the work runs.
    """
    return max(current().config.shards, 1)


def cache_max_entries() -> int:
    """Per-cache size cap of the persisted snapshot (``<= 0`` disables)."""
    return current().config.cache_max_entries


def caches_enabled() -> bool:
    """Whether the ambient context's caches are active.

    Disabling is meant for A/B timing and for debugging suspected stale-cache
    issues; results must be identical either way because every cached value
    is a pure function of its key.
    """
    return current().config.eval_cache


def compute_dtype_name() -> str:
    """The ambient compute dtype name (float32 under smoke, float64 otherwise)."""
    return current().config.dtype_name()


def compiled_forward_enabled() -> bool:
    """Whether lowered operators run through compiled execution plans."""
    return current().config.compiled_forward


# ---------------------------------------------------------------------------
# Cache shims (formerly module-global KeyedCaches)
# ---------------------------------------------------------------------------


def reward_cache() -> KeyedCache:
    """The ambient reward cache keyed by ``(context, pGraph signature)``."""
    return current().caches.reward


def compile_cache() -> KeyedCache:
    """The ambient compile cache keyed by ``(backend config, program, target)``."""
    return current().caches.compile_


def baseline_cache() -> KeyedCache:
    """The ambient baseline accuracy/latency cache keyed by context."""
    return current().caches.baseline


def plan_cache() -> KeyedCache:
    """The ambient compiled-execution-plan cache.

    Keyed by ``(pGraph signature, input assignment, binding, concrete
    shapes)`` — see :func:`repro.codegen.plan.cached_plan`, which owns key
    construction.  Plans hold numpy index arrays and contraction paths, and
    are cheap to recompile, so unlike the other caches they are *not*
    persisted to disk — only memoized per context.
    """
    return current().caches.plan


def clear_caches() -> None:
    """Drop every cached evaluation of the ambient context."""
    current().caches.clear()


def cache_stats() -> dict[str, CacheStats]:
    """Snapshot of the ambient caches' counters, keyed by cache name."""
    return current().caches.stats()


def cache_sizes() -> dict[str, int]:
    """Current entry count of the ambient caches, keyed by cache name."""
    return current().caches.sizes()


def cached_reward(context: Hashable, signature: str, compute: Callable[[], float]) -> float:
    """The reward of one candidate under one evaluation context, computed once.

    ``context`` must capture everything besides the operator that influences
    the reward (backbone, training budget, dataset seed); ``signature`` is the
    operator's canonical pGraph signature.
    """
    return current().cached_reward(context, signature, compute)


def cached_baseline(context: Hashable, compute: Callable[[], T]) -> T:
    """A baseline (unsubstituted) metric under one context, computed once."""
    return current().cached_baseline(context, compute)


# ---------------------------------------------------------------------------
# Disk persistence shims
# ---------------------------------------------------------------------------


def save_caches(path: str, max_entries: int | None = None) -> dict[str, int]:
    """Persist the ambient context's caches to ``path``; returns entries per cache.

    Thin wrapper over :meth:`repro.runtime.RuntimeContext.save_caches`, which
    returns a structured :class:`~repro.runtime.SnapshotStatus`; this shim
    keeps the historical "entries per cache, empty on failure/disabled" shape.
    """
    status = current().save_caches(path, max_entries=max_entries)
    return dict(status.entries) if status.status == "saved" else {}


def load_caches(path: str) -> dict[str, int]:
    """Merge a persisted snapshot into the ambient context's caches.

    Returns the number of entries *added* per cache (already-present keys are
    kept, so freshly computed values always win).  A missing, corrupt or
    version-mismatched snapshot loads nothing — callers never need to guard.
    """
    status = current().load_caches(path)
    return dict(status.entries) if status.status == "loaded" else {}


# ---------------------------------------------------------------------------
# Opt-in parallel evaluation
# ---------------------------------------------------------------------------


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes when asked.

    Parallelism is strictly opt-in: with ``processes`` (or the ambient
    context's ``eval_processes``) at 1 the map runs serially in process,
    which is also the only path that warms the context's caches.  Any failure
    to fork or pickle falls back to the serial map so callers never have to
    handle parallelism errors.
    """
    work: Sequence[T] = list(items)
    count = processes if processes is not None else evaluation_processes()
    if count <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        # Setup-only guard: prove the payload can cross the process boundary
        # and that fork is available.  Failures here mean "parallelism is not
        # possible", so falling back to serial is correct.  Errors raised by
        # ``fn`` itself during the map are genuine work failures and
        # propagate to the caller first-class.
        pickle.dumps(fn)
        pickle.dumps(work)
        context = multiprocessing.get_context("fork")
        pool = context.Pool(min(count, len(work)))
    except Exception as exc:  # unpicklable payloads, missing fork, ...
        log.warning("parallel evaluation unavailable (%s); falling back to serial", exc)
        return [fn(item) for item in work]
    with pool:
        return pool.map(fn, work)
