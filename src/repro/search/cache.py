"""Process-wide evaluation-reuse subsystem.

Search and the experiment harness are dominated by two repeated costs:

* **proxy training** — substituting a candidate operator into a backbone and
  training it for a handful of steps (the reward of Algorithm 1), and
* **compiler tuning** — sweeping the schedule space of a loop-nest program
  for one hardware target.

Both are pure functions of small, hashable descriptions (the canonical pGraph
signature plus the evaluation context; the loop-nest program plus the backend
configuration and target), so this module provides process-wide caches for
them:

``reward_cache()``
    rewards (proxy-training accuracies) keyed by ``(context, signature)``.
    The *context* captures everything besides the operator that influences
    the reward — backbone builder, training budget, dataset seed — so
    distinct experiments never alias each other's rewards.

``compile_cache()``
    :class:`~repro.compiler.backends.TuneResult` values keyed by
    ``(backend config, program, target)``.  Shared by every
    ``CompilerBackend.compile`` call in the process.

``baseline_cache()``
    baseline (unsubstituted) accuracies and latencies keyed by the evaluation
    context, so sessions and experiments compute each baseline exactly once.

The caches are also **persistent**: :func:`save_caches` snapshots them to a
versioned pickle file and :func:`load_caches` merges such a snapshot back into
the running process, so repeated invocations of the same experiment (e.g. two
``repro run figure5 --smoke`` commands in fresh processes) reuse each other's
training and tuning work.  The experiment runner CLI wires this up around
every run; see :mod:`repro.cli` and :mod:`repro.results`.

The module also hosts the run-budget knobs that the caches interact with:

* ``REPRO_TRAIN_STEPS`` — proxy-training step budget (read by
  :class:`repro.search.evaluator.EvaluationSettings`).
* ``REPRO_SMOKE`` — when ``1``, experiments shrink their workloads (fewer
  models / layers / samples, smaller tuning budgets) so the full benchmark
  suite completes in minutes.  The benchmark conftest turns this on by
  default; export ``REPRO_SMOKE=0`` for full-fidelity runs.
* ``REPRO_EVAL_PROCESSES`` — opt-in process count for
  :func:`parallel_map`, used by candidate evaluation fan-out.
* ``REPRO_SEARCH_SHARDS`` — shard count for the sharded search executor
  (:mod:`repro.search.parallel`): MCTS reward waves, candidate evaluation
  and the experiments' work items fan out over forked workers whose cache
  entries merge back deterministically.  Results are bit-identical at any
  shard count.
* ``REPRO_CACHE_MAX_ENTRIES`` — per-cache size cap of the persisted
  snapshot (LRU-style eviction at save time; ``0`` disables).
* ``REPRO_EVAL_CACHE`` — ``0`` disables the in-process caches (A/B timing
  and stale-cache debugging; results are identical either way).
* ``REPRO_RESULTS_DIR`` — root of the on-disk artifact store (default
  ``./results``); the persisted cache snapshot lives under it at
  ``cache/evaluation-cache-v<N>.pkl``.  The directory itself is owned by
  :class:`repro.results.ArtifactStore`; this module only reads and writes
  the snapshot paths it is handed.

Everything here is stdlib-only and import-light so the compiler, the search
core and the experiment harness can all depend on it without cycles.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import threading
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence, TypeVar

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


# ---------------------------------------------------------------------------
# Environment knobs
# ---------------------------------------------------------------------------


def env_int(name: str, default: int) -> int:
    """An integer environment knob; malformed values fall back to the default."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        log.warning("ignoring malformed %s=%r (expected an integer)", name, raw)
        return default


def smoke_mode() -> bool:
    """Whether the fast-path budget (``REPRO_SMOKE=1``) is active."""
    return os.environ.get("REPRO_SMOKE", "0") not in ("", "0", "false", "no")


def default_train_steps(full: int = 40, smoke: int = 8) -> int:
    """The proxy-training step budget.

    ``REPRO_TRAIN_STEPS`` always wins; otherwise smoke mode shrinks the
    default so benchmark runs stay within their timeout.
    """
    return env_int("REPRO_TRAIN_STEPS", smoke if smoke_mode() else full)


def tuning_trials(full: int, smoke: int | None = None) -> int:
    """The schedule-tuning trial budget, shrunk under ``REPRO_SMOKE=1``."""
    if not smoke_mode():
        return full
    return smoke if smoke is not None else max(full // 3, 8)


def smoke_value(full: T, smoke: T) -> T:
    """Pick between the full-fidelity and smoke-budget value of a knob."""
    return smoke if smoke_mode() else full


def evaluation_processes() -> int:
    """Worker-process count for parallel candidate evaluation (default: serial)."""
    return max(env_int("REPRO_EVAL_PROCESSES", 1), 1)


def search_shards() -> int:
    """Shard count for sharded search execution (``REPRO_SEARCH_SHARDS``).

    Read by :func:`repro.search.parallel.sharded_map` and everything built on
    it (the MCTS reward waves, candidate evaluation, the experiment modules).
    ``1`` (the default) is the serial path; results are bit-identical at any
    shard count — sharding only changes *where* the work runs.
    """
    return max(env_int("REPRO_SEARCH_SHARDS", 1), 1)


def cache_max_entries() -> int:
    """Per-cache size cap of the persisted snapshot (``REPRO_CACHE_MAX_ENTRIES``).

    The in-memory caches are unbounded (a process's working set is naturally
    limited by its run), but the on-disk snapshot would otherwise grow with
    every merge across runs.  At save time each cache keeps only its most
    recently used entries up to this cap.  Values ``<= 0`` disable the cap.
    """
    return env_int("REPRO_CACHE_MAX_ENTRIES", 4096)


def caches_enabled() -> bool:
    """Whether the process-wide caches are active (``REPRO_EVAL_CACHE=0`` disables).

    Disabling is meant for A/B timing and for debugging suspected stale-cache
    issues; results must be identical either way because every cached value
    is a pure function of its key.
    """
    return os.environ.get("REPRO_EVAL_CACHE", "1") not in ("", "0", "false", "no")


_VALID_DTYPES = ("float32", "float64")


def compute_dtype_name() -> str:
    """The compute dtype of the training substrate, as a dtype name.

    ``REPRO_DTYPE`` always wins; otherwise smoke runs default to ``float32``
    (halving memory bandwidth on the einsum-heavy proxy-training loop) and
    full-fidelity runs keep ``float64``.  The name (not a numpy dtype) lives
    here so this module stays stdlib-only; :func:`repro.nn.tensor.compute_dtype`
    resolves it to the numpy dtype every array allocation uses.
    """
    raw = os.environ.get("REPRO_DTYPE")
    if raw:
        name = raw.strip().lower()
        if name in _VALID_DTYPES:
            return name
        log.warning("ignoring malformed REPRO_DTYPE=%r (expected float32/float64)", raw)
    return "float32" if smoke_mode() else "float64"


def compiled_forward_enabled() -> bool:
    """Whether lowered operators run through compiled execution plans.

    ``REPRO_COMPILED_FORWARD=0`` is the escape hatch that keeps the original
    per-call eager interpreter (:meth:`EagerOperator.forward`'s primitive walk)
    for A/B timing; results must match the plan to numerical tolerance.
    """
    return os.environ.get("REPRO_COMPILED_FORWARD", "1") not in ("", "0", "false", "no")


# ---------------------------------------------------------------------------
# Caches
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss counters of one cache."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(hits=self.hits, misses=self.misses)


class KeyedCache:
    """A thread-safe dict cache with hit/miss accounting and LRU ordering.

    The underlying dict is kept in recency order (hits and inserts move the
    key to the end), so :meth:`export_entries` can apply an LRU-style size cap
    when the caches are persisted to disk.
    """

    _MISSING = object()

    def __init__(self, name: str) -> None:
        self.name = name
        self.stats = CacheStats()
        self._data: dict[Hashable, object] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def lookup(self, key: Hashable) -> tuple[bool, object]:
        """``(found, value)`` for ``key``, updating the hit/miss counters."""
        with self._lock:
            value = self._data.get(key, self._MISSING)
            if value is self._MISSING:
                self.stats.misses += 1
                return False, None
            self.stats.hits += 1
            self._data[key] = self._data.pop(key)  # mark most recently used
            return True, value

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._data.pop(key, None)  # re-inserting marks it most recently used
            self._data[key] = value

    def get_or_compute(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Cached value for ``key``, computing (outside the lock) on a miss."""
        if not caches_enabled():
            return compute()
        found, value = self.lookup(key)
        if found:
            return value  # type: ignore[return-value]
        result = compute()
        self.put(key, result)
        return result

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.stats = CacheStats()

    def key_snapshot(self) -> set:
        """The set of keys currently cached (used for shard-delta exports)."""
        with self._lock:
            return set(self._data)

    def export_entries(self, max_entries: int | None = None) -> dict[Hashable, object]:
        """A shallow copy of the cached entries (for persistence snapshots).

        ``max_entries`` keeps only the most recently used entries (the dict is
        maintained in recency order); ``None`` or a non-positive value exports
        everything.
        """
        with self._lock:
            if max_entries is not None and 0 < max_entries < len(self._data):
                keys = list(self._data)[-max_entries:]
                return {key: self._data[key] for key in keys}
            return dict(self._data)

    def merge_entries(self, entries: Mapping[Hashable, object]) -> int:
        """Insert entries that are not already cached; returns how many were added.

        In-process values win over persisted ones: an entry computed in this
        process is at least as fresh as anything on disk.
        """
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._data:
                    self._data[key] = value
                    added += 1
        return added


_REWARD_CACHE = KeyedCache("reward")
_COMPILE_CACHE = KeyedCache("compile")
_BASELINE_CACHE = KeyedCache("baseline")
_PLAN_CACHE = KeyedCache("plan")


def reward_cache() -> KeyedCache:
    """The process-wide reward cache keyed by ``(context, pGraph signature)``."""
    return _REWARD_CACHE


def compile_cache() -> KeyedCache:
    """The process-wide compile cache keyed by ``(backend config, program, target)``."""
    return _COMPILE_CACHE


def baseline_cache() -> KeyedCache:
    """The process-wide baseline accuracy/latency cache keyed by context."""
    return _BASELINE_CACHE


def plan_cache() -> KeyedCache:
    """The process-wide compiled-execution-plan cache.

    Keyed by ``(pGraph signature, input assignment, binding, concrete
    shapes)`` — see :func:`repro.codegen.plan.cached_plan`, which owns key
    construction.  Plans hold numpy index arrays and contraction paths, and
    are cheap to recompile, so unlike the other caches they are *not*
    persisted to disk — only memoized per process.
    """
    return _PLAN_CACHE


def clear_caches() -> None:
    """Drop every cached evaluation (used by tests and long-running services)."""
    for cache in (_REWARD_CACHE, _COMPILE_CACHE, _BASELINE_CACHE, _PLAN_CACHE):
        cache.clear()


def cache_stats() -> dict[str, CacheStats]:
    """Snapshot of every cache's counters, keyed by cache name."""
    return {
        cache.name: cache.stats.snapshot()
        for cache in (_REWARD_CACHE, _COMPILE_CACHE, _BASELINE_CACHE, _PLAN_CACHE)
    }


def cached_reward(context: Hashable, signature: str, compute: Callable[[], float]) -> float:
    """The reward of one candidate under one evaluation context, computed once.

    ``context`` must capture everything besides the operator that influences
    the reward (backbone, training budget, dataset seed); ``signature`` is the
    operator's canonical pGraph signature.
    """
    return _REWARD_CACHE.get_or_compute((context, signature), compute)


def cached_baseline(context: Hashable, compute: Callable[[], float]) -> float:
    """A baseline (unsubstituted) metric under one context, computed once."""
    return _BASELINE_CACHE.get_or_compute(context, compute)


# ---------------------------------------------------------------------------
# Disk persistence
# ---------------------------------------------------------------------------

#: Version of the on-disk snapshot format *and* of the cache key schemas.
#: Bump whenever a key or value type changes shape (e.g. a new field in
#: ``TuneResult`` or an extra component in an evaluation context) *or* the
#: meaning of a cached value changes (v3: trainings reseed the parameter
#: init RNG per work item, so rewards are order-independent): loading
#: ignores snapshots written under any other version, so stale entries can
#: never alias fresh ones.
CACHE_FORMAT_VERSION = 3

#: The caches that persist to disk.  The plan cache is deliberately absent:
#: compiled plans are cheap to rebuild and full of numpy arrays, so they are
#: memoized per process only.
_ALL_CACHES = (_REWARD_CACHE, _COMPILE_CACHE, _BASELINE_CACHE)


def cache_snapshot_filename() -> str:
    """Basename of the persisted snapshot (the key version is part of the name)."""
    return f"evaluation-cache-v{CACHE_FORMAT_VERSION}.pkl"


def save_caches(path: str, max_entries: int | None = None) -> dict[str, int]:
    """Persist every process-wide cache to ``path``; returns entries per cache.

    The snapshot is written atomically (temp file + rename) so an interrupted
    run never leaves a truncated file behind.  Persistence is best-effort and
    never fails an experiment: entries whose key or value cannot be pickled
    are skipped with a warning, and an unwritable destination logs instead of
    raising.  With the caches disabled (``REPRO_EVAL_CACHE=0``) nothing is
    written — the in-memory caches are empty then, and overwriting would
    destroy a previous run's warm snapshot.

    The snapshot is size-capped: each cache persists at most ``max_entries``
    (default: :func:`cache_max_entries`, the ``REPRO_CACHE_MAX_ENTRIES`` knob)
    of its most recently used entries, so the on-disk file stops growing once
    a working set saturates instead of accumulating every key ever merged.
    """
    if not caches_enabled():
        return {}
    cap = max_entries if max_entries is not None else cache_max_entries()
    caches: dict[str, dict] = {
        cache.name: cache.export_entries(max_entries=cap) for cache in _ALL_CACHES
    }
    for cache in _ALL_CACHES:
        dropped = len(cache) - len(caches[cache.name])
        if dropped > 0:
            log.info(
                "snapshot cap: persisting %d/%d %s-cache entries (LRU eviction of %d)",
                len(caches[cache.name]), len(cache), cache.name, dropped,
            )
    payload = {"version": CACHE_FORMAT_VERSION, "caches": caches}
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        # A poison entry somewhere: fall back to filtering entry by entry.
        for cache_name, entries in caches.items():
            picklable = {}
            for key, value in entries.items():
                try:
                    pickle.dumps((key, value))
                except Exception as exc:
                    log.warning("not persisting %s-cache entry %r: %s", cache_name, key, exc)
                else:
                    picklable[key] = value
            caches[cache_name] = picklable
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except OSError as exc:
        log.warning("could not persist cache snapshot to %s: %s", path, exc)
        return {}
    return {name: len(entries) for name, entries in caches.items()}


def load_caches(path: str) -> dict[str, int]:
    """Merge a persisted snapshot into the process-wide caches.

    Returns the number of entries *added* per cache (already-present keys are
    kept, so freshly computed values always win).  A missing, corrupt or
    version-mismatched snapshot loads nothing — callers never need to guard.
    """
    if not caches_enabled():
        return {}
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except FileNotFoundError:
        return {}
    except Exception as exc:
        log.warning("ignoring unreadable cache snapshot %s: %s", path, exc)
        return {}
    if not isinstance(payload, dict) or payload.get("version") != CACHE_FORMAT_VERSION:
        log.warning(
            "ignoring cache snapshot %s: format version %r != %d",
            path,
            payload.get("version") if isinstance(payload, dict) else None,
            CACHE_FORMAT_VERSION,
        )
        return {}
    added: dict[str, int] = {}
    by_name = {cache.name: cache for cache in _ALL_CACHES}
    for name, entries in payload.get("caches", {}).items():
        cache = by_name.get(name)
        if cache is not None and isinstance(entries, dict):
            added[name] = cache.merge_entries(entries)
    return added


def cache_sizes() -> dict[str, int]:
    """Current entry count of every process-wide cache, keyed by cache name."""
    return {cache.name: len(cache) for cache in (*_ALL_CACHES, _PLAN_CACHE)}


# ---------------------------------------------------------------------------
# Opt-in parallel evaluation
# ---------------------------------------------------------------------------


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes when asked.

    Parallelism is strictly opt-in: with ``processes`` (or the
    ``REPRO_EVAL_PROCESSES`` environment knob) at 1 the map runs serially in
    process, which is also the only path that warms the process-wide caches.
    Any failure to fork or pickle falls back to the serial map so callers
    never have to handle parallelism errors.
    """
    work: Sequence[T] = list(items)
    count = processes if processes is not None else evaluation_processes()
    if count <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    try:
        # Setup-only guard: prove the payload can cross the process boundary
        # and that fork is available.  Failures here mean "parallelism is not
        # possible", so falling back to serial is correct.  Errors raised by
        # ``fn`` itself during the map are genuine work failures and
        # propagate to the caller first-class.
        pickle.dumps(fn)
        pickle.dumps(work)
        context = multiprocessing.get_context("fork")
        pool = context.Pool(min(count, len(work)))
    except Exception as exc:  # unpicklable payloads, missing fork, ...
        log.warning("parallel evaluation unavailable (%s); falling back to serial", exc)
        return [fn(item) for item in work]
    with pool:
        return pool.map(fn, work)
