"""Accuracy and latency evaluation of candidate operators.

``AccuracyEvaluator`` reproduces the paper's proxy-training step: substitute
the candidate into the backbone, train briefly on the (synthetic) proxy
dataset and report validation accuracy, terminating early for hopeless
candidates.  ``LatencyEvaluator`` reproduces the tuning step: lower every
slot's operator to a loop-nest program and compile it with the requested
backend for the requested hardware target, summing the per-layer latencies
into an end-to-end estimate.
"""

from __future__ import annotations

import contextlib
import logging
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.codegen.eager import LoweringError
from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler.backends import CompilerBackend, TuneResult, loopnest_for_slot
from repro.compiler.targets import HardwareTarget
from repro.core.operator import SynthesizedOperator
from repro.ir.variables import Variable
from repro.nn.data import SyntheticImageDataset
from repro.nn.layers import seed_all
from repro.nn.models.common import ConvSlot
from repro.nn.trainer import Trainer, TrainingConfig
from repro.runtime import RuntimeContext, current
from repro.search.cache import compute_dtype_name, default_train_steps
from repro.search.extraction import (
    DEFAULT_COEFFICIENT_VALUES,
    binding_for_slot,
    slot_is_substitutable,
    substitutable_slots,
)
from repro.search.substitution import synthesized_conv_factory

log = logging.getLogger(__name__)


@dataclass
class EvaluationSettings:
    """Knobs shared by accuracy and latency evaluation.

    ``train_steps`` defaults from the ``REPRO_TRAIN_STEPS`` environment
    variable (the benchmark harness's budget knob); an explicit value always
    wins over the environment.
    """

    batch_size: int = 16
    train_steps: int = field(default_factory=default_train_steps)
    image_size: int = 8
    num_classes: int = 10
    dataset_size: int = 192
    dataset_seed: int = 0
    coefficients: Mapping[Variable, int] = field(
        default_factory=lambda: dict(DEFAULT_COEFFICIENT_VALUES)
    )

    def cache_key(self, dtype: str | None = None) -> tuple:
        """Hashable description of every knob that influences a reward.

        The compute dtype is part of the key: float32 and float64 proxy
        training genuinely diverge numerically, so their rewards must never
        alias (the compiled-forward knob is deliberately absent — the plan
        and the interpreter agree to tolerance).  ``dtype`` defaults to the
        ambient context's compute dtype.
        """
        return (
            self.batch_size,
            self.train_steps,
            self.image_size,
            self.num_classes,
            self.dataset_size,
            self.dataset_seed,
            tuple(sorted(self.coefficients.items())),
            dtype if dtype is not None else compute_dtype_name(),
        )


class AccuracyEvaluator:
    """Trains a backbone with the candidate operator substituted into it."""

    def __init__(
        self,
        model_builder: Callable,
        settings: EvaluationSettings | None = None,
        runtime: RuntimeContext | None = None,
    ) -> None:
        #: the runtime context this evaluator caches into; ``None`` resolves
        #: the ambient context per call (so ``with ctx.activate():`` works).
        self.runtime = runtime
        self.model_builder = model_builder
        self.settings = settings or EvaluationSettings()
        dataset = SyntheticImageDataset(
            num_classes=self.settings.num_classes,
            num_samples=self.settings.dataset_size,
            image_size=self.settings.image_size,
            seed=self.settings.dataset_seed,
        )
        self.train_set, self.val_set = dataset.split()
        self._baseline_accuracy: float | None = None
        builder_name = getattr(model_builder, "__qualname__", repr(model_builder))
        builder_module = getattr(model_builder, "__module__", "")
        # The dtype is baked into the evaluation context at construction so
        # rewards computed by this instance never alias across dtypes.
        self._context = (
            "accuracy", builder_module, builder_name,
            self.settings.cache_key(self._rt().config.dtype_name()),
        )

    def _rt(self) -> RuntimeContext:
        return self.runtime if self.runtime is not None else current()

    def _scope(self):
        """Evaluation scope: an explicitly threaded runtime becomes ambient.

        Training resolves the compute dtype (and plan compilation) through
        the ambient context, while this evaluator keys its rewards by its
        *own* context's dtype — so a threaded ``runtime`` must be active
        while the work runs, or the cached value and its key would disagree
        (and serial evaluation would diverge from sharded workers, which
        always activate the shipped context).
        """
        if self.runtime is None:
            return contextlib.nullcontext()
        return self.runtime.activate()

    def _train(self, conv_factory) -> float:
        # Each training run reseeds the substrate's parameter-initialization
        # RNG, making the result a pure function of (builder, factory,
        # settings) rather than of how many models were built earlier in the
        # process.  This is what lets rewards be computed in any order, in
        # any shard worker, and still agree bit-for-bit with a serial run.
        seed_all(self.settings.dataset_seed)
        model = self.model_builder(conv_factory=conv_factory, image_size=self.settings.image_size,
                                   num_classes=self.settings.num_classes)
        trainer = Trainer(
            model,
            TrainingConfig(
                max_steps=self.settings.train_steps,
                batch_size=self.settings.batch_size,
                eval_every=max(self.settings.train_steps // 2, 1),
            ),
        )
        return trainer.fit_classifier(self.train_set, self.val_set).best_accuracy

    def baseline_accuracy(self) -> float:
        """Accuracy of the unmodified backbone (computed once per context)."""
        if self._baseline_accuracy is None:
            from repro.nn.models.common import default_conv_factory

            with self._scope():
                self._baseline_accuracy = self._rt().cached_baseline(
                    self._context, lambda: self._train(default_conv_factory)
                )
        return self._baseline_accuracy

    def evaluate(self, operator: SynthesizedOperator, seed: int = 0) -> float:
        """Validation accuracy of the backbone with ``operator`` substituted in.

        Rewards are memoized process-wide by (evaluation context, canonical
        pGraph signature), so repeated searches and experiments over the same
        backbone never re-train the same candidate.
        """
        signature = operator.graph.signature()
        with self._scope():
            return self._rt().cached_reward(
                (self._context, seed), signature,
                lambda: self._evaluate_uncached(operator, seed),
            )

    def _evaluate_uncached(self, operator: SynthesizedOperator, seed: int) -> float:
        factory = synthesized_conv_factory(
            operator, coefficients=self.settings.coefficients, seed=seed
        )
        try:
            return self._train(factory)
        except (LoweringError, ValueError) as exc:
            # Operators that cannot be instantiated for some layer binding
            # (e.g. indivisible coefficient choices) receive zero reward.
            # Anything else propagates: a crash during training is a genuine
            # bug, not an invalid candidate.
            log.warning(
                "candidate received zero reward: %s (operator %s)",
                exc,
                operator.graph.signature(),
            )
            return 0.0

    def accuracy_loss(self, operator: SynthesizedOperator) -> float:
        return self.baseline_accuracy() - self.evaluate(operator)


@dataclass
class LatencyEvaluator:
    """End-to-end latency of a model under one compiler backend and target."""

    slots: Sequence[ConvSlot]
    backend: CompilerBackend
    target: HardwareTarget
    batch: int = 1
    coefficients: Mapping[Variable, int] = field(
        default_factory=lambda: dict(DEFAULT_COEFFICIENT_VALUES)
    )
    #: runtime context to cache into; ``None`` resolves the ambient one per call.
    runtime: RuntimeContext | None = field(default=None, repr=False, compare=False)
    _baseline_latency: float | None = field(default=None, init=False, repr=False, compare=False)

    def _rt(self) -> RuntimeContext:
        return self.runtime if self.runtime is not None else current()

    def _scope(self):
        """Make a threaded ``runtime`` ambient while evaluating (see
        :meth:`AccuracyEvaluator._scope`)."""
        if self.runtime is None:
            return contextlib.nullcontext()
        return self.runtime.activate()

    def _compile(self, program) -> TuneResult:
        return self.backend.compile(program, self.target, runtime=self.runtime)

    def baseline_latency(self) -> float:
        """Latency (seconds) of the original model: every slot is a standard conv.

        Memoized per instance and context-wide by (slots, backend config,
        target, batch): the baseline does not depend on any candidate, so
        per-candidate evaluator instances all share one computation.
        """
        if self._baseline_latency is None:
            context = (
                "latency",
                tuple(self.slots),
                self.backend.config_key(),
                self.target,
                self.batch,
            )
            with self._scope():
                self._baseline_latency = self._rt().cached_baseline(
                    context, self._baseline_latency_uncached
                )
        return self._baseline_latency

    def _baseline_latency_uncached(self) -> float:
        total = 0.0
        for slot in self.slots:
            program = loopnest_for_slot(slot, batch=self.batch)
            total += self._compile(program).latency_seconds
        return total

    def _slot_program(self, slot: ConvSlot, operator: SynthesizedOperator | None):
        """The loop-nest program executed at one slot (operator or standard conv).

        Slots where the operator cannot be instantiated (non-substitutable
        kinds, or channel counts the coefficient values do not divide) keep
        their standard convolution, like the paper's per-model substitution.
        """
        if operator is not None and slot_is_substitutable(slot):
            binding = binding_for_slot(slot, self.batch, self.coefficients)
            try:
                return lower_to_loopnest(operator, binding)
            except Exception as exc:
                # Lowering rejected the (operator, slot) pairing — e.g. a
                # coefficient that does not divide this slot's channels.  The
                # slot keeps its standard convolution, which is the paper's
                # behavior for non-substitutable slots, but the skip is
                # logged so a systematically failing operator is visible.
                log.debug(
                    "operator not lowerable at slot %s (%s); keeping the "
                    "standard convolution", slot, exc,
                )
        return loopnest_for_slot(slot, batch=self.batch)

    def substituted_latency(self, operator: SynthesizedOperator) -> float:
        """Latency with ``operator`` substituted into every standard 3x3 slot."""
        total = 0.0
        with self._scope():
            for slot in self.slots:
                program = self._slot_program(slot, operator)
                total += self._compile(program).latency_seconds
        return total

    def speedup(self, operator: SynthesizedOperator) -> float:
        return self.baseline_latency() / max(self.substituted_latency(operator), 1e-12)

    def layerwise(self, operator: SynthesizedOperator) -> list[tuple[ConvSlot, TuneResult, TuneResult]]:
        """Per-slot (baseline, substituted) tuning results — used by Figure 9."""
        results = []
        for slot in substitutable_slots(self.slots):
            baseline = self._compile(loopnest_for_slot(slot, batch=self.batch))
            binding = binding_for_slot(slot, self.batch, self.coefficients)
            substituted = self._compile(lower_to_loopnest(operator, binding))
            results.append((slot, baseline, substituted))
        return results

    def macs(self, operator: SynthesizedOperator | None = None) -> int:
        """Total MACs of the substitutable slots (original or substituted)."""
        total = 0
        for slot in substitutable_slots(self.slots):
            if operator is None:
                total += slot.macs(self.batch)
                continue
            binding = binding_for_slot(slot, self.batch, self.coefficients)
            try:
                total += lower_to_loopnest(operator, binding).macs
            except Exception:
                # Slots the coefficients do not divide keep their standard conv.
                total += slot.macs(self.batch)
        return total
