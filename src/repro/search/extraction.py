"""Operator extraction from backbone models (``ExtractOperators`` in Algorithm 1).

A model builder is instantiated once with a :class:`RecordingFactory`; the
recorded conv slots give both the symbolic operator specification (all
standard 3x3 convolutions share one symbolic ``[N, C_in, H, W] ->
[N, C_out, H, W]`` spec) and its per-layer concrete bindings.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.core.library import C_IN, C_OUT, GROUPS, H, K1, N, SHRINK, W, conv2d_spec
from repro.core.operator import OperatorSpec
from repro.ir.size import Size
from repro.ir.variables import Variable
from repro.nn.models.common import ConvSlot, RecordingFactory

#: Coefficient sizes made available to the synthesis of vision operators
#: (the small primitive parameters: window, group count, bottleneck factor).
VISION_COEFFICIENTS: tuple = (Size.of(K1), Size.of(GROUPS), Size.of(SHRINK))

#: Default concrete values for the coefficient variables.
DEFAULT_COEFFICIENT_VALUES: dict[Variable, int] = {K1: 3, GROUPS: 2, SHRINK: 2}


def extract_conv_slots(model_builder: Callable, **builder_kwargs) -> list[ConvSlot]:
    """Instantiate the model once with a recording factory and return its slots."""
    recorder = RecordingFactory()
    model_builder(conv_factory=recorder, **builder_kwargs)
    return recorder.slots


#: Channel-divisibility required by the coefficient variables (group count g
#: times bottleneck factor s); slots that cannot satisfy it (e.g. the 3-channel
#: stem) keep their standard convolution.
COEFFICIENT_DIVISIBILITY = 4


def slot_is_substitutable(slot: ConvSlot) -> bool:
    """Whether a slot is a standard 3x3 convolution with divisible channels.

    Strided convolutions keep their standard implementation: the synthesized
    operators are stride-1 drop-ins (Section 4 fixes the input/output shapes),
    and the handful of stride-2 downsampling layers contribute little to the
    end-to-end latency.
    """
    return (
        slot.kernel_size == 3
        and slot.groups == 1
        and slot.stride == 1
        and slot.in_channels % COEFFICIENT_DIVISIBILITY == 0
        and slot.out_channels % COEFFICIENT_DIVISIBILITY == 0
    )


def substitutable_slots(slots: Sequence[ConvSlot]) -> list[ConvSlot]:
    """Standard (non-grouped) 3x3 convolutions — the paper's substitution targets."""
    return [slot for slot in slots if slot_is_substitutable(slot)]


def binding_for_slot(
    slot: ConvSlot,
    batch: int,
    coefficients: Mapping[Variable, int] | None = None,
) -> dict[Variable, int]:
    binding = {
        N: batch,
        C_IN: slot.in_channels,
        C_OUT: slot.out_channels,
        H: slot.spatial,
        W: slot.spatial,
    }
    binding.update(coefficients or DEFAULT_COEFFICIENT_VALUES)
    return binding


def conv_spec_from_slots(
    slots: Sequence[ConvSlot],
    batch: int = 1,
    coefficients: Mapping[Variable, int] | None = None,
) -> OperatorSpec:
    """Build the symbolic conv spec with one concrete binding per eligible slot."""
    eligible = substitutable_slots(slots)
    if not eligible:
        raise ValueError("model has no substitutable 3x3 convolution slots")
    bindings = tuple(binding_for_slot(slot, batch, coefficients) for slot in eligible)
    return conv2d_spec(bindings=bindings)


def original_macs(slots: Sequence[ConvSlot], batch: int = 1) -> int:
    """Total MACs of the standard convolutions in the substitutable slots."""
    return sum(slot.macs(batch) for slot in substitutable_slots(slots))


def original_parameters(slots: Sequence[ConvSlot]) -> int:
    return sum(slot.parameters() for slot in substitutable_slots(slots))
