"""Sharded search execution with a deterministic merge (the scaling layer).

MCTS reward waves, candidate evaluation and the experiment modules all reduce
to the same shape of work: a list of *pure* work items (each a function of a
small picklable description — an operator to proxy-train, a candidate to
tune) whose results must come back in input order.  :func:`sharded_map` is
the one primitive that fans such a list out over ``RuntimeConfig.shards``
worker processes:

* **Deterministic partition** — item ``i`` always belongs to shard
  ``i % shards``.  The partition depends on the shard count only, never on
  worker availability, machine load or cache warmth.
* **Deterministic merge** — results are reassembled in input order, and each
  worker's freshly computed cache entries (reward / baseline / compile /
  plan) are merged back into the parent context's caches in shard order.
  Because every cached value is a pure function of its key, the merge order
  cannot change any value — fixing it anyway makes the executor's behaviour
  reproducible down to cache-iteration order.
* **Context bootstrap** — each worker runs under the same
  :class:`~repro.runtime.RuntimeContext` as the caller: the ambient default
  context is inherited through fork, while an explicit context is pickled
  into the worker and activated there (the worker-side process edge),
  replacing the old implicit environment-variable inheritance.
* **Serial equivalence** — with ``shards <= 1``, a single item, or no spare
  cores, the map degrades to the plain in-process loop.  Results are
  bit-identical either way: work items must not depend on process-global
  mutable state, which is why the evaluators reseed the substrate's
  parameter-initialization RNG per item (see
  :meth:`repro.search.evaluator.AccuracyEvaluator._train`).

Worker processes are forked (never spawned), so they inherit the parent's
warm caches for free; the number of live workers is additionally capped by
``os.cpu_count()`` — on a single-core machine a sharded run executes the
serial path and pays zero fork overhead, while the *results* stay a pure
function of the shard knob.  Any failure to fork or pickle falls back to the
serial map, so callers never handle parallelism errors.

* **Supervision** — each shard runs in its own child process, tracked by pid
  over a result pipe with heartbeats.  A worker that dies (signal, nonzero
  exit) or exceeds the per-shard wall-clock timeout
  (``RuntimeConfig.shard_timeout``) is reaped and its partition re-run
  through a degradation ladder: up to ``RuntimeConfig.shard_retries``
  identical re-forks with exponential backoff, then in-process serial
  execution of just that partition.  The partition is a pure function of the
  shard knob, so every rung produces bit-identical results — a fault-ridden
  run and a fault-free run share record fingerprints.  Each failed attempt
  is surfaced as a structured :class:`ShardFailure` on the runtime context.
  Genuine exceptions raised by ``fn`` are *not* faults: they propagate
  first-class, exactly as the serial map would raise them.

:func:`sharded_reward_evaluator` adapts the primitive to the batched MCTS
frontier (:meth:`repro.core.mcts.MCTS.run`'s ``evaluate_batch`` hook): one
wave of pending ``(signature, operator)`` pairs in, a reward mapping out.
"""

from __future__ import annotations

import contextlib
import functools
import logging
import multiprocessing
import multiprocessing.connection
import os
import pickle
import signal as _signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from repro.runtime import RuntimeContext, current, default_context
from repro.runtime.faults import (
    SITE_ITEM_EVAL,
    SITE_SHARD_ENTRY,
    FaultInjected,
    arm_worker,
    inject,
)
from repro.search.cache import evaluation_processes

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


class _InheritDefaultCaches:
    """Pickle-by-reference marker: "use the worker's inherited default caches".

    A context *derived* from the default one (same cache set, different
    config — what the experiment runner builds per run) must not ship a copy
    of the whole warm cache set to every worker: the fork already carried it.
    The class object itself is used as the marker because classes pickle by
    qualified name, so identity survives the process boundary.
    """


@dataclass
class ShardOutcome:
    """What one shard worker sends back: its results plus its cache delta."""

    results: list = field(default_factory=list)
    cache_entries: dict[str, dict] = field(default_factory=dict)


def warn_processes_ignored(
    shards: int, processes: int | None = None, runtime: RuntimeContext | None = None
) -> None:
    """Warn when sharded execution supersedes a requested process fan-out.

    The older ``processes`` fan-out (``RuntimeConfig.eval_processes`` /
    explicit argument) and sharding are mutually exclusive at a call site:
    sharding wins.  Callers that take both knobs use this so the losing one
    is never silently dead — whether it came from the argument or the config.
    """
    if processes is not None:
        effective = processes
    elif runtime is not None:
        effective = max(runtime.config.eval_processes, 1)
    else:
        effective = evaluation_processes()
    if effective > 1:
        log.warning(
            "sharded execution (shards=%d) takes precedence: ignoring processes=%d",
            shards, effective,
        )


def shard_partition(count: int, shards: int) -> list[list[int]]:
    """Item indices per shard: item ``i`` goes to shard ``i % shards``.

    The strided assignment balances heavy-tailed work lists (neighbouring
    items tend to cost alike) and is a pure function of ``(count, shards)``.
    """
    shards = max(shards, 1)
    return [list(range(shard, count, shards)) for shard in range(shards)]


def _maybe_activate(runtime: RuntimeContext):
    """Activate ``runtime`` unless it is already the ambient resolution.

    Internal (``adopt=False``): the executor activates on behalf of callers
    who may be pure env-var users.
    """
    if runtime is current():
        return contextlib.nullcontext(runtime)
    return runtime.activate(adopt=False)


def _ship_context(runtime: RuntimeContext) -> RuntimeContext | None:
    """What to put in a worker payload so the worker runs under ``runtime``.

    * the process-default context → ``None`` (forked workers inherit it);
    * derived from the default (shared caches, own config) → a context whose
      caches slot is the :class:`_InheritDefaultCaches` marker, so only the
      config crosses the pipe;
    * a fully explicit context → the context itself (config + caches; cache
      entries are filtered best-effort during pickling).
    """
    if runtime is default_context():
        return None
    if runtime.caches is default_context().caches:
        marker = RuntimeContext(runtime.config, caches=_InheritDefaultCaches)  # type: ignore[arg-type]
        return marker
    return runtime


def _worker_context(shipped: RuntimeContext | None) -> RuntimeContext:
    """Rebuild the worker-side context from a shipped payload (process edge)."""
    if shipped is None:
        return default_context()
    if shipped.caches is _InheritDefaultCaches:
        return RuntimeContext(shipped.config, caches=default_context().caches)
    return shipped


def _run_shard(
    payload: tuple[Callable, list, RuntimeContext | None],
    progress: Callable[[int], None] | None = None,
) -> ShardOutcome:
    """Worker body: run one shard's items under the caller's context.

    The worker forked with a copy of the parent's caches, so only entries
    *added* while running this shard are exported — re-shipping the inherited
    ones would be wasted pickling (the parent's merge skips present keys
    anyway).  ``progress`` (supervised workers: the heartbeat sender) is
    called with the count of completed items after each one.
    """
    fn, items, shipped = payload
    runtime = _worker_context(shipped)
    with _maybe_activate(runtime):
        inject(SITE_SHARD_ENTRY, runtime=runtime)
        before = runtime.caches.key_snapshots()
        results = []
        for done, item in enumerate(items, start=1):
            inject(SITE_ITEM_EVAL, runtime=runtime)
            results.append(fn(item))
            if progress is not None:
                progress(done)
        entries: dict[str, dict] = {}
        if runtime.config.eval_cache:
            entries = runtime.caches.export_delta(before)
    return ShardOutcome(results=results, cache_entries=entries)


# ---------------------------------------------------------------------------
# Supervised shard execution
# ---------------------------------------------------------------------------

#: backoff before re-forking a failed shard: base * 2^(attempt-1), capped.
_BACKOFF_BASE_SECONDS = 0.05
_BACKOFF_CAP_SECONDS = 2.0
#: minimum spacing between a worker's heartbeat messages.
_HEARTBEAT_INTERVAL_SECONDS = 0.2
#: upper bound on one supervisor poll, so retry schedules and timeouts are
#: honored promptly even while pipes are quiet.
_POLL_CAP_SECONDS = 0.25
#: grace given to `Process.join` after a child was killed or reported EOF.
_JOIN_GRACE_SECONDS = 10.0


@dataclass
class ShardFailure:
    """One failed attempt of one supervised shard worker.

    ``kind`` is one of ``signal`` (killed by a signal), ``exit`` (exited
    nonzero before reporting a result), ``timeout`` (exceeded the per-shard
    wall-clock budget and was killed), ``fault`` (an injected
    :class:`~repro.runtime.faults.FaultInjected`), ``unpicklable-result``
    (the result could not cross the pipe — not retryable) or
    ``spawn-failed`` (the fork itself failed).
    """

    shard: int
    attempt: int
    kind: str
    detail: str
    pid: int | None = None
    exitcode: int | None = None
    signal: int | None = None
    elapsed: float = 0.0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "attempt": self.attempt,
            "kind": self.kind,
            "detail": self.detail,
            "pid": self.pid,
            "exitcode": self.exitcode,
            "signal": self.signal,
            "elapsed": self.elapsed,
        }

    def describe(self) -> str:
        return (
            f"shard {self.shard} attempt {self.attempt} [{self.kind}]: "
            f"{self.detail} ({self.elapsed:.2f}s elapsed)"
        )


def _signal_name(signum: int) -> str:
    try:
        return _signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def _supervised_worker(conn, payload, shard: int, attempt: int) -> None:
    """Child body: hello → heartbeats → exactly one terminal message.

    Terminal messages: ``result`` (the :class:`ShardOutcome`), ``fault``
    (an injected fault surfaced cooperatively), ``unpicklable-result`` (the
    outcome could not be pickled across the pipe) or ``exception`` (a genuine
    ``fn`` failure, shipped for first-class re-raising in the parent).  A
    worker killed by a plan or the OS sends nothing — the parent detects the
    pipe EOF and reads the exit code instead.
    """
    last_beat = time.monotonic()

    def heartbeat(done: int) -> None:
        nonlocal last_beat
        now = time.monotonic()
        if now - last_beat >= _HEARTBEAT_INTERVAL_SECONDS:
            last_beat = now
            _quiet_send(conn, ("progress", done))

    try:
        conn.send(("hello", os.getpid()))
        arm_worker(shard=shard, attempt=attempt)
        outcome = _run_shard(payload, progress=heartbeat)
        try:
            conn.send(("result", outcome))
        except Exception as exc:
            _quiet_send(conn, ("unpicklable-result", f"{type(exc).__name__}: {exc}"))
    except FaultInjected as exc:
        _quiet_send(conn, ("fault", str(exc)))
    except BaseException as exc:
        tb = traceback.format_exc()
        try:
            conn.send(("exception", exc, tb))
        except Exception:
            # The exception object itself would not pickle; the traceback
            # text still lets the parent raise something actionable.
            _quiet_send(conn, ("exception", None, tb))
    finally:
        try:
            conn.close()
        except OSError as exc:
            log.debug("worker pipe close failed: %s", exc)


def _quiet_send(conn, message) -> None:
    try:
        conn.send(message)
    except Exception as exc:
        # The parent may already have reaped us (timeout) or gone away.
        log.debug("worker could not report %r: %s", message[0], exc)


@dataclass
class _ActiveShard:
    """Parent-side tracking state of one live worker attempt."""

    shard: int
    attempt: int
    process: multiprocessing.process.BaseProcess
    conn: multiprocessing.connection.Connection
    started: float
    pid: int | None = None
    items_done: int = 0
    last_heartbeat: float | None = None


def _serial_shard(payload, runtime: RuntimeContext) -> ShardOutcome:
    """The degradation ladder's floor: run one partition in-process.

    No fault injection fires here (the worker sites only arm inside forked
    children), so the fallback always completes — which is what lets the
    executor guarantee a result for every partition under any plan.
    """
    fn, items, _ = payload
    with _maybe_activate(runtime):
        before = runtime.caches.key_snapshots()
        results = [fn(item) for item in items]
        entries: dict[str, dict] = {}
        if runtime.config.eval_cache:
            entries = runtime.caches.export_delta(before)
    return ShardOutcome(results=results, cache_entries=entries)


def _supervise_shards(
    payloads: list, runtime: RuntimeContext, workers: int
) -> tuple[list[ShardOutcome], list[ShardFailure]]:
    """Run every shard payload under supervision; one outcome per payload.

    Dead, hung and crashing workers are retried (identical partition,
    exponential backoff) up to ``config.shard_retries`` times, then the
    partition runs serially in-process — so this function either returns a
    complete outcome list or re-raises a genuine ``fn`` exception.  Every
    failed attempt is returned as a :class:`ShardFailure`.
    """
    config = runtime.config
    timeout = config.shard_timeout if config.shard_timeout > 0 else None
    max_attempts = max(config.shard_retries, 0) + 1
    mp = multiprocessing.get_context("fork")

    outcomes: dict[int, ShardOutcome] = {}
    failures: list[ShardFailure] = []
    attempts = dict.fromkeys(range(len(payloads)), 0)
    #: (ready_at, shard) attempts waiting to launch (retries carry backoff).
    runnable: list[tuple[float, int]] = []
    active: dict[int, _ActiveShard] = {}

    for index, payload in enumerate(payloads):
        if payload[1]:
            runnable.append((0.0, index))
        else:
            outcomes[index] = ShardOutcome()  # empty partition: nothing to fork

    def fall_back(shard: int) -> None:
        log.warning(
            "shard %d: %d attempt(s) exhausted; running its partition serially "
            "in-process", shard, attempts[shard],
        )
        outcomes[shard] = _serial_shard(payloads[shard], runtime)

    def resolve_failure(failure: ShardFailure) -> None:
        failures.append(failure)
        log.warning("%s", failure.describe())
        shard = failure.shard
        if failure.kind == "unpicklable-result":
            # Retrying cannot make the result picklable; go straight to the
            # ladder's floor.
            fall_back(shard)
        elif attempts[shard] >= max_attempts:
            fall_back(shard)
        else:
            delay = min(
                _BACKOFF_BASE_SECONDS * (2 ** (attempts[shard] - 1)),
                _BACKOFF_CAP_SECONDS,
            )
            runnable.append((time.monotonic() + delay, shard))

    def finish(entry: _ActiveShard) -> None:
        try:
            entry.conn.close()
        except OSError as exc:
            log.debug("supervisor pipe close failed: %s", exc)
        entry.process.join(_JOIN_GRACE_SECONDS)

    def reap_death(entry: _ActiveShard) -> None:
        """Pipe EOF without a terminal message: the worker died."""
        del active[entry.shard]
        entry.process.join(_JOIN_GRACE_SECONDS)
        try:
            entry.conn.close()
        except OSError as exc:
            log.debug("supervisor pipe close failed: %s", exc)
        elapsed = time.monotonic() - entry.started
        code = entry.process.exitcode
        if code is not None and code < 0:
            resolve_failure(ShardFailure(
                shard=entry.shard, attempt=entry.attempt, kind="signal",
                detail=f"worker pid {entry.pid} killed by {_signal_name(-code)}",
                pid=entry.pid, signal=-code, elapsed=round(elapsed, 3),
            ))
        else:
            resolve_failure(ShardFailure(
                shard=entry.shard, attempt=entry.attempt, kind="exit",
                detail=(
                    f"worker pid {entry.pid} exited with code {code} "
                    "before reporting a result"
                ),
                pid=entry.pid, exitcode=code, elapsed=round(elapsed, 3),
            ))

    def reap_timeout(entry: _ActiveShard) -> None:
        del active[entry.shard]
        entry.process.kill()
        entry.process.join(_JOIN_GRACE_SECONDS)
        try:
            entry.conn.close()
        except OSError as exc:
            log.debug("supervisor pipe close failed: %s", exc)
        elapsed = time.monotonic() - entry.started
        if entry.last_heartbeat is None:
            beat = "no heartbeat received"
        else:
            beat = (
                f"last heartbeat {time.monotonic() - entry.last_heartbeat:.1f}s "
                f"ago, {entry.items_done} item(s) done"
            )
        resolve_failure(ShardFailure(
            shard=entry.shard, attempt=entry.attempt, kind="timeout",
            detail=(
                f"worker pid {entry.pid} exceeded the {timeout:.1f}s shard "
                f"timeout and was killed ({beat})"
            ),
            pid=entry.pid, signal=int(_signal.SIGKILL), elapsed=round(elapsed, 3),
        ))

    def drain(entry: _ActiveShard) -> None:
        """Consume every queued message from one ready pipe."""
        while entry.shard in active:
            try:
                if not entry.conn.poll():
                    return
                message = entry.conn.recv()
            except Exception:
                # EOF (or a frame torn by a mid-send kill): the worker died.
                reap_death(entry)
                return
            tag = message[0]
            if tag == "hello":
                entry.pid = message[1]
            elif tag == "progress":
                entry.items_done = message[1]
                entry.last_heartbeat = time.monotonic()
            elif tag == "result":
                outcomes[entry.shard] = message[1]
                del active[entry.shard]
                finish(entry)
            elif tag == "fault":
                del active[entry.shard]
                finish(entry)
                resolve_failure(ShardFailure(
                    shard=entry.shard, attempt=entry.attempt, kind="fault",
                    detail=f"worker pid {entry.pid} surfaced an injected fault: {message[1]}",
                    pid=entry.pid,
                    elapsed=round(time.monotonic() - entry.started, 3),
                ))
            elif tag == "unpicklable-result":
                del active[entry.shard]
                finish(entry)
                resolve_failure(ShardFailure(
                    shard=entry.shard, attempt=entry.attempt,
                    kind="unpicklable-result",
                    detail=(
                        "worker result could not cross the process boundary: "
                        f"{message[1]}"
                    ),
                    pid=entry.pid,
                    elapsed=round(time.monotonic() - entry.started, 3),
                ))
            else:  # "exception": a genuine fn failure — propagate first-class.
                del active[entry.shard]
                finish(entry)
                exc, tb = message[1], message[2]
                if exc is not None:
                    raise exc
                raise RuntimeError(
                    f"shard {entry.shard} worker failed:\n{tb}"
                )

    try:
        while len(outcomes) < len(payloads):
            now = time.monotonic()
            for item in sorted(runnable):
                if len(active) >= workers:
                    break
                ready_at, shard = item
                if ready_at > now:
                    break  # sorted: everything later is also not due
                runnable.remove(item)
                attempts[shard] += 1
                try:
                    parent_conn, child_conn = mp.Pipe(duplex=False)
                    process = mp.Process(
                        target=_supervised_worker,
                        args=(child_conn, payloads[shard], shard, attempts[shard]),
                        daemon=True,
                    )
                    process.start()
                    child_conn.close()  # parent's copy; EOF now tracks the child
                except OSError as exc:
                    resolve_failure(ShardFailure(
                        shard=shard, attempt=attempts[shard], kind="spawn-failed",
                        detail=f"worker process failed to start: {exc}",
                    ))
                    continue
                active[shard] = _ActiveShard(
                    shard=shard, attempt=attempts[shard], process=process,
                    conn=parent_conn, started=time.monotonic(), pid=process.pid,
                )
            if not active:
                if runnable:
                    pause = min(ready_at for ready_at, _ in runnable) - time.monotonic()
                    if pause > 0:
                        time.sleep(min(pause, _POLL_CAP_SECONDS))
                continue
            step = _POLL_CAP_SECONDS
            if timeout is not None:
                soonest = min(entry.started + timeout for entry in active.values())
                step = min(step, soonest - time.monotonic())
            if runnable:
                step = min(step, min(r for r, _ in runnable) - time.monotonic())
            ready = multiprocessing.connection.wait(
                [entry.conn for entry in active.values()], timeout=max(step, 0.0)
            )
            by_conn = {id(entry.conn): entry for entry in active.values()}
            for conn in ready:
                entry = by_conn.get(id(conn))
                if entry is not None and entry.shard in active:
                    drain(entry)
            if timeout is not None:
                now = time.monotonic()
                for entry in list(active.values()):
                    if now - entry.started >= timeout:
                        reap_timeout(entry)
    except BaseException:
        # A genuine work exception (or an interrupt): take the remaining
        # children down with us, exactly as the pool executor did.
        for entry in list(active.values()):
            try:
                entry.process.kill()
                entry.process.join(_JOIN_GRACE_SECONDS)
                entry.conn.close()
            except OSError as exc:
                log.debug("supervisor cleanup failed for shard %d: %s", entry.shard, exc)
        raise
    return [outcomes[index] for index in range(len(payloads))], failures


def merge_shard_caches(
    outcomes: Sequence[ShardOutcome], runtime: RuntimeContext | None = None
) -> dict[str, int]:
    """Merge worker cache deltas into the parent context, in shard order.

    Returns entries added per cache.  Already-present keys are kept (the
    parent's value is at least as fresh), mirroring snapshot loading.
    """
    caches = (runtime if runtime is not None else current()).caches
    added: dict[str, int] = {}
    for outcome in outcomes:
        for name, count in caches.merge_delta(outcome.cache_entries).items():
            added[name] = added.get(name, 0) + count
    return added


def _live_refresh(runtime: RuntimeContext) -> None:
    """Absorb entries other processes published to the shared store.

    Best-effort and lock-free (:meth:`SharedCacheStore.read_new_entries`):
    a torn tail or a store mid-compaction just means fewer entries this wave.
    Extra warmth can never change a result — every cached value is a pure
    function of its key — so live refresh preserves serial equivalence.
    """
    try:
        added = runtime.caches.merge_delta(runtime.shared_store.read_new_entries())
    except Exception as exc:
        log.warning("live cache refresh failed (%s); continuing with local warmth", exc)
        return
    if any(added.values()):
        log.info(
            "live cache refresh: %s",
            ", ".join(f"{name}+{count}" for name, count in sorted(added.items())),
        )


def _live_publish(runtime: RuntimeContext, deltas: Sequence[dict]) -> None:
    """Publish this wave's fresh cache entries to the shared store.

    Plan entries stay in memory (they are cheap to recompile and are not part
    of the persisted store format); a held lock or write failure is logged
    and skipped — live sync is an optimisation, never a correctness gate.
    """
    combined: dict[str, dict] = {}
    for delta in deltas:
        for name, entries in delta.items():
            if name == "plan":
                continue
            combined.setdefault(name, {}).update(entries)
    if not any(combined.values()):
        return
    cap = runtime.config.cache_max_entries
    try:
        status = runtime.shared_store.publish(
            combined, max_entries=cap if cap > 0 else None
        )
    except Exception as exc:
        log.warning("live cache publish failed (%s); entries stay process-local", exc)
        return
    if not status.ok:
        log.warning("live cache publish skipped: %s", status.summary())


def sharded_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    shards: int | None = None,
    max_workers: int | None = None,
    runtime: RuntimeContext | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` executed across shard worker processes.

    ``shards`` defaults to the context's ``RuntimeConfig.shards``; ``runtime``
    defaults to the ambient context (:func:`repro.runtime.current`).  Results
    come back in input order and each worker's freshly cached evaluations are
    merged into the context's caches (shard order), so a sharded run leaves
    the parent process exactly as warm as the serial run would have.

    ``max_workers`` bounds the live worker processes (default: the machine's
    core count, floored at 2 so a requested shard count still forks — and is
    still supervised — on a single-core box).  It changes scheduling only —
    the shard partition, and therefore every result, is a pure function of
    ``shards``.  An explicit ``max_workers=1`` opts out of forking entirely
    (the serial path).

    With ``RuntimeConfig.cache_live_sync`` on, every map additionally syncs
    through the context's shared cache store at its wave boundaries: new
    store entries are absorbed before the fan-out and this wave's fresh
    entries published after the merge, so N concurrent processes on one box
    share warmth live instead of only at load/exit.  Both directions are
    best-effort and value-preserving, so results stay bit-identical.
    """
    work = list(items)
    context_given = runtime is not None
    runtime = runtime if runtime is not None else current()
    count = shards if shards is not None else max(runtime.config.shards, 1)
    count = max(count, 1)
    workers = max_workers if max_workers is not None else max(os.cpu_count() or 1, 2)
    workers = min(count, max(workers, 1), len(work))
    live = runtime.config.cache_live_sync and runtime.config.eval_cache
    if live and work:
        _live_refresh(runtime)

    def serial() -> list[R]:
        if not live:
            return _serial_plain()
        before = runtime.caches.key_snapshots()
        results = _serial_plain()
        _live_publish(runtime, [runtime.caches.export_delta(before)])
        return results

    def _serial_plain() -> list[R]:
        if context_given:
            with _maybe_activate(runtime):
                return [fn(item) for item in work]
        return [fn(item) for item in work]

    if count <= 1 or len(work) <= 1 or workers <= 1:
        return serial()
    partitions = shard_partition(len(work), count)
    shipped = _ship_context(runtime)
    payloads = [
        (fn, [work[index] for index in partition], shipped) for partition in partitions
    ]
    try:
        # Setup-only guard, like parallel_map: prove one full payload (work
        # items, fn and any shipped context) can cross the process boundary
        # and that fork exists.  Every payload shares fn and the shipped
        # context, and partition 0 holds work items, so one probe covers the
        # lot.  Errors raised by ``fn`` during the map are genuine work
        # failures and propagate first-class.
        pickle.dumps(payloads[0])
        multiprocessing.get_context("fork")
    except Exception as exc:  # unpicklable payloads, missing fork, ...
        log.warning("sharded execution unavailable (%s); falling back to serial", exc)
        return serial()
    outcomes, failures = _supervise_shards(payloads, runtime=runtime, workers=workers)
    if failures:
        runtime.record_shard_failures(failures)
        log.warning(
            "sharded execution degraded (results unaffected): %s",
            "; ".join(failure.describe() for failure in failures),
        )
    merged = merge_shard_caches(outcomes, runtime=runtime)
    if merged:
        log.info(
            "merged shard caches: %s",
            ", ".join(f"{name}+{added}" for name, added in sorted(merged.items())),
        )
    if live:
        _live_publish(runtime, [outcome.cache_entries for outcome in outcomes])
    results: list = [None] * len(work)
    for partition, outcome in zip(partitions, outcomes):
        for index, result in zip(partition, outcome.results):
            results[index] = result
    return results


# ---------------------------------------------------------------------------
# MCTS reward waves
# ---------------------------------------------------------------------------


def _reward_worker(
    reward_fn: Callable, context: Hashable, item: tuple[str, object]
) -> float:
    """Evaluate one pending (signature, operator) pair inside a shard."""
    signature, operator = item
    return current().cached_reward(context, signature, lambda: float(reward_fn(operator)))


def sharded_reward_evaluator(
    reward_fn: Callable,
    context: Hashable,
    shards: int | None = None,
    max_workers: int | None = None,
    runtime: RuntimeContext | None = None,
) -> Callable[[Sequence[tuple[str, object]]], dict[str, float]]:
    """A batched reward evaluator for :meth:`repro.core.mcts.MCTS.run`.

    Each MCTS wave's pending ``(signature, operator)`` pairs are fanned out
    with :func:`sharded_map` and the resulting rewards returned as a mapping;
    the per-worker reward caches (and any compile/plan entries the proxy
    training produced) are merged back into the parent between waves.
    ``reward_fn`` and the operators must be picklable — if not, the map falls
    back to in-process evaluation, which is result-identical.
    """

    def evaluate(pending: Sequence[tuple[str, object]]) -> dict[str, float]:
        worker = functools.partial(_reward_worker, reward_fn, context)
        values = sharded_map(
            worker, list(pending), shards=shards, max_workers=max_workers, runtime=runtime
        )
        return {signature: value for (signature, _), value in zip(pending, values)}

    return evaluate
