"""Sharded search execution with a deterministic merge (the scaling layer).

MCTS reward waves, candidate evaluation and the experiment modules all reduce
to the same shape of work: a list of *pure* work items (each a function of a
small picklable description — an operator to proxy-train, a candidate to
tune) whose results must come back in input order.  :func:`sharded_map` is
the one primitive that fans such a list out over ``REPRO_SEARCH_SHARDS``
worker processes:

* **Deterministic partition** — item ``i`` always belongs to shard
  ``i % shards``.  The partition depends on the shard count only, never on
  worker availability, machine load or cache warmth.
* **Deterministic merge** — results are reassembled in input order, and each
  worker's freshly computed cache entries (reward / baseline / compile /
  plan) are merged back into the parent's process-wide caches in shard
  order.  Because every cached value is a pure function of its key, the merge
  order cannot change any value — fixing it anyway makes the executor's
  behaviour reproducible down to cache-iteration order.
* **Serial equivalence** — with ``shards <= 1``, a single item, or no spare
  cores, the map degrades to the plain in-process loop.  Results are
  bit-identical either way: work items must not depend on process-global
  mutable state, which is why the evaluators reseed the substrate's
  parameter-initialization RNG per item (see
  :meth:`repro.search.evaluator.AccuracyEvaluator._train`).

Worker processes are forked (never spawned), so they inherit the parent's
warm caches for free; the number of live workers is additionally capped by
``os.cpu_count()`` — on a single-core machine a sharded run executes the
serial path and pays zero fork overhead, while the *results* stay a pure
function of the shard knob.  Any failure to fork or pickle falls back to the
serial map, so callers never handle parallelism errors.

:func:`sharded_reward_evaluator` adapts the primitive to the batched MCTS
frontier (:meth:`repro.core.mcts.MCTS.run`'s ``evaluate_batch`` hook): one
wave of pending ``(signature, operator)`` pairs in, a reward mapping out.
"""

from __future__ import annotations

import functools
import logging
import multiprocessing
import multiprocessing.pool
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Sequence, TypeVar

from repro.search.cache import (
    KeyedCache,
    baseline_cache,
    cached_reward,
    caches_enabled,
    compile_cache,
    evaluation_processes,
    plan_cache,
    reward_cache,
    search_shards,
)

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


def _mergeable_caches() -> dict[str, KeyedCache]:
    """The caches whose worker-side entries are worth shipping back.

    Rewards and baselines are the expensive ones (proxy training); compile
    entries save re-tuning; plans are cheap to rebuild but cheap to ship, so
    merging them saves the recompile on the next wave.
    """
    return {
        "reward": reward_cache(),
        "baseline": baseline_cache(),
        "compile": compile_cache(),
        "plan": plan_cache(),
    }


@dataclass
class ShardOutcome:
    """What one shard worker sends back: its results plus its cache delta."""

    results: list = field(default_factory=list)
    cache_entries: dict[str, dict] = field(default_factory=dict)


def warn_processes_ignored(shards: int, processes: int | None = None) -> None:
    """Warn when sharded execution supersedes a requested process fan-out.

    The older ``processes`` fan-out (``REPRO_EVAL_PROCESSES`` / explicit
    argument) and sharding are mutually exclusive at a call site: sharding
    wins.  Callers that take both knobs use this so the losing one is never
    silently dead — whether it came from the argument or the environment.
    """
    effective = processes if processes is not None else evaluation_processes()
    if effective > 1:
        log.warning(
            "sharded execution (shards=%d) takes precedence: ignoring processes=%d",
            shards, effective,
        )


def shard_partition(count: int, shards: int) -> list[list[int]]:
    """Item indices per shard: item ``i`` goes to shard ``i % shards``.

    The strided assignment balances heavy-tailed work lists (neighbouring
    items tend to cost alike) and is a pure function of ``(count, shards)``.
    """
    shards = max(shards, 1)
    return [list(range(shard, count, shards)) for shard in range(shards)]


def _picklable_entries(cache_name: str, entries: Mapping[Hashable, object]) -> dict:
    """Drop entries that cannot cross the process boundary (best-effort)."""
    picklable: dict[Hashable, object] = {}
    for key, value in entries.items():
        try:
            pickle.dumps((key, value))
        except Exception as exc:
            log.debug("not shipping %s-cache entry %r back to parent: %s", cache_name, key, exc)
        else:
            picklable[key] = value
    return picklable


def _run_shard(payload: tuple[Callable, list]) -> ShardOutcome:
    """Worker body: run one shard's items and capture the cache delta.

    The worker forked with a copy of the parent's caches, so only entries
    *added* while running this shard are exported — re-shipping the inherited
    ones would be wasted pickling (the parent's merge skips present keys
    anyway).
    """
    fn, items = payload
    before = {name: cache.key_snapshot() for name, cache in _mergeable_caches().items()}
    results = [fn(item) for item in items]
    entries: dict[str, dict] = {}
    if caches_enabled():
        for name, cache in _mergeable_caches().items():
            fresh = {
                key: value
                for key, value in cache.export_entries().items()
                if key not in before[name]
            }
            if fresh:
                entries[name] = _picklable_entries(name, fresh)
    return ShardOutcome(results=results, cache_entries=entries)


def merge_shard_caches(outcomes: Sequence[ShardOutcome]) -> dict[str, int]:
    """Merge worker cache deltas into the parent, in shard order.

    Returns entries added per cache.  Already-present keys are kept (the
    parent's value is at least as fresh), mirroring :func:`load_caches`.
    """
    added: dict[str, int] = {}
    caches = _mergeable_caches()
    for outcome in outcomes:
        for name, entries in outcome.cache_entries.items():
            cache = caches.get(name)
            if cache is not None and entries:
                added[name] = added.get(name, 0) + cache.merge_entries(entries)
    return added


def sharded_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    shards: int | None = None,
    max_workers: int | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` executed across shard worker processes.

    ``shards`` defaults to the ``REPRO_SEARCH_SHARDS`` knob.  Results come
    back in input order and each worker's freshly cached evaluations are
    merged into the parent's caches (shard order), so a sharded run leaves
    the parent process exactly as warm as the serial run would have.

    ``max_workers`` bounds the live worker processes (default: the machine's
    core count).  It changes scheduling only — the shard partition, and
    therefore every result, is a pure function of ``shards``.
    """
    work = list(items)
    count = shards if shards is not None else search_shards()
    count = max(count, 1)
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = min(count, max(workers, 1), len(work))
    if count <= 1 or len(work) <= 1 or workers <= 1:
        return [fn(item) for item in work]
    partitions = shard_partition(len(work), count)
    payloads = [(fn, [work[index] for index in partition]) for partition in partitions]
    try:
        # Setup-only guard, like parallel_map: prove the payload can cross the
        # process boundary and that fork exists.  Errors raised by ``fn``
        # during the map are genuine work failures and propagate first-class.
        pickle.dumps(fn)
        pickle.dumps(work)
        context = multiprocessing.get_context("fork")
        pool = context.Pool(workers)
    except Exception as exc:  # unpicklable payloads, missing fork, ...
        log.warning("sharded execution unavailable (%s); falling back to serial", exc)
        return [fn(item) for item in work]
    try:
        with pool:
            outcomes = pool.map(_run_shard, payloads)
    except multiprocessing.pool.MaybeEncodingError as exc:
        # Results (not payloads) failed to cross back — parallelism is not
        # possible for this fn, so the serial map is the correct degradation;
        # exceptions raised by ``fn`` itself re-raise as themselves above.
        log.warning("sharded results not picklable (%s); falling back to serial", exc)
        return [fn(item) for item in work]
    merged = merge_shard_caches(outcomes)
    if merged:
        log.info(
            "merged shard caches: %s",
            ", ".join(f"{name}+{added}" for name, added in sorted(merged.items())),
        )
    results: list = [None] * len(work)
    for partition, outcome in zip(partitions, outcomes):
        for index, result in zip(partition, outcome.results):
            results[index] = result
    return results


# ---------------------------------------------------------------------------
# MCTS reward waves
# ---------------------------------------------------------------------------


def _reward_worker(
    reward_fn: Callable, context: Hashable, item: tuple[str, object]
) -> float:
    """Evaluate one pending (signature, operator) pair inside a shard."""
    signature, operator = item
    return cached_reward(context, signature, lambda: float(reward_fn(operator)))


def sharded_reward_evaluator(
    reward_fn: Callable,
    context: Hashable,
    shards: int | None = None,
    max_workers: int | None = None,
) -> Callable[[Sequence[tuple[str, object]]], dict[str, float]]:
    """A batched reward evaluator for :meth:`repro.core.mcts.MCTS.run`.

    Each MCTS wave's pending ``(signature, operator)`` pairs are fanned out
    with :func:`sharded_map` and the resulting rewards returned as a mapping;
    the per-worker reward caches (and any compile/plan entries the proxy
    training produced) are merged back into the parent between waves.
    ``reward_fn`` and the operators must be picklable — if not, the map falls
    back to in-process evaluation, which is result-identical.
    """

    def evaluate(pending: Sequence[tuple[str, object]]) -> dict[str, float]:
        worker = functools.partial(_reward_worker, reward_fn, context)
        values = sharded_map(worker, list(pending), shards=shards, max_workers=max_workers)
        return {signature: value for (signature, _), value in zip(pending, values)}

    return evaluate
