"""Sharded search execution with a deterministic merge (the scaling layer).

MCTS reward waves, candidate evaluation and the experiment modules all reduce
to the same shape of work: a list of *pure* work items (each a function of a
small picklable description — an operator to proxy-train, a candidate to
tune) whose results must come back in input order.  :func:`sharded_map` is
the one primitive that fans such a list out over ``RuntimeConfig.shards``
worker processes:

* **Deterministic partition** — item ``i`` always belongs to shard
  ``i % shards``.  The partition depends on the shard count only, never on
  worker availability, machine load or cache warmth.
* **Deterministic merge** — results are reassembled in input order, and each
  worker's freshly computed cache entries (reward / baseline / compile /
  plan) are merged back into the parent context's caches in shard order.
  Because every cached value is a pure function of its key, the merge order
  cannot change any value — fixing it anyway makes the executor's behaviour
  reproducible down to cache-iteration order.
* **Context bootstrap** — each worker runs under the same
  :class:`~repro.runtime.RuntimeContext` as the caller: the ambient default
  context is inherited through fork, while an explicit context is pickled
  into the worker and activated there (the worker-side process edge),
  replacing the old implicit environment-variable inheritance.
* **Serial equivalence** — with ``shards <= 1``, a single item, or no spare
  cores, the map degrades to the plain in-process loop.  Results are
  bit-identical either way: work items must not depend on process-global
  mutable state, which is why the evaluators reseed the substrate's
  parameter-initialization RNG per item (see
  :meth:`repro.search.evaluator.AccuracyEvaluator._train`).

Worker processes are forked (never spawned), so they inherit the parent's
warm caches for free; the number of live workers is additionally capped by
``os.cpu_count()`` — on a single-core machine a sharded run executes the
serial path and pays zero fork overhead, while the *results* stay a pure
function of the shard knob.  Any failure to fork or pickle falls back to the
serial map, so callers never handle parallelism errors.

:func:`sharded_reward_evaluator` adapts the primitive to the batched MCTS
frontier (:meth:`repro.core.mcts.MCTS.run`'s ``evaluate_batch`` hook): one
wave of pending ``(signature, operator)`` pairs in, a reward mapping out.
"""

from __future__ import annotations

import contextlib
import functools
import logging
import multiprocessing
import multiprocessing.pool
import os
import pickle
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

from repro.runtime import RuntimeContext, current, default_context
from repro.search.cache import evaluation_processes

log = logging.getLogger(__name__)

T = TypeVar("T")
R = TypeVar("R")


class _InheritDefaultCaches:
    """Pickle-by-reference marker: "use the worker's inherited default caches".

    A context *derived* from the default one (same cache set, different
    config — what the experiment runner builds per run) must not ship a copy
    of the whole warm cache set to every worker: the fork already carried it.
    The class object itself is used as the marker because classes pickle by
    qualified name, so identity survives the process boundary.
    """


@dataclass
class ShardOutcome:
    """What one shard worker sends back: its results plus its cache delta."""

    results: list = field(default_factory=list)
    cache_entries: dict[str, dict] = field(default_factory=dict)


def warn_processes_ignored(
    shards: int, processes: int | None = None, runtime: RuntimeContext | None = None
) -> None:
    """Warn when sharded execution supersedes a requested process fan-out.

    The older ``processes`` fan-out (``RuntimeConfig.eval_processes`` /
    explicit argument) and sharding are mutually exclusive at a call site:
    sharding wins.  Callers that take both knobs use this so the losing one
    is never silently dead — whether it came from the argument or the config.
    """
    if processes is not None:
        effective = processes
    elif runtime is not None:
        effective = max(runtime.config.eval_processes, 1)
    else:
        effective = evaluation_processes()
    if effective > 1:
        log.warning(
            "sharded execution (shards=%d) takes precedence: ignoring processes=%d",
            shards, effective,
        )


def shard_partition(count: int, shards: int) -> list[list[int]]:
    """Item indices per shard: item ``i`` goes to shard ``i % shards``.

    The strided assignment balances heavy-tailed work lists (neighbouring
    items tend to cost alike) and is a pure function of ``(count, shards)``.
    """
    shards = max(shards, 1)
    return [list(range(shard, count, shards)) for shard in range(shards)]


def _maybe_activate(runtime: RuntimeContext):
    """Activate ``runtime`` unless it is already the ambient resolution.

    Internal (``adopt=False``): the executor activates on behalf of callers
    who may be pure env-var users.
    """
    if runtime is current():
        return contextlib.nullcontext(runtime)
    return runtime.activate(adopt=False)


def _ship_context(runtime: RuntimeContext) -> RuntimeContext | None:
    """What to put in a worker payload so the worker runs under ``runtime``.

    * the process-default context → ``None`` (forked workers inherit it);
    * derived from the default (shared caches, own config) → a context whose
      caches slot is the :class:`_InheritDefaultCaches` marker, so only the
      config crosses the pipe;
    * a fully explicit context → the context itself (config + caches; cache
      entries are filtered best-effort during pickling).
    """
    if runtime is default_context():
        return None
    if runtime.caches is default_context().caches:
        marker = RuntimeContext(runtime.config, caches=_InheritDefaultCaches)  # type: ignore[arg-type]
        return marker
    return runtime


def _worker_context(shipped: RuntimeContext | None) -> RuntimeContext:
    """Rebuild the worker-side context from a shipped payload (process edge)."""
    if shipped is None:
        return default_context()
    if shipped.caches is _InheritDefaultCaches:
        return RuntimeContext(shipped.config, caches=default_context().caches)
    return shipped


def _run_shard(payload: tuple[Callable, list, RuntimeContext | None]) -> ShardOutcome:
    """Worker body: run one shard's items under the caller's context.

    The worker forked with a copy of the parent's caches, so only entries
    *added* while running this shard are exported — re-shipping the inherited
    ones would be wasted pickling (the parent's merge skips present keys
    anyway).
    """
    fn, items, shipped = payload
    runtime = _worker_context(shipped)
    with _maybe_activate(runtime):
        before = runtime.caches.key_snapshots()
        results = [fn(item) for item in items]
        entries: dict[str, dict] = {}
        if runtime.config.eval_cache:
            entries = runtime.caches.export_delta(before)
    return ShardOutcome(results=results, cache_entries=entries)


def merge_shard_caches(
    outcomes: Sequence[ShardOutcome], runtime: RuntimeContext | None = None
) -> dict[str, int]:
    """Merge worker cache deltas into the parent context, in shard order.

    Returns entries added per cache.  Already-present keys are kept (the
    parent's value is at least as fresh), mirroring snapshot loading.
    """
    caches = (runtime if runtime is not None else current()).caches
    added: dict[str, int] = {}
    for outcome in outcomes:
        for name, count in caches.merge_delta(outcome.cache_entries).items():
            added[name] = added.get(name, 0) + count
    return added


def _live_refresh(runtime: RuntimeContext) -> None:
    """Absorb entries other processes published to the shared store.

    Best-effort and lock-free (:meth:`SharedCacheStore.read_new_entries`):
    a torn tail or a store mid-compaction just means fewer entries this wave.
    Extra warmth can never change a result — every cached value is a pure
    function of its key — so live refresh preserves serial equivalence.
    """
    try:
        added = runtime.caches.merge_delta(runtime.shared_store.read_new_entries())
    except Exception as exc:
        log.warning("live cache refresh failed (%s); continuing with local warmth", exc)
        return
    if any(added.values()):
        log.info(
            "live cache refresh: %s",
            ", ".join(f"{name}+{count}" for name, count in sorted(added.items())),
        )


def _live_publish(runtime: RuntimeContext, deltas: Sequence[dict]) -> None:
    """Publish this wave's fresh cache entries to the shared store.

    Plan entries stay in memory (they are cheap to recompile and are not part
    of the persisted store format); a held lock or write failure is logged
    and skipped — live sync is an optimisation, never a correctness gate.
    """
    combined: dict[str, dict] = {}
    for delta in deltas:
        for name, entries in delta.items():
            if name == "plan":
                continue
            combined.setdefault(name, {}).update(entries)
    if not any(combined.values()):
        return
    cap = runtime.config.cache_max_entries
    try:
        status = runtime.shared_store.publish(
            combined, max_entries=cap if cap > 0 else None
        )
    except Exception as exc:
        log.warning("live cache publish failed (%s); entries stay process-local", exc)
        return
    if not status.ok:
        log.warning("live cache publish skipped: %s", status.summary())


def sharded_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    shards: int | None = None,
    max_workers: int | None = None,
    runtime: RuntimeContext | None = None,
) -> list[R]:
    """``[fn(x) for x in items]`` executed across shard worker processes.

    ``shards`` defaults to the context's ``RuntimeConfig.shards``; ``runtime``
    defaults to the ambient context (:func:`repro.runtime.current`).  Results
    come back in input order and each worker's freshly cached evaluations are
    merged into the context's caches (shard order), so a sharded run leaves
    the parent process exactly as warm as the serial run would have.

    ``max_workers`` bounds the live worker processes (default: the machine's
    core count).  It changes scheduling only — the shard partition, and
    therefore every result, is a pure function of ``shards``.

    With ``RuntimeConfig.cache_live_sync`` on, every map additionally syncs
    through the context's shared cache store at its wave boundaries: new
    store entries are absorbed before the fan-out and this wave's fresh
    entries published after the merge, so N concurrent processes on one box
    share warmth live instead of only at load/exit.  Both directions are
    best-effort and value-preserving, so results stay bit-identical.
    """
    work = list(items)
    context_given = runtime is not None
    runtime = runtime if runtime is not None else current()
    count = shards if shards is not None else max(runtime.config.shards, 1)
    count = max(count, 1)
    workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
    workers = min(count, max(workers, 1), len(work))
    live = runtime.config.cache_live_sync and runtime.config.eval_cache
    if live and work:
        _live_refresh(runtime)

    def serial() -> list[R]:
        if not live:
            return _serial_plain()
        before = runtime.caches.key_snapshots()
        results = _serial_plain()
        _live_publish(runtime, [runtime.caches.export_delta(before)])
        return results

    def _serial_plain() -> list[R]:
        if context_given:
            with _maybe_activate(runtime):
                return [fn(item) for item in work]
        return [fn(item) for item in work]

    if count <= 1 or len(work) <= 1 or workers <= 1:
        return serial()
    partitions = shard_partition(len(work), count)
    shipped = _ship_context(runtime)
    payloads = [
        (fn, [work[index] for index in partition], shipped) for partition in partitions
    ]
    try:
        # Setup-only guard, like parallel_map: prove the payload (work, fn and
        # any shipped context) can cross the process boundary and that fork
        # exists.  Errors raised by ``fn`` during the map are genuine work
        # failures and propagate first-class.
        pickle.dumps(payloads[0])
        pickle.dumps(work)
        mp = multiprocessing.get_context("fork")
        pool = mp.Pool(workers)
    except Exception as exc:  # unpicklable payloads, missing fork, ...
        log.warning("sharded execution unavailable (%s); falling back to serial", exc)
        return serial()
    try:
        with pool:
            outcomes = pool.map(_run_shard, payloads)
    except multiprocessing.pool.MaybeEncodingError as exc:
        # Results (not payloads) failed to cross back — parallelism is not
        # possible for this fn, so the serial map is the correct degradation;
        # exceptions raised by ``fn`` itself re-raise as themselves above.
        log.warning("sharded results not picklable (%s); falling back to serial", exc)
        return serial()
    merged = merge_shard_caches(outcomes, runtime=runtime)
    if merged:
        log.info(
            "merged shard caches: %s",
            ", ".join(f"{name}+{added}" for name, added in sorted(merged.items())),
        )
    if live:
        _live_publish(runtime, [outcome.cache_entries for outcome in outcomes])
    results: list = [None] * len(work)
    for partition, outcome in zip(partitions, outcomes):
        for index, result in zip(partition, outcome.results):
            results[index] = result
    return results


# ---------------------------------------------------------------------------
# MCTS reward waves
# ---------------------------------------------------------------------------


def _reward_worker(
    reward_fn: Callable, context: Hashable, item: tuple[str, object]
) -> float:
    """Evaluate one pending (signature, operator) pair inside a shard."""
    signature, operator = item
    return current().cached_reward(context, signature, lambda: float(reward_fn(operator)))


def sharded_reward_evaluator(
    reward_fn: Callable,
    context: Hashable,
    shards: int | None = None,
    max_workers: int | None = None,
    runtime: RuntimeContext | None = None,
) -> Callable[[Sequence[tuple[str, object]]], dict[str, float]]:
    """A batched reward evaluator for :meth:`repro.core.mcts.MCTS.run`.

    Each MCTS wave's pending ``(signature, operator)`` pairs are fanned out
    with :func:`sharded_map` and the resulting rewards returned as a mapping;
    the per-worker reward caches (and any compile/plan entries the proxy
    training produced) are merged back into the parent between waves.
    ``reward_fn`` and the operators must be picklable — if not, the map falls
    back to in-process evaluation, which is result-identical.
    """

    def evaluate(pending: Sequence[tuple[str, object]]) -> dict[str, float]:
        worker = functools.partial(_reward_worker, reward_fn, context)
        values = sharded_map(
            worker, list(pending), shards=shards, max_workers=max_workers, runtime=runtime
        )
        return {signature: value for (signature, _), value in zip(pending, values)}

    return evaluate
