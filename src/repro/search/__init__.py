"""End-to-end search: operator extraction, substitution, evaluation, session.

This package implements the outer loop of Algorithm 1: extract the operator
slots from a backbone model, synthesize candidate substitutions with MCTS
(using proxy-training accuracy as reward under a FLOPs budget), and evaluate
the surviving candidates' end-to-end latency with the simulated tensor
compiler on each hardware target.
"""

from repro.search.cache import (
    cache_stats,
    cached_baseline,
    cached_reward,
    clear_caches,
    compile_cache,
    parallel_map,
    reward_cache,
    search_shards,
)
from repro.search.parallel import sharded_map, sharded_reward_evaluator
from repro.search.substitution import SynthesizedConv2d, SynthesizedLinear, synthesized_conv_factory
from repro.search.extraction import extract_conv_slots, conv_spec_from_slots, VISION_COEFFICIENTS
from repro.search.evaluator import AccuracyEvaluator, LatencyEvaluator, EvaluationSettings
from repro.search.session import SearchSession, SearchConfig, CandidateResult

__all__ = [
    "SynthesizedConv2d",
    "SynthesizedLinear",
    "synthesized_conv_factory",
    "extract_conv_slots",
    "conv_spec_from_slots",
    "VISION_COEFFICIENTS",
    "AccuracyEvaluator",
    "LatencyEvaluator",
    "EvaluationSettings",
    "SearchSession",
    "SearchConfig",
    "CandidateResult",
    "cache_stats",
    "cached_baseline",
    "cached_reward",
    "clear_caches",
    "compile_cache",
    "parallel_map",
    "reward_cache",
    "search_shards",
    "sharded_map",
    "sharded_reward_evaluator",
]
