"""The end-to-end search session (Algorithm 1, ``Search``).

A :class:`SearchSession` ties everything together for one backbone model:

1. extract the conv slots and build the symbolic operator spec;
2. run MCTS over the primitive space, rewarding candidates by proxy-training
   accuracy under a hard MACs budget;
3. keep the candidates whose accuracy loss is within the margin (the paper
   uses 1%) and evaluate their end-to-end latency on every requested
   (compiler, target) pair;
4. report the Pareto-relevant candidates sorted by latency.

Evaluation work is shared through the process-wide caches in
:mod:`repro.search.cache`: rewards are keyed by the accuracy evaluator's
context (passed to MCTS as ``cache_context``), compilations by the program's
structural key, and one latency evaluator is hoisted per (backend, target)
pair so each baseline compiles exactly once per session.

Both halves of the session shard across worker processes under
``SearchConfig.shards`` (default: the runtime context's ``shards`` field):
MCTS reward waves go through
:func:`repro.search.parallel.sharded_reward_evaluator` and candidate latency
evaluation through :func:`repro.search.parallel.sharded_map`, with worker
caches merged back deterministically — a sharded session's results are
bit-identical to the serial ones.  Candidate latency evaluation can
alternatively fan out through the older ``eval_processes`` fan-out (which
does not merge caches back); the experiment runner and CLI
(:mod:`repro.experiments.runner`, :mod:`repro.cli`) persist the caches
across processes.

A session accepts an explicit :class:`repro.runtime.RuntimeContext`
(``SearchSession(..., runtime=ctx)``); without one it resolves the ambient
context (:func:`repro.runtime.current`), so ``with ctx.activate():`` scopes
a whole session.  Two sessions with different contexts coexist in one
process with fully isolated caches.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.compiler.backends import CompilerBackend, TVMBackend
from repro.compiler.targets import HardwareTarget, MOBILE_CPU
from repro.core.enumeration import EnumerationOptions, default_options_for
from repro.core.mcts import MCTS, MCTSConfig, SampleRecord
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.runtime import RuntimeContext, current
from repro.search.cache import parallel_map
from repro.search.evaluator import AccuracyEvaluator, EvaluationSettings, LatencyEvaluator
from repro.search.parallel import sharded_map, sharded_reward_evaluator, warn_processes_ignored
from repro.search.extraction import (
    VISION_COEFFICIENTS,
    conv_spec_from_slots,
    extract_conv_slots,
    original_macs,
)


@dataclass
class SearchConfig:
    """Hyper-parameters of one search session."""

    max_depth: int = 8
    mcts_iterations: int = 24
    #: MCTS seed; ``None`` inherits the runtime context's ``RuntimeConfig.seed``.
    mcts_seed: int | None = None
    #: hard MACs budget as a multiple of the original convolutions' MACs.
    macs_budget_ratio: float = 1.0
    #: admissible accuracy loss relative to the baseline (the paper uses 1%).
    accuracy_margin: float = 0.01
    #: MCTS frontier width: rollouts proposed per wave before rewards are
    #: applied.  Fixed independently of the shard count so the search
    #: trajectory is a function of the seed alone (shards only split a wave's
    #: evaluations across workers).  ``None`` inherits the runtime context's
    #: ``frontier_width`` field (default 8).
    frontier_width: int | None = None
    #: worker shards for reward waves and candidate evaluation; ``None``
    #: inherits the runtime context's ``shards`` field.
    shards: int | None = None
    #: seed the MCTS root frontier (and the reward cache) from an
    #: ahead-of-time graph library covering the searched spec
    #: (:mod:`repro.library.warmstart`).  ``None`` inherits the runtime
    #: context's ``warm_start`` field (``REPRO_WARM_START``); degrades to a
    #: cold search when no matching library exists.
    warm_start: bool | None = None
    #: name of the library to warm start from; ``None`` auto-discovers by
    #: spec key under the context's library root.
    library_name: str | None = None
    evaluation: EvaluationSettings = field(default_factory=EvaluationSettings)

    def effective_shards(self, runtime: RuntimeContext | None = None) -> int:
        """The shard count this session runs with (config beats context)."""
        if self.shards is not None:
            return max(self.shards, 1)
        context = runtime if runtime is not None else current()
        return max(context.config.shards, 1)

    def effective_frontier_width(self, runtime: RuntimeContext | None = None) -> int:
        """The wave width this session searches with (config beats context)."""
        if self.frontier_width is not None:
            return max(self.frontier_width, 1)
        context = runtime if runtime is not None else current()
        return max(context.config.frontier_width, 1)

    def effective_warm_start(self, runtime: RuntimeContext | None = None) -> bool:
        """Whether this session warm starts (config beats context)."""
        if self.warm_start is not None:
            return self.warm_start
        context = runtime if runtime is not None else current()
        return context.config.warm_start


@dataclass
class CandidateResult:
    """One evaluated candidate: accuracy and per-(backend, target) latencies."""

    operator: SynthesizedOperator
    accuracy: float
    accuracy_loss: float
    macs: int
    parameters: int
    latencies: dict[tuple[str, str], float] = field(default_factory=dict)
    speedups: dict[tuple[str, str], float] = field(default_factory=dict)

    def best_speedup(self) -> float:
        return max(self.speedups.values(), default=0.0)


class SearchSession:
    """Searches substitutions for one backbone model (Algorithm 1)."""

    def __init__(
        self,
        model_builder: Callable,
        config: SearchConfig | None = None,
        backends: Sequence[CompilerBackend] | None = None,
        targets: Sequence[HardwareTarget] | None = None,
        runtime: RuntimeContext | None = None,
    ) -> None:
        #: the runtime context this session evaluates and caches under;
        #: ``None`` resolves the ambient context per call.
        self.runtime = runtime
        self.model_builder = model_builder
        self.config = config or SearchConfig()
        self.backends = list(backends) if backends is not None else [TVMBackend(trials=32)]
        self.targets = list(targets) if targets is not None else [MOBILE_CPU]

        self.slots = extract_conv_slots(
            model_builder,
            image_size=self.config.evaluation.image_size,
            num_classes=self.config.evaluation.num_classes,
        )
        self.spec: OperatorSpec = conv_spec_from_slots(
            self.slots,
            batch=self.config.evaluation.batch_size,
            coefficients=self.config.evaluation.coefficients,
        )
        self.accuracy_evaluator = AccuracyEvaluator(
            model_builder, self.config.evaluation, runtime=runtime
        )
        self.original_macs = original_macs(self.slots, batch=self.config.evaluation.batch_size)
        #: one latency evaluator per (backend, target), created on first use so
        #: the baseline latency is compiled exactly once per pair per session.
        self._latency_evaluators: dict[tuple[str, str], LatencyEvaluator] = {}

    def _rt(self) -> RuntimeContext:
        return self.runtime if self.runtime is not None else current()

    # -- synthesis ----------------------------------------------------------

    def enumeration_options(self) -> EnumerationOptions:
        options = default_options_for(
            self.spec,
            coefficients=VISION_COEFFICIENTS,
            max_depth=self.config.max_depth,
            macs_budget_ratio=self.config.macs_budget_ratio,
            reference_macs=self.original_macs
            // max(len([s for s in self.slots if s.kernel_size == 3 and s.groups == 1]), 1),
        )
        return options

    def run(self, iterations: int | None = None) -> list[CandidateResult]:
        """Run the MCTS search and return accuracy-qualified candidates.

        Reward waves and candidate latency evaluation shard across
        ``SearchConfig.shards`` worker processes (default: the runtime
        context's ``shards`` field); the results are bit-identical to a
        serial run with the same seed.
        """
        options = self.enumeration_options()
        # The bound method (not a lambda) so the reward function can cross
        # the process boundary when reward waves are sharded.
        reward_fn = self.accuracy_evaluator.evaluate
        plan = None
        if self.config.effective_warm_start(self._rt()):
            # Lazy import: repro.library.builder pulls the shard executor,
            # whose module chain imports this one.
            from repro.library.warmstart import plan_warm_start

            plan = plan_warm_start(
                self.spec,
                cache_context=self.accuracy_evaluator._context,
                name=self.config.library_name,
                runtime=self._rt(),
            )
        search = MCTS(
            spec=self.spec,
            options=options,
            reward_fn=reward_fn,
            config=MCTSConfig(
                iterations=iterations if iterations is not None else self.config.mcts_iterations,
                seed=self.config.mcts_seed,
                batch_size=self.config.effective_frontier_width(self._rt()),
                # Share rewards with every search over the same backbone and
                # evaluation settings (the evaluator's cache context).
                cache_context=self.accuracy_evaluator._context,
                root_priority=plan.root_priority if plan is not None else (),
            ),
            runtime=self.runtime,
        )
        shards = self.config.effective_shards(self._rt())
        evaluate_batch = None
        # A runtime carrying a wave_evaluator (the serving layer's coalescer)
        # owns the fan-out: building a per-session sharded evaluator here
        # would bypass it and forfeit cross-request wave coalescing.
        if shards > 1 and getattr(self._rt(), "wave_evaluator", None) is None:
            evaluate_batch = sharded_reward_evaluator(
                reward_fn, self.accuracy_evaluator._context, shards=shards,
                runtime=self.runtime,
            )
        samples = search.run(evaluate_batch=evaluate_batch)
        if plan is not None:
            # Publish this session's proxy-training results back to the
            # library's sidecar so later runs reuse them by signature.
            from repro.library.warmstart import export_rewards

            export_rewards(
                {record.operator.graph.signature(): record.reward for record in samples},
                name=plan.name,
                cache_context=self.accuracy_evaluator._context,
                runtime=self._rt(),
            )
        return self.evaluate_candidates(samples, shards=shards)

    # -- evaluation ----------------------------------------------------------

    def evaluate_candidates(
        self,
        samples: Sequence[SampleRecord],
        processes: int | None = None,
        shards: int | None = None,
    ) -> list[CandidateResult]:
        """Latency-evaluate the accuracy-qualified samples.

        ``shards`` (default: ``SearchConfig.shards``, falling back to the
        runtime context's ``shards`` field) fans the per-candidate evaluation
        out over shard worker processes and merges their compile-cache
        entries back into this context.  ``processes`` (the older
        ``eval_processes`` fan-out) is honoured when sharding is off; its
        workers' caches are discarded.
        """
        baseline = self.accuracy_evaluator.baseline_accuracy()
        qualified = [
            record
            for record in samples
            if baseline - record.reward <= self.config.accuracy_margin
        ]
        # ``partial`` keeps the session on the callable, so it crosses the
        # process boundary once per worker chunk instead of once per record.
        worker = functools.partial(_evaluate_sample, self)
        count = shards if shards is not None else self.config.effective_shards(self._rt())
        if count > 1:
            warn_processes_ignored(count, processes, runtime=self.runtime)
            results = sharded_map(worker, qualified, shards=count, runtime=self.runtime)
        else:
            results = parallel_map(worker, qualified, processes=processes)
        results.sort(key=lambda result: min(result.latencies.values(), default=float("inf")))
        return results

    def _latency_evaluator(self, backend: CompilerBackend, target: HardwareTarget) -> LatencyEvaluator:
        key = (backend.name, target.name)
        evaluator = self._latency_evaluators.get(key)
        if evaluator is None:
            evaluator = LatencyEvaluator(
                slots=self.slots,
                backend=backend,
                target=target,
                batch=1,
                coefficients=self.config.evaluation.coefficients,
                runtime=self.runtime,
            )
            # Hoisted out of the per-candidate loop: the baseline is a property
            # of the (backend, target) pair, so compile it exactly once here.
            evaluator.baseline_latency()
            self._latency_evaluators[key] = evaluator
        return evaluator

    def evaluate_operator(
        self, operator: SynthesizedOperator, accuracy: float | None = None
    ) -> CandidateResult:
        """Latency-evaluate one operator across every (backend, target) pair."""
        if accuracy is None:
            accuracy = self.accuracy_evaluator.evaluate(operator)
        baseline_accuracy = self.accuracy_evaluator.baseline_accuracy()
        binding = dict(self.spec.bindings[0]) if self.spec.bindings else {}
        result = CandidateResult(
            operator=operator,
            accuracy=accuracy,
            accuracy_loss=baseline_accuracy - accuracy,
            macs=operator.macs(binding),
            parameters=operator.parameter_count(binding),
        )
        for backend in self.backends:
            for target in self.targets:
                evaluator = self._latency_evaluator(backend, target)
                latency = evaluator.substituted_latency(operator)
                key = (backend.name, target.name)
                result.latencies[key] = latency
                result.speedups[key] = evaluator.baseline_latency() / max(latency, 1e-12)
        return result


def _evaluate_sample(session: "SearchSession", record: SampleRecord) -> CandidateResult:
    """Module-level worker so the parallel map can pickle it under fork."""
    return session.evaluate_operator(record.operator, accuracy=record.reward)
