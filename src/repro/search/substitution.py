"""Drop-in modules that place a synthesized operator into a backbone model.

The substituted module has the same interface as the layer it replaces
(``Conv2d`` or the QKV ``Linear``): same input/output tensor shapes, with the
model topology and non-linearities untouched (Section 4).  Strided slots are
handled by applying the (stride-1) synthesized operator at full resolution and
average-pooling its output, which preserves the output shape of the original
strided convolution.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.codegen.eager import EagerOperator
from repro.core.library import C_IN, C_OUT, GROUPS, H, K, K1, M, N, OUT_FEATURES, SHRINK, W
from repro.core.operator import SynthesizedOperator
from repro.ir.variables import Variable
from repro.nn.layers import AvgPool2d
from repro.nn.models.common import ConvSlot
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class SynthesizedConv2d(Module):
    """A synthesized operator used as a drop-in replacement for a 3x3 conv.

    The operator is lowered lazily per batch size (the symbolic ``N`` is the
    only binding entry that varies at run time); all instantiations share the
    same weight parameters.
    """

    def __init__(
        self,
        operator: SynthesizedOperator,
        slot: ConvSlot,
        coefficients: Mapping[Variable, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.operator = operator
        self.slot = slot
        self.coefficients = dict(coefficients or {K1: 3, GROUPS: 2, SHRINK: 2})
        self._rng = rng or np.random.default_rng(0)
        self._instances: dict[int, EagerOperator] = {}
        self.pool = AvgPool2d(slot.stride) if slot.stride > 1 else None
        # Materialize the parameters with a canonical batch size of 1 so that
        # optimizers see them before the first forward pass.
        self._prototype = self._instantiate(1)
        self.weights = self._prototype.weights

    def binding_for(self, batch: int) -> dict[Variable, int]:
        binding = {
            N: batch,
            C_IN: self.slot.in_channels,
            C_OUT: self.slot.out_channels,
            H: self.slot.spatial,
            W: self.slot.spatial,
        }
        binding.update(self.coefficients)
        return binding

    def _instantiate(self, batch: int) -> EagerOperator:
        if batch not in self._instances:
            shared = self._instances[1].weights if 1 in self._instances else None
            self._instances[batch] = EagerOperator(
                self.operator, self.binding_for(batch), rng=self._rng, weights=shared
            )
        return self._instances[batch]

    def forward(self, x: Tensor) -> Tensor:
        module = self._instantiate(x.shape[0])
        out = module(x)
        if self.pool is not None:
            out = self.pool(out)
        return out


class SynthesizedLinear(Module):
    """A synthesized operator replacing a dense projection (GPT-2 QKV slots).

    The matmul slot is two-dimensional (``[M, K] -> [M, F]``); inputs of shape
    ``[batch, seq, features]`` are flattened to ``[batch*seq, features]``.
    """

    def __init__(
        self,
        operator: SynthesizedOperator,
        in_features: int,
        out_features: int,
        coefficients: Mapping[Variable, int] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.operator = operator
        self.in_features = in_features
        self.out_features = out_features
        self.coefficients = dict(coefficients or {GROUPS: 2, SHRINK: 2, K1: 3})
        self._rng = rng or np.random.default_rng(0)
        self._instances: dict[int, EagerOperator] = {}
        self._prototype = self._instantiate(1)
        self.weights = self._prototype.weights

    def binding_for(self, rows: int) -> dict[Variable, int]:
        binding = {M: rows, K: self.in_features, OUT_FEATURES: self.out_features}
        binding.update(self.coefficients)
        return binding

    def _instantiate(self, rows: int) -> EagerOperator:
        if rows not in self._instances:
            shared = next(iter(self._instances.values())).weights if self._instances else None
            self._instances[rows] = EagerOperator(
                self.operator, self.binding_for(rows), rng=self._rng, weights=shared
            )
        return self._instances[rows]

    def forward(self, x: Tensor) -> Tensor:
        from repro.nn import functional as F

        original_shape = x.shape
        rows = int(np.prod(original_shape[:-1]))
        flat = F.reshape(x, (rows, original_shape[-1]))
        out = self._instantiate(rows)(flat)
        return F.reshape(out, tuple(original_shape[:-1]) + (self.out_features,))


def synthesized_conv_factory(
    operator: SynthesizedOperator,
    coefficients: Mapping[Variable, int] | None = None,
    substitute_grouped: bool = False,
    seed: int = 0,
):
    """A conv factory substituting ``operator`` into every standard 3x3 slot.

    Grouped / depthwise / 1x1 slots keep their standard convolution (they are
    not substitution targets), matching the paper's setup of replacing the
    standard convolutions only.
    """
    from repro.nn.models.common import default_conv_factory
    from repro.search.extraction import slot_is_substitutable

    rng = np.random.default_rng(seed)

    def factory(slot: ConvSlot) -> Module:
        eligible = slot_is_substitutable(slot) or (
            substitute_grouped and slot.kernel_size == 3 and slot.groups > 1
        )
        if not eligible:
            return default_conv_factory(slot)
        return SynthesizedConv2d(operator, slot, coefficients=coefficients, rng=rng)

    return factory
