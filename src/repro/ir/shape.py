"""Shape specifications for operator inputs and outputs.

A :class:`ShapeSpec` is an ordered list of symbolic :class:`~repro.ir.size.Size`
objects.  Operator synthesis is performed on symbolic shapes (Section 5.4) and
the shapes are only bound to concrete integers at code-generation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.ir.size import Size, SizeError
from repro.ir.variables import Variable


@dataclass(frozen=True)
class ShapeSpec:
    """An ordered tuple of symbolic dimension sizes."""

    sizes: tuple[Size, ...]

    @staticmethod
    def of(dims: Iterable[Size | Variable | int]) -> "ShapeSpec":
        return ShapeSpec(tuple(Size.of(d) for d in dims))

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(Size.of(s) for s in self.sizes))

    def __len__(self) -> int:
        return len(self.sizes)

    def __iter__(self):
        return iter(self.sizes)

    def __getitem__(self, index: int) -> Size:
        return self.sizes[index]

    @property
    def total(self) -> Size:
        """The product of all dimension sizes (the domain of the shape)."""
        return Size.product(self.sizes)

    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for size in self.sizes:
            result.update(size.variables())
        return frozenset(result)

    def evaluate(self, bindings: Mapping[Variable, int] | None = None) -> tuple[int, ...]:
        return tuple(size.evaluate(bindings) for size in self.sizes)

    def numel(self, bindings: Mapping[Variable, int] | None = None) -> int:
        result = 1
        for extent in self.evaluate(bindings):
            result *= extent
        return result

    def same_multiset(self, other: "ShapeSpec") -> bool:
        """Whether the two shapes contain the same sizes up to permutation."""
        return sorted(map(repr, self.sizes)) == sorted(map(repr, other.sizes))

    def __repr__(self) -> str:
        return "[" + ", ".join(repr(size) for size in self.sizes) + "]"


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor with a symbolic shape, e.g. the operator input."""

    name: str
    shape: ShapeSpec

    @staticmethod
    def of(name: str, dims: Sequence[Size | Variable | int]) -> "TensorSpec":
        return TensorSpec(name, ShapeSpec.of(dims))

    def evaluate(self, bindings: Mapping[Variable, int] | None = None) -> tuple[int, ...]:
        return self.shape.evaluate(bindings)

    def __repr__(self) -> str:
        return f"{self.name}{self.shape!r}"


def check_bindings_cover(shape: ShapeSpec, bindings: Mapping[Variable, int]) -> None:
    """Validate that ``bindings`` (plus defaults) make ``shape`` concrete."""
    for size in shape:
        try:
            size.evaluate(bindings)
        except SizeError as exc:
            raise SizeError(f"shape {shape} not concrete under {bindings}: {exc}") from exc
