"""Coordinate expressions and a Halide-style term-rewrite simplifier.

Coordinate expressions index tensors inside an operator's loop nest.  The
paper's primitives are defined by how they transform coordinate expressions
(Table 1); the canonicalization rules of Section 6 are justified by algebraic
identities on these expressions, such as ``(B*i) % (B*C) == B * (i % C)``.

The AST here is intentionally small: iterators, integer constants, addition,
multiplication by a symbolic size, floor division and modulo by a symbolic
size.  That is exactly the fragment the eight primitives generate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.ir.size import Size
from repro.ir.variables import Variable


class CoordExpr:
    """Base class for coordinate expressions."""

    def iterators(self) -> frozenset["Iterator"]:
        raise NotImplementedError

    def evaluate(
        self,
        iterator_values: Mapping["Iterator", int],
        bindings: Mapping[Variable, int] | None = None,
    ) -> int:
        raise NotImplementedError

    # Convenience constructors -------------------------------------------

    def __add__(self, other: "CoordExpr | int") -> "CoordExpr":
        return Add((self, _coerce(other)))

    def __radd__(self, other: "CoordExpr | int") -> "CoordExpr":
        return Add((_coerce(other), self))

    def times(self, size: Size | Variable | int) -> "CoordExpr":
        return Mul(self, Size.of(size))

    def floordiv(self, size: Size | Variable | int) -> "CoordExpr":
        return FloorDiv(self, Size.of(size))

    def mod(self, size: Size | Variable | int) -> "CoordExpr":
        return Mod(self, Size.of(size))


def _coerce(value: "CoordExpr | int") -> CoordExpr:
    if isinstance(value, CoordExpr):
        return value
    return Const(int(value))


@dataclass(frozen=True)
class Iterator(CoordExpr):
    """A loop iterator with a symbolic domain, e.g. ``i_H : H``."""

    name: str
    domain: Size

    def iterators(self) -> frozenset["Iterator"]:
        return frozenset({self})

    def evaluate(self, iterator_values, bindings=None) -> int:
        return iterator_values[self]

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(CoordExpr):
    """An integer constant."""

    value: int

    def iterators(self) -> frozenset[Iterator]:
        return frozenset()

    def evaluate(self, iterator_values, bindings=None) -> int:
        return self.value

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Add(CoordExpr):
    """Sum of sub-expressions."""

    terms: tuple[CoordExpr, ...]

    def iterators(self) -> frozenset[Iterator]:
        result: set[Iterator] = set()
        for term in self.terms:
            result.update(term.iterators())
        return frozenset(result)

    def evaluate(self, iterator_values, bindings=None) -> int:
        return sum(term.evaluate(iterator_values, bindings) for term in self.terms)

    def __repr__(self) -> str:
        return "(" + " + ".join(repr(term) for term in self.terms) + ")"


@dataclass(frozen=True)
class Mul(CoordExpr):
    """Multiplication of an expression by a symbolic size."""

    expr: CoordExpr
    size: Size

    def iterators(self) -> frozenset[Iterator]:
        return self.expr.iterators()

    def evaluate(self, iterator_values, bindings=None) -> int:
        return self.expr.evaluate(iterator_values, bindings) * self.size.evaluate(bindings)

    def __repr__(self) -> str:
        return f"({self.size!r} * {self.expr!r})"


@dataclass(frozen=True)
class FloorDiv(CoordExpr):
    """Floor division of an expression by a symbolic size."""

    expr: CoordExpr
    size: Size

    def iterators(self) -> frozenset[Iterator]:
        return self.expr.iterators()

    def evaluate(self, iterator_values, bindings=None) -> int:
        return self.expr.evaluate(iterator_values, bindings) // self.size.evaluate(bindings)

    def __repr__(self) -> str:
        return f"({self.expr!r} / {self.size!r})"


@dataclass(frozen=True)
class Mod(CoordExpr):
    """Modulo of an expression by a symbolic size."""

    expr: CoordExpr
    size: Size

    def iterators(self) -> frozenset[Iterator]:
        return self.expr.iterators()

    def evaluate(self, iterator_values, bindings=None) -> int:
        return self.expr.evaluate(iterator_values, bindings) % self.size.evaluate(bindings)

    def __repr__(self) -> str:
        return f"({self.expr!r} % {self.size!r})"


# ---------------------------------------------------------------------------
# Term-rewrite simplification
# ---------------------------------------------------------------------------


def simplify(expr: CoordExpr) -> CoordExpr:
    """Simplify a coordinate expression with Halide-style rewrite rules.

    The rules implemented here are the ones the paper's canonicalization
    relies on; they are applied bottom-up until a fixed point is reached:

    * constant folding and flattening of nested additions;
    * ``(B*i) % (B*C)  ->  B * (i % C)``
    * ``(B*i) / (B*C)  ->  i / C``
    * ``(i % C) / C    ->  0`` and ``(i % C) % C -> i % C``
    * ``i / D`` and ``i % D`` with the iterator's domain dividing ``D``
      reduce to ``0`` and ``i`` respectively;
    * multiplication distributes over addition.
    """
    previous = None
    current = expr
    for _ in range(32):
        if previous is not None and repr(previous) == repr(current):
            break
        previous = current
        current = _rewrite(current)
    return current


def _rewrite(expr: CoordExpr) -> CoordExpr:
    if isinstance(expr, (Iterator, Const)):
        return expr
    if isinstance(expr, Add):
        return _rewrite_add(expr)
    if isinstance(expr, Mul):
        return _rewrite_mul(expr)
    if isinstance(expr, FloorDiv):
        return _rewrite_floordiv(expr)
    if isinstance(expr, Mod):
        return _rewrite_mod(expr)
    return expr


def _rewrite_add(expr: Add) -> CoordExpr:
    terms: list[CoordExpr] = []
    constant = 0
    for term in expr.terms:
        term = _rewrite(term)
        if isinstance(term, Add):
            terms.extend(term.terms)
        elif isinstance(term, Const):
            constant += term.value
        else:
            terms.append(term)
    if constant:
        terms.append(Const(constant))
    if not terms:
        return Const(0)
    if len(terms) == 1:
        return terms[0]
    return Add(tuple(terms))


def _rewrite_mul(expr: Mul) -> CoordExpr:
    inner = _rewrite(expr.expr)
    if expr.size.is_one:
        return inner
    if isinstance(inner, Const):
        if inner.value == 0:
            return Const(0)
    if isinstance(inner, Add):
        # Distribute multiplication over addition (the paper's notion of
        # "removing parentheses").
        return Add(tuple(Mul(term, expr.size) for term in inner.terms))
    if isinstance(inner, Mul):
        return Mul(inner.expr, inner.size * expr.size)
    return Mul(inner, expr.size)


def _known_bound(expr: CoordExpr) -> Size | None:
    """An upper bound (exclusive) on the value of ``expr``, if easily known."""
    if isinstance(expr, Iterator):
        return expr.domain
    if isinstance(expr, Mod):
        return expr.size
    if isinstance(expr, Mul):
        inner = _known_bound(expr.expr)
        if inner is not None:
            return inner * expr.size
    return None


def _rewrite_floordiv(expr: FloorDiv) -> CoordExpr:
    inner = _rewrite(expr.expr)
    size = expr.size
    if size.is_one:
        return inner
    if isinstance(inner, Const) and inner.value == 0:
        return Const(0)
    bound = _known_bound(inner)
    if bound is not None and (bound / size).is_one:
        # expr < size  =>  expr / size == 0
        return Const(0)
    if isinstance(inner, Mul):
        quotient = inner.size / size
        if quotient.is_plausible and not quotient.has_primary_in_denominator:
            if quotient.is_one:
                return inner.expr
        reciprocal = size / inner.size
        if inner.size.divides(size):
            # (B*i) / (B*C) -> i / C
            return FloorDiv(inner.expr, reciprocal)
    if isinstance(inner, FloorDiv):
        return FloorDiv(inner.expr, inner.size * size)
    return FloorDiv(inner, size)


def _rewrite_mod(expr: Mod) -> CoordExpr:
    inner = _rewrite(expr.expr)
    size = expr.size
    if size.is_one:
        return Const(0)
    if isinstance(inner, Const) and inner.value == 0:
        return Const(0)
    bound = _known_bound(inner)
    if bound is not None and (bound / size).is_one:
        # expr < size  =>  expr % size == expr
        return inner
    if isinstance(inner, Mul) and inner.size.divides(size):
        # (B*i) % (B*C) -> B * (i % C)
        return Mul(Mod(inner.expr, size / inner.size), inner.size)
    if isinstance(inner, Mod) and repr(inner.size) == repr(size):
        return inner
    return Mod(inner, size)
