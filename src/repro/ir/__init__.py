"""Symbolic intermediate representation used throughout the reproduction.

The IR has two halves:

* *sizes* — symbolic dimension sizes expressed as monomials over primary and
  coefficient variables (Section 5.4 of the paper), plus shape specifications;
* *coordinate expressions* — the arithmetic expressions on tensor iterators
  that give primitives their semantics (Table 1), together with a small
  Halide-style term-rewrite simplifier used by canonicalization.
"""

from repro.ir.variables import Variable, VariableKind, primary, coefficient
from repro.ir.size import Size, SizeError
from repro.ir.shape import ShapeSpec, TensorSpec
from repro.ir.expr import (
    Add,
    Const,
    CoordExpr,
    FloorDiv,
    Iterator,
    Mod,
    Mul,
    simplify,
)

__all__ = [
    "Variable",
    "VariableKind",
    "primary",
    "coefficient",
    "Size",
    "SizeError",
    "ShapeSpec",
    "TensorSpec",
    "CoordExpr",
    "Iterator",
    "Const",
    "Add",
    "Mul",
    "FloorDiv",
    "Mod",
    "simplify",
]
