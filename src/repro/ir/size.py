"""Symbolic dimension sizes as monomials over variables.

A :class:`Size` is a product of a rational numeric factor and variables raised
to (possibly negative) integer powers, e.g. ``2 * H * W / s``.  This is exactly
the representation the paper uses for primitive parameters and dimension
domains (Section 5.4): monomials of primary and coefficient variables with
bounded degrees.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Mapping

from repro.ir.variables import Variable, VariableKind


class SizeError(ValueError):
    """Raised for invalid symbolic size manipulations (e.g. inexact division)."""


def _normalize_powers(powers: Mapping[Variable, int]) -> tuple[tuple[Variable, int], ...]:
    items = [(v, int(p)) for v, p in powers.items() if int(p) != 0]
    items.sort(key=lambda item: (item[0].kind.value, item[0].name))
    return tuple(items)


@dataclass(frozen=True)
class Size:
    """A symbolic size: ``factor * prod(var ** power)``.

    Instances are immutable and hashable, so sizes can be used as dictionary
    keys and compared structurally (two sizes are equal iff they have the same
    normalized factor and variable powers).
    """

    factor: Fraction
    powers: tuple[tuple[Variable, int], ...]

    # -- constructors ------------------------------------------------------

    @staticmethod
    def of(value: "Size | Variable | int") -> "Size":
        """Coerce an int, a variable, or a size into a :class:`Size`."""
        if isinstance(value, Size):
            return value
        if isinstance(value, Variable):
            return Size(Fraction(1), ((value, 1),))
        if isinstance(value, int):
            if value <= 0:
                raise SizeError(f"sizes must be positive, got {value}")
            return Size(Fraction(value), ())
        raise TypeError(f"cannot interpret {value!r} as a Size")

    @staticmethod
    def one() -> "Size":
        return Size(Fraction(1), ())

    @staticmethod
    def product(sizes: Iterable["Size | Variable | int"]) -> "Size":
        result = Size.one()
        for size in sizes:
            result = result * Size.of(size)
        return result

    def __post_init__(self) -> None:
        object.__setattr__(self, "factor", Fraction(self.factor))
        object.__setattr__(self, "powers", _normalize_powers(dict(self.powers)))

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Size | Variable | int") -> "Size":
        other = Size.of(other)
        powers = dict(self.powers)
        for var, power in other.powers:
            powers[var] = powers.get(var, 0) + power
        return Size(self.factor * other.factor, tuple(powers.items()))

    __rmul__ = __mul__

    def __truediv__(self, other: "Size | Variable | int") -> "Size":
        other = Size.of(other)
        powers = dict(self.powers)
        for var, power in other.powers:
            powers[var] = powers.get(var, 0) - power
        return Size(self.factor / other.factor, tuple(powers.items()))

    def pow(self, exponent: int) -> "Size":
        powers = {var: power * exponent for var, power in self.powers}
        return Size(self.factor**exponent, tuple(powers.items()))

    # -- queries -----------------------------------------------------------

    @property
    def is_one(self) -> bool:
        return self.factor == 1 and not self.powers

    @property
    def is_constant(self) -> bool:
        return not self.powers

    def variables(self, kind: VariableKind | None = None) -> frozenset[Variable]:
        if kind is None:
            return frozenset(var for var, _ in self.powers)
        return frozenset(var for var, _ in self.powers if var.kind is kind)

    def primary_variables(self) -> frozenset[Variable]:
        return self.variables(VariableKind.PRIMARY)

    def coefficient_variables(self) -> frozenset[Variable]:
        return self.variables(VariableKind.COEFFICIENT)

    def power_of(self, var: Variable) -> int:
        for candidate, power in self.powers:
            if candidate == var:
                return power
        return 0

    def degree(self, kind: VariableKind | None = None) -> int:
        """Total degree (sum of powers) restricted to a variable kind."""
        return sum(
            power
            for var, power in self.powers
            if kind is None or var.kind is kind
        )

    @property
    def has_primary_in_denominator(self) -> bool:
        """Primary variables may not appear in denominators (Section 5.4)."""
        return any(
            power < 0 and var.is_primary for var, power in self.powers
        )

    def divides(self, other: "Size | Variable | int") -> bool:
        """Whether ``self`` symbolically divides ``other``.

        The check is conservative: every variable power in ``self`` must be
        covered by ``other`` and the numeric factor of the quotient must be a
        positive integer.
        """
        quotient = Size.of(other) / self
        return quotient.is_plausible

    @property
    def is_plausible(self) -> bool:
        """Whether this size could denote a positive integral dimension.

        A size with a fractional constant factor and no variables, or with a
        primary variable in a denominator, cannot be a valid dimension size.
        """
        if self.has_primary_in_denominator:
            return False
        if not self.powers:
            return self.factor.denominator == 1 and self.factor >= 1
        return self.factor > 0

    # -- evaluation --------------------------------------------------------

    def evaluate(self, bindings: Mapping[Variable, int] | None = None) -> int:
        """Evaluate to a concrete positive integer given variable bindings.

        Variables missing from ``bindings`` fall back to their declared
        default values.  Raises :class:`SizeError` if the result is not a
        positive integer.
        """
        bindings = dict(bindings or {})
        value = Fraction(self.factor)
        for var, power in self.powers:
            if var in bindings:
                concrete = bindings[var]
            elif var.default is not None:
                concrete = var.default
            else:
                raise SizeError(f"no binding for variable {var.name}")
            if concrete <= 0:
                raise SizeError(f"variable {var.name} bound to non-positive {concrete}")
            value *= Fraction(concrete) ** power
        if value.denominator != 1 or value <= 0:
            raise SizeError(f"size {self} evaluates to non-integer {value}")
        return int(value)

    def evaluates_to_integer(self, bindings: Mapping[Variable, int] | None = None) -> bool:
        try:
            self.evaluate(bindings)
        except SizeError:
            return False
        return True

    # -- presentation ------------------------------------------------------

    def __repr__(self) -> str:
        terms: list[str] = []
        if self.factor != 1 or not self.powers:
            terms.append(str(self.factor))
        for var, power in self.powers:
            if power == 1:
                terms.append(var.name)
            else:
                terms.append(f"{var.name}^{power}")
        return "*".join(terms)
