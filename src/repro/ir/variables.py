"""Symbolic variables for dimension sizes.

The paper distinguishes two classes of symbols (Section 5.4):

* *primary* variables are input/output dimension sizes (``N``, ``C_in``,
  ``H``...).  They are assumed large and may not appear in the denominator of
  a coordinate expression.
* *coefficient* variables are introduced by primitives (e.g. the block size of
  a ``Merge`` or the window of an ``Unfold``).  They are assumed small and may
  appear in denominators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class VariableKind(enum.Enum):
    """Classification of a symbolic size variable."""

    PRIMARY = "primary"
    COEFFICIENT = "coefficient"


@dataclass(frozen=True, order=True)
class Variable:
    """A named symbolic variable with an optional default concrete value.

    Variables compare and hash by name and kind so that two mentions of
    ``H`` always denote the same symbol.
    """

    name: str
    kind: VariableKind = field(default=VariableKind.PRIMARY, compare=True)
    default: int | None = field(default=None, compare=False)

    @property
    def is_primary(self) -> bool:
        return self.kind is VariableKind.PRIMARY

    @property
    def is_coefficient(self) -> bool:
        return self.kind is VariableKind.COEFFICIENT

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name


def primary(name: str, default: int | None = None) -> Variable:
    """Create a primary variable (an input/output dimension size)."""
    return Variable(name, VariableKind.PRIMARY, default)


def coefficient(name: str, default: int | None = None) -> Variable:
    """Create a coefficient variable (a small primitive parameter)."""
    return Variable(name, VariableKind.COEFFICIENT, default)
