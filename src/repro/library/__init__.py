"""GraphLib: the ahead-of-time design-space library.

Enumerate once, search many times.  The subsystem splits into:

* :mod:`repro.library.specs` — the named slot-family design spaces;
* :mod:`repro.library.builder` — checkpointed, shard-parallel enumeration
  deduplicated by ``PGraph.signature()``;
* :mod:`repro.library.embeddings` — structural feature vectors and k-NN;
* :mod:`repro.library.store` — the versioned on-disk artifact and the
  signature -> reward sidecar;
* :mod:`repro.library.warmstart` — seeding MCTS root frontiers and reward
  caches from a built library.

Submodules are imported lazily by clients (``from repro.library.builder
import build_library``) rather than re-exported here: the builder pulls in
the shard executor, whose import graph must stay acyclic with the search
session's warm-start hook.
"""

__all__ = ["builder", "embeddings", "specs", "store", "warmstart"]
