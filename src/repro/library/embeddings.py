"""Structural feature vectors and nearest-neighbour lists for library graphs.

Every library entry carries a small, purely structural embedding computed
from its pGraph: primitive-type counts, depth, the reduction-dimension
profile, and log-scaled MACs/parameter counts under the library's budget
binding.  The vectors are cheap (no training, no tensors), deterministic,
and comparable across builds — which is all warm-starting needs: ranking
"graphs shaped like the ones that scored well before" ahead of the rest.

Nearest neighbours are plain Euclidean over these vectors with a total
tie-break on signature, so the k-NN lists embedded in the artifact are
bit-identical regardless of shard count.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.core.pgraph import PGraph
from repro.ir.size import SizeError
from repro.core.primitives import (
    Expand,
    Merge,
    Reduce,
    Share,
    Shift,
    Split,
    Stride,
    Unfold,
)
from repro.ir.variables import Variable

#: Primitive types counted in the embedding, in feature order.
_COUNTED_PRIMITIVES = (Reduce, Share, Merge, Split, Shift, Expand, Stride, Unfold)

#: Names of the feature-vector components, in order.  Stored in library
#: metadata so the vectors stay interpretable after the build.
FEATURE_NAMES: tuple[str, ...] = (
    "depth",
    *(f"count_{primitive.__name__.lower()}" for primitive in _COUNTED_PRIMITIVES),
    "weights",
    "weight_dims",
    "reduction_dims",
    "reduction_log_extent",
    "frontier_size",
    "log_macs",
    "log_params",
)


def feature_vector(
    graph: PGraph, binding: Mapping[Variable, int] | None = None
) -> tuple[float, ...]:
    """The structural embedding of one pGraph (see :data:`FEATURE_NAMES`)."""
    binding = binding or {}
    reduction_dims = graph.reduction_dims
    reduction_extent = 1
    for dim in reduction_dims:
        try:
            reduction_extent *= max(dim.size.evaluate(binding), 1)
        except SizeError:
            pass  # symbolic extent under a partial binding: skip the factor
    return (
        float(graph.depth),
        *(float(graph.count_primitive(primitive)) for primitive in _COUNTED_PRIMITIVES),
        float(len(graph.weights)),
        float(sum(len(weight.dims) for weight in graph.weights)),
        float(len(reduction_dims)),
        math.log1p(float(reduction_extent)),
        float(len(graph.frontier)),
        math.log1p(float(graph.macs(binding))),
        math.log1p(float(graph.parameter_count(binding))),
    )


def distance(left: Sequence[float], right: Sequence[float]) -> float:
    """Euclidean distance between two feature vectors."""
    return math.sqrt(sum((a - b) ** 2 for a, b in zip(left, right)))


def nearest_neighbours(
    signature: str,
    features: Sequence[float],
    candidates: Sequence[tuple[str, Sequence[float]]],
    k: int,
) -> tuple[str, ...]:
    """The ``k`` candidate signatures nearest to ``features``, nearest first.

    ``candidates`` is the (signature, features) pool to rank; the entry's own
    signature is excluded.  Ties break on signature so the result is a total
    order independent of candidate iteration order.
    """
    ranked = sorted(
        (distance(features, candidate_features), candidate_signature)
        for candidate_signature, candidate_features in candidates
        if candidate_signature != signature
    )
    return tuple(candidate for _, candidate in ranked[:k])
