"""Named design spaces the graph library is built for.

One :class:`SpaceSpec` per slot family: the GPT-2 QKV projection slot (the
matmul space ``repro run search`` explores) and one representative 3x3
convolution slot per vision backbone profiled in
:mod:`repro.nn.models.profiles`.  ``repro library build --family all`` sweeps
every one of these; the warm-start path loads the family matching the
experiment's searched spec.

The GPT-2 space here and the search experiment must stay
construction-identical — ``repro.experiments.search.run`` builds its spec and
options through :func:`gpt2_projection_space`, and a regression test pins the
proxy-training binding to the experiment's constants — otherwise a library
built ahead of time would describe a different space than the search
explores and warm-starting would silently seed garbage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.enumeration import EnumerationOptions, default_options_for
from repro.core.library import (
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K,
    K1,
    M,
    N,
    OUT_FEATURES,
    SHRINK,
    W,
    conv2d_spec,
    matmul_spec,
)
from repro.core.operator import OperatorSpec
from repro.ir.variables import Variable
from repro.nn.models.common import ConvSlot
from repro.nn.models.profiles import MODEL_PROFILES
from repro.search.extraction import VISION_COEFFICIENTS

#: rows each GPT-2 QKV projection sees per proxy-training batch
#: (batch 8 x sequence 16) and the tiny model's embedding width — fixed by
#: :mod:`repro.experiments.search`, pinned by a regression test there.
GPT2_ROWS = 128
GPT2_EMBED = 32


@dataclass(frozen=True)
class SpaceSpec:
    """A named, fully-bound design space the library can be built for."""

    #: family name (``repro library build <name>``) — doubles as the library
    #: artifact name.
    name: str
    #: backbone the slot was taken from (informational).
    model: str
    spec: OperatorSpec
    options: EnumerationOptions
    description: str

    @property
    def binding(self) -> dict[Variable, int]:
        """The budget binding (first spec binding; the builder's default)."""
        return dict(self.spec.bindings[0]) if self.spec.bindings else {}


def gpt2_projection_space(max_depth: int = 4) -> SpaceSpec:
    """The GPT-2 QKV projection (matmul) space ``repro run search`` explores.

    Construction mirrors :func:`repro.experiments.search.run` exactly: same
    binding, no coefficient sizes (they starve random rollouts), MACs budget
    pinned to the dense projection.
    """
    binding: Mapping[Variable, int] = {
        M: GPT2_ROWS,
        K: GPT2_EMBED,
        OUT_FEATURES: GPT2_EMBED,
        GROUPS: 2,
    }
    spec = matmul_spec(bindings=(binding,))
    options = default_options_for(
        spec,
        coefficients=[],
        max_depth=max_depth,
        macs_budget_ratio=1.0,
        reference_macs=GPT2_ROWS * GPT2_EMBED * GPT2_EMBED,
    )
    return SpaceSpec(
        name="gpt2",
        model="gpt2_tiny",
        spec=spec,
        options=options,
        description="GPT-2 QKV projection slot ([M, K] -> [M, F])",
    )


def conv_slot_space(name: str, model: str, slot: ConvSlot, max_depth: int = 3) -> SpaceSpec:
    """The conv2d space of one profiled 3x3 slot, budgeted at the slot's MACs."""
    binding: Mapping[Variable, int] = {
        N: 1,
        C_IN: slot.in_channels,
        C_OUT: slot.out_channels,
        H: slot.spatial,
        W: slot.spatial,
        K1: slot.kernel_size,
        GROUPS: max(slot.groups, 2),
        SHRINK: 2,
    }
    spec = conv2d_spec(bindings=(binding,))
    reference_macs = (
        slot.spatial * slot.spatial * slot.in_channels * slot.out_channels
        * slot.kernel_size * slot.kernel_size
    ) // max(slot.groups, 1)
    options = default_options_for(
        spec,
        coefficients=list(VISION_COEFFICIENTS),
        max_depth=max_depth,
        macs_budget_ratio=1.0,
        reference_macs=reference_macs,
    )
    return SpaceSpec(
        name=name,
        model=model,
        spec=spec,
        options=options,
        description=(
            f"{model} {slot.name} "
            f"({slot.in_channels}->{slot.out_channels} @{slot.spatial}, "
            f"k={slot.kernel_size}, g={slot.groups})"
        ),
    )


def _profiled_slot(model: str, slot_name: str) -> ConvSlot:
    for slot in MODEL_PROFILES[model]:
        if slot.name.startswith(slot_name):
            return slot
    raise KeyError(f"no slot named {slot_name!r} in the {model} profile")


def design_spaces(max_depth: int = 3, gpt2_depth: int = 4) -> dict[str, SpaceSpec]:
    """Every slot-family space, keyed by family name (fresh on every call).

    The representative conv slot per backbone is the first (earliest-stage)
    full-resolution 3x3 convolution of its profile — the slot class the paper
    substitutes most often.
    """
    spaces = [
        gpt2_projection_space(max_depth=gpt2_depth),
        conv_slot_space("resnet", "resnet18", _profiled_slot("resnet18", "layer1.conv"), max_depth),
        conv_slot_space(
            "resnext", "resnext29_2x64d", _profiled_slot("resnext29_2x64d", "stage1.grouped"), max_depth
        ),
        conv_slot_space(
            "densenet", "densenet121", _profiled_slot("densenet121", "dense1.conv"), max_depth
        ),
        conv_slot_space(
            "efficientnet", "efficientnet_v2_s", _profiled_slot("efficientnet_v2_s", "fused1.conv"), max_depth
        ),
    ]
    return {space.name: space for space in spaces}


def space_for(name: str, max_depth: int | None = None) -> SpaceSpec:
    """The named family's space; depth defaults per family (gpt2: 4, conv: 3)."""
    if max_depth is None:
        spaces = design_spaces()
    else:
        spaces = design_spaces(max_depth=max_depth, gpt2_depth=max_depth)
    if name not in spaces:
        raise KeyError(
            f"unknown slot family {name!r}; available: {', '.join(sorted(spaces))}"
        )
    return spaces[name]
