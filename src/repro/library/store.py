"""The on-disk `GraphLibrary` artifact and its signature→reward sidecar.

A graph library is the ahead-of-time enumeration of one operator spec's
canonical pGraph space (ROADMAP item: enumerate once, reuse across runs).
On disk it is a sequence of CRC-framed payloads — the same torn-tail-tolerant
framing :mod:`repro.runtime.store` uses for the shared cache store, under a
distinct magic so the two formats can never be confused:

* frame 0: JSON metadata (format version, spec key, options fingerprint,
  entry counts, content hash, enumeration statistics);
* frames 1..n: one canonical-JSON :class:`LibraryEntry` each, sorted by
  ``(depth, signature)``.

The **content hash** is a SHA-256 over the sorted entry payload bytes.  It is
the library's identity for the determinism contract: a serial build, a
shard-parallel build and a checkpoint-resumed build of the same spec and
options must produce byte-identical entry frames and therefore the same hash.
Entries carry no process-local state (dimension uids are relabelled away by
``PGraph.signature()``), which is what makes the hash machine-independent.

Loading is lazy and mmap-friendly: :meth:`GraphLibrary.load` maps the file
and scans frame offsets only; entry JSON is parsed on first access.

The **reward sidecar** is a small append-only frame file next to the library
mapping ``(evaluation-context digest, signature) -> reward``, so proxy-train
rewards transfer across runs and scenarios by structural signature instead of
dying with each process's cache snapshot.
"""

from __future__ import annotations

import hashlib
import json
import logging
import mmap
import os
import zlib
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping, Sequence

from repro.runtime.store import FRAME_HEADER, CacheLockTimeout, FileLock

log = logging.getLogger(__name__)

#: Version of the library artifact format *and* of the entry payload schema.
#: Bump whenever :class:`LibraryEntry` or the feature vector changes shape —
#: the loader ignores artifacts written under any other version.
LIBRARY_FORMAT_VERSION = 1

#: Frame magic of library artifacts and build checkpoints.
LIBRARY_MAGIC = b"RPLB"
#: Frame magic of reward sidecar files.
SIDECAR_MAGIC = b"RPLR"


# ---------------------------------------------------------------------------
# Framing (same idioms as runtime/store.py, distinct magic)
# ---------------------------------------------------------------------------


def pack_frame(payload: bytes, magic: bytes = LIBRARY_MAGIC) -> bytes:
    """One CRC-framed payload: header(magic, length, crc32) + payload."""
    return FRAME_HEADER.pack(magic, len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def scan_frames(buffer, magic: bytes = LIBRARY_MAGIC) -> list[tuple[int, int]]:
    """``(start, end)`` payload offsets of every intact frame in ``buffer``.

    Scanning stops at the first wrong-magic, wrong-CRC or torn frame — the
    state a SIGKILLed writer leaves behind — so everything before a corrupt
    tail remains loadable, mirroring the shared cache store's recovery.
    """
    offsets: list[tuple[int, int]] = []
    position = 0
    size = len(buffer)
    while position + FRAME_HEADER.size <= size:
        found, length, crc = FRAME_HEADER.unpack_from(buffer, position)
        start = position + FRAME_HEADER.size
        end = start + length
        if found != magic or end > size:
            break
        if zlib.crc32(buffer[start:end]) & 0xFFFFFFFF != crc:
            break
        offsets.append((start, end))
        position = end
    return offsets


def read_frames(path: str, magic: bytes = LIBRARY_MAGIC) -> list[bytes]:
    """All intact frame payloads of ``path`` (empty for a missing file)."""
    try:
        with open(path, "rb") as handle:
            buffer = handle.read()
    except FileNotFoundError:
        return []
    except OSError as exc:
        log.warning("unreadable frame file %s: %s", path, exc)
        return []
    return [buffer[start:end] for start, end in scan_frames(buffer, magic)]


def write_frames_atomic(path: str, payloads: Sequence[bytes], magic: bytes = LIBRARY_MAGIC) -> None:
    """Write ``payloads`` as one framed file, atomically (tmp + fsync + replace)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        for payload in payloads:
            handle.write(pack_frame(payload, magic))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


# ---------------------------------------------------------------------------
# Keys and digests
# ---------------------------------------------------------------------------


def _binding_payload(bindings) -> list:
    payload = []
    for binding in bindings or ():
        payload.append(sorted((var.name, int(value)) for var, value in binding.items()))
    return payload


def spec_key(spec) -> str:
    """Stable identity of an operator spec (shapes + bindings), hex digest.

    Libraries match searches by this key: a library built for one spec never
    warm-starts a search over a different one.
    """
    payload = json.dumps(
        {
            "name": spec.name,
            "input": repr(spec.input_shape),
            "output": repr(spec.output_shape),
            "bindings": _binding_payload(spec.bindings),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def options_fingerprint(options) -> str:
    """Stable identity of the enumeration options, hex digest.

    Covers everything that changes which graphs exist in the space: depth,
    the size vocabularies, the occurrence limits, the budgets, the
    canonicalization rule set and the shape-distance guide.
    """
    canonicalizer = options.canonicalizer
    rules = (
        [getattr(rule, "__name__", repr(rule)) for rule in canonicalizer.rules]
        if canonicalizer is not None
        else None
    )
    payload = json.dumps(
        {
            "max_depth": options.max_depth,
            "reduce_sizes": sorted(repr(size) for size in options.reduce_sizes),
            "merge_blocks": sorted(repr(size) for size in options.merge_blocks),
            "strides": sorted(repr(size) for size in options.strides),
            "limits": [
                options.max_expands,
                options.max_strides,
                options.max_shifts,
                options.max_reductions,
                options.max_weights,
                options.max_weight_dims,
            ],
            "max_macs": options.max_macs,
            "max_params": options.max_params,
            "binding": sorted(
                (var.name, int(value))
                for var, value in (options.budget_binding or {}).items()
            ),
            "rules": rules,
            "use_shape_distance": options.use_shape_distance,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def context_digest(cache_context) -> str:
    """Digest of a reward-cache context tuple (the sidecar's namespace key)."""
    return hashlib.sha256(repr(cache_context).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LibraryEntry:
    """One isomorphism bucket of the enumerated space.

    The signature is the bucket identity (every uid relabelling and commuting
    application order collapses to it); ``parent_signature``/``primitive``
    record the canonical edge the builder reached it through, which is how
    warm-starting walks an entry back to its depth-1 root action.
    """

    signature: str
    depth: int
    complete: bool
    parent_signature: str | None
    primitive: str | None
    macs: int
    params: int
    features: tuple[float, ...]
    #: nearest complete entries in embedding space (nearest first).
    neighbours: tuple[str, ...] = ()

    def to_payload(self) -> bytes:
        """Canonical JSON bytes (the unit the content hash is computed over)."""
        return json.dumps(
            {
                "signature": self.signature,
                "depth": self.depth,
                "complete": self.complete,
                "parent_signature": self.parent_signature,
                "primitive": self.primitive,
                "macs": self.macs,
                "params": self.params,
                "features": list(self.features),
                "neighbours": list(self.neighbours),
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")

    @classmethod
    def from_payload(cls, payload: bytes) -> "LibraryEntry":
        data = json.loads(payload.decode("utf-8"))
        return cls(
            signature=data["signature"],
            depth=int(data["depth"]),
            complete=bool(data["complete"]),
            parent_signature=data.get("parent_signature"),
            primitive=data.get("primitive"),
            macs=int(data["macs"]),
            params=int(data["params"]),
            features=tuple(float(x) for x in data["features"]),
            neighbours=tuple(data.get("neighbours") or ()),
        )

    def with_neighbours(self, neighbours: Sequence[str]) -> "LibraryEntry":
        return replace(self, neighbours=tuple(neighbours))


def content_hash(entries: Sequence[LibraryEntry]) -> str:
    """SHA-256 over the sorted entry payloads — the library's identity."""
    digest = hashlib.sha256()
    for entry in sorted(entries, key=lambda e: (e.depth, e.signature)):
        digest.update(entry.to_payload())
        digest.update(b"\n")
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------


def library_filename(name: str) -> str:
    """Basename of a library artifact (the format version is part of it)."""
    return f"{name}-v{LIBRARY_FORMAT_VERSION}.rplb"


def checkpoint_filename(name: str) -> str:
    return f"{name}-v{LIBRARY_FORMAT_VERSION}.ckpt"


def sidecar_filename(name: str) -> str:
    return f"rewards-{name}-v{LIBRARY_FORMAT_VERSION}.rplb"


class GraphLibrary:
    """A loaded (or freshly built) graph library: metadata + lazy entries."""

    def __init__(self, meta: dict, entries: Sequence[LibraryEntry]) -> None:
        self.meta = dict(meta)
        self._entries = list(entries)
        self._by_signature: dict[str, LibraryEntry] | None = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str,
        spec_key_: str,
        options_fingerprint_: str,
        entries: Sequence[LibraryEntry],
        stats: Mapping | None = None,
        levels: int = 0,
    ) -> "GraphLibrary":
        ordered = sorted(entries, key=lambda e: (e.depth, e.signature))
        meta = {
            "version": LIBRARY_FORMAT_VERSION,
            "name": name,
            "spec_key": spec_key_,
            "options_fingerprint": options_fingerprint_,
            "entries": len(ordered),
            "complete": sum(1 for e in ordered if e.complete),
            "max_depth": max((e.depth for e in ordered), default=0),
            "levels": levels,
            "content_hash": content_hash(ordered),
            "stats": dict(stats or {}),
        }
        return cls(meta, ordered)

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        payloads = [json.dumps(self.meta, sort_keys=True).encode("utf-8")]
        payloads.extend(entry.to_payload() for entry in self._entries)
        write_frames_atomic(path, payloads)

    @classmethod
    def load(cls, path: str) -> "GraphLibrary | None":
        """Load an artifact lazily; ``None`` for missing/foreign/corrupt files.

        The file is memory-mapped and only frame offsets are scanned here;
        entry payloads are parsed on first access.  A version mismatch is
        reported (and ignored) rather than raised, like cache snapshots.
        """
        try:
            with open(path, "rb") as handle:
                mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (FileNotFoundError, ValueError):
            return None
        except OSError as exc:
            log.warning("unreadable graph library %s: %s", path, exc)
            return None
        with mapped:
            offsets = scan_frames(mapped)
            if not offsets:
                log.warning("graph library %s holds no intact frames; ignoring", path)
                return None
            start, end = offsets[0]
            try:
                meta = json.loads(bytes(mapped[start:end]).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                log.warning("graph library %s has a corrupt meta frame: %s", path, exc)
                return None
            if meta.get("version") != LIBRARY_FORMAT_VERSION:
                log.warning(
                    "ignoring graph library %s: format version %r != expected %d",
                    path, meta.get("version"), LIBRARY_FORMAT_VERSION,
                )
                return None
            # Lazy in spirit and in allocation: payload bytes are sliced out
            # of the map now (views die with the map), parsed on first use.
            payloads = [bytes(mapped[s:e]) for s, e in offsets[1:]]
        library = cls.__new__(cls)
        library.meta = meta
        library._entries = _LazyEntries(payloads)  # type: ignore[assignment]
        library._by_signature = None
        return library

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LibraryEntry]:
        return iter(self._entries)

    def entries(self) -> list[LibraryEntry]:
        return list(self._entries)

    def get(self, signature: str) -> LibraryEntry | None:
        if self._by_signature is None:
            self._by_signature = {entry.signature: entry for entry in self._entries}
        return self._by_signature.get(signature)

    def complete_entries(self) -> list[LibraryEntry]:
        return [entry for entry in self._entries if entry.complete]

    def content_hash(self) -> str:
        return self.meta.get("content_hash", "")

    def prefix_signature(self, entry: LibraryEntry, depth: int = 1) -> str | None:
        """The signature of ``entry``'s ancestor at ``depth`` (walking parents)."""
        current = entry
        while current is not None and current.depth > depth:
            parent = current.parent_signature
            current = self.get(parent) if parent is not None else None
        if current is not None and current.depth == depth:
            return current.signature
        return None


class _LazyEntries:
    """List-like over raw payloads, parsing each entry once on first access."""

    def __init__(self, payloads: list[bytes]) -> None:
        self._payloads = payloads
        self._parsed: dict[int, LibraryEntry] = {}

    def __len__(self) -> int:
        return len(self._payloads)

    def __getitem__(self, index: int) -> LibraryEntry:
        entry = self._parsed.get(index)
        if entry is None:
            entry = LibraryEntry.from_payload(self._payloads[index])
            self._parsed[index] = entry
        return entry

    def __iter__(self) -> Iterator[LibraryEntry]:
        for index in range(len(self._payloads)):
            yield self[index]


# ---------------------------------------------------------------------------
# Reward sidecar
# ---------------------------------------------------------------------------


@dataclass
class RewardSidecar:
    """Append-only ``(context digest, signature) -> reward`` frames.

    Rewards transfer across runs *by signature*: a search warm-started from
    the library seeds its context's reward cache from here before the first
    wave, and publishes its fresh rewards back after the last one.  Appends
    take the same advisory directory lock the shared cache store uses, and
    are best-effort — a held lock skips the publish rather than failing the
    run.
    """

    path: str
    lock_timeout: float = 10.0
    _lock: FileLock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.path = str(self.path)
        self._lock = FileLock(f"{self.path}.lock", timeout=self.lock_timeout)

    def load(self, digest: str) -> dict[str, float]:
        """All rewards recorded under one evaluation-context digest."""
        rewards: dict[str, float] = {}
        for payload in read_frames(self.path, SIDECAR_MAGIC):
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                log.warning("skipping corrupt sidecar frame in %s: %s", self.path, exc)
                continue
            if record.get("context") == digest:
                rewards[str(record["signature"])] = float(record["reward"])
        return rewards

    def publish(self, digest: str, rewards: Mapping[str, float]) -> int:
        """Append rewards not yet recorded under ``digest``; returns how many.

        Read-delta-append under the file lock, so concurrent publishers merge
        instead of duplicating; a lock timeout publishes nothing (0).
        """
        if not rewards:
            return 0
        try:
            self._lock.acquire()
        except CacheLockTimeout as exc:
            log.warning("reward sidecar %s is locked (%s); skipping publish", self.path, exc)
            return 0
        try:
            known = set(self.load(digest))
            fresh = sorted(
                (signature, float(value))
                for signature, value in rewards.items()
                if signature not in known
            )
            if not fresh:
                return 0
            os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
            with open(self.path, "ab") as handle:
                for signature, value in fresh:
                    payload = json.dumps(
                        {"context": digest, "signature": signature, "reward": value},
                        sort_keys=True,
                        separators=(",", ":"),
                    ).encode("utf-8")
                    handle.write(pack_frame(payload, SIDECAR_MAGIC))
                handle.flush()
                os.fsync(handle.fileno())
            return len(fresh)
        finally:
            self._lock.release()
