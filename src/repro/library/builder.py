"""Checkpointed, shard-parallel enumeration of a spec's design space.

The builder runs a breadth-first sweep of the canonical pGraph space for one
:class:`OperatorSpec` under one set of :class:`EnumerationOptions`:

* each BFS level fans its frontier out over the supervised shard executor
  (:func:`repro.search.parallel.sharded_map`), one worker call per graph;
* children are merged back **in input order** and deduplicated globally by
  ``PGraph.signature()`` — the first (shallowest, then lexicographically
  first-parent) occurrence of a signature wins, so the surviving entry set is
  a pure function of the space and never of the shard count;
* after every level the full build state (entries, frontier, statistics) is
  written to a CRC-framed checkpoint via an atomic replace, so a SIGKILLed
  build resumes at the last completed level and converges to the same
  artifact;
* a final sharded pass computes each complete graph's nearest neighbours in
  embedding space before the artifact is sealed.

Determinism contract: serial and shard-parallel builds — and any
checkpoint-resumed combination of the two — produce byte-identical entry
frames and therefore the same library content hash.
"""

from __future__ import annotations

import functools
import logging
import os
import pickle
import json
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.core.enumeration import EnumerationOptions, SynthesisStats, enumerate_children
from repro.core.operator import OperatorSpec
from repro.core.pgraph import PGraph, reserve_dim_uids
from repro.core.shape_distance import shape_distance
from repro.ir.size import SizeError
from repro.library.embeddings import FEATURE_NAMES, feature_vector, nearest_neighbours
from repro.library.store import (
    GraphLibrary,
    LibraryEntry,
    LIBRARY_FORMAT_VERSION,
    checkpoint_filename,
    library_filename,
    options_fingerprint,
    read_frames,
    spec_key,
    write_frames_atomic,
)
from repro.runtime.context import RuntimeContext, current
from repro.search.parallel import sharded_map

log = logging.getLogger(__name__)


@dataclass
class BuildResult:
    """What one :func:`build_library` call produced (or found already built)."""

    library: GraphLibrary
    path: str
    content_hash: str
    entries: int
    complete: int
    levels: int
    #: level the build resumed from (0 = fresh build).
    resumed_from_level: int
    #: the artifact already existed for this spec + options; nothing ran.
    reused: bool
    stats: SynthesisStats


@dataclass
class _ChildRecord:
    """One deduplication candidate shipped back from a shard worker."""

    signature: str
    primitive: str
    depth: int
    complete: bool
    macs: int
    params: int
    features: tuple[float, ...]
    #: the graph itself, only when it must be expanded at the next level.
    graph: PGraph | None


def _highest_uid(graph: PGraph) -> int:
    highest = -1
    for dim in graph.output_dims + graph.frontier:
        highest = max(highest, dim.uid)
    for app in graph.applications:
        for dim in app.consumed + app.produced + app.weight_dims + app.matched:
            highest = max(highest, dim.uid)
    for weight in graph.weights:
        for dim in weight.dims:
            highest = max(highest, dim.uid)
    return highest


def _safe_costs(graph: PGraph, binding) -> tuple[int, int]:
    try:
        return graph.macs(binding), graph.parameter_count(binding)
    except SizeError:
        return 0, 0  # symbolic size under a partial binding


def _expand_graph(
    options: EnumerationOptions, graph: PGraph
) -> tuple[str, list[_ChildRecord], SynthesisStats]:
    """Expand one frontier graph: all surviving children + local statistics.

    Runs inside shard workers; everything returned is picklable and free of
    worker-local state (signatures and primitive descriptions are uid-free).
    """
    reserve_dim_uids(_highest_uid(graph))
    stats = SynthesisStats()
    stats.nodes_visited += 1
    children = enumerate_children(graph, options, stats=stats)
    stats.children_generated += len(children)
    binding = options.budget_binding or {}
    records: list[_ChildRecord] = []
    pruned_here = 0
    for action, child in children:
        if options.use_shape_distance:
            remaining = options.max_depth - child.depth
            if shape_distance(child.frontier_shape, child.input_shape) > remaining:
                stats.pruned_by_distance += 1
                pruned_here += 1
                continue
        complete = child.is_complete and child.depth > 0
        within = options.within_budgets(child) if complete else True
        if complete:
            if within:
                stats.completed += 1
            else:
                stats.rejected_by_budget += 1
        macs, params = _safe_costs(child, binding)
        expandable = not complete and child.depth < options.max_depth
        records.append(
            _ChildRecord(
                signature=child.signature(),
                primitive=action.primitive.describe(),
                depth=child.depth,
                complete=complete and within,
                macs=macs,
                params=params,
                features=feature_vector(child, binding),
                graph=child if expandable else None,
            )
        )
    if children and pruned_here == len(children):
        stats.dead_ends_by_distance += 1
    return graph.signature(), records, stats


def _rank_neighbours(
    pool: Sequence[tuple[str, tuple[float, ...]]],
    k: int,
    item: tuple[str, tuple[float, ...]],
) -> tuple[str, ...]:
    signature, features = item
    return nearest_neighbours(signature, features, pool, k)


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------


def _save_checkpoint(
    path: str,
    name: str,
    key: str,
    fingerprint: str,
    level: int,
    entries: Sequence[LibraryEntry],
    frontier: Sequence[PGraph],
    stats: SynthesisStats,
) -> None:
    meta = json.dumps(
        {
            "version": LIBRARY_FORMAT_VERSION,
            "name": name,
            "spec_key": key,
            "options_fingerprint": fingerprint,
            "level": level,
            "entries": len(entries),
            "frontier": len(frontier),
        },
        sort_keys=True,
    ).encode("utf-8")
    state = pickle.dumps(
        {
            "entry_payloads": [entry.to_payload() for entry in entries],
            "frontier": list(frontier),
            "stats": stats,
        }
    )
    write_frames_atomic(path, [meta, state])


def _load_checkpoint(
    path: str, key: str, fingerprint: str
) -> tuple[int, list[LibraryEntry], list[PGraph], SynthesisStats] | None:
    """Restore build state, or ``None`` when absent, foreign, or corrupt."""
    frames = read_frames(path)
    if len(frames) < 2:
        return None
    try:
        meta = json.loads(frames[0].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        log.warning("ignoring checkpoint %s with corrupt metadata: %s", path, exc)
        return None
    if (
        meta.get("version") != LIBRARY_FORMAT_VERSION
        or meta.get("spec_key") != key
        or meta.get("options_fingerprint") != fingerprint
    ):
        log.warning("ignoring checkpoint %s: built for a different spec/options", path)
        return None
    try:
        state = pickle.loads(frames[1])
        entries = [LibraryEntry.from_payload(p) for p in state["entry_payloads"]]
        frontier = list(state["frontier"])
        stats = state["stats"]
    except (pickle.UnpicklingError, KeyError, ValueError, TypeError, EOFError) as exc:
        log.warning("ignoring undecodable checkpoint %s: %s", path, exc)
        return None
    if not isinstance(stats, SynthesisStats):
        return None
    return int(meta["level"]), entries, frontier, stats


# ---------------------------------------------------------------------------
# The build
# ---------------------------------------------------------------------------


def build_library(
    spec: OperatorSpec,
    options: EnumerationOptions,
    *,
    name: str,
    runtime: RuntimeContext | None = None,
    shards: int | None = None,
    neighbours: int = 8,
    checkpoint: bool = True,
    force: bool = False,
    on_level: Callable[[int], None] | None = None,
) -> BuildResult:
    """Enumerate ``spec``'s space under ``options`` into a library artifact.

    The artifact lands under ``runtime.library_path()`` as
    ``{name}-v{version}.rplb``.  If a matching artifact (same spec key and
    options fingerprint) already exists it is returned untouched unless
    ``force`` is set.  ``on_level`` is invoked after each level's checkpoint
    is on disk — the hook the crash-resume tests drive SIGKILL through.
    """
    runtime = runtime if runtime is not None else current()
    root_dir = runtime.library_path()
    artifact_path = os.path.join(root_dir, library_filename(name))
    checkpoint_path = os.path.join(root_dir, checkpoint_filename(name))
    key = spec_key(spec)
    fingerprint = options_fingerprint(options)

    if not force:
        existing = GraphLibrary.load(artifact_path)
        if (
            existing is not None
            and existing.meta.get("spec_key") == key
            and existing.meta.get("options_fingerprint") == fingerprint
        ):
            return BuildResult(
                library=existing,
                path=artifact_path,
                content_hash=existing.content_hash(),
                entries=len(existing),
                complete=existing.meta.get("complete", 0),
                levels=existing.meta.get("levels", 0),
                resumed_from_level=0,
                reused=True,
                stats=SynthesisStats(),
            )

    root = PGraph.root(spec.output_shape, spec.input_shape)
    binding = options.budget_binding or {}
    entries: list[LibraryEntry] = [
        LibraryEntry(
            signature=root.signature(),
            depth=0,
            complete=False,
            parent_signature=None,
            primitive=None,
            macs=0,
            params=0,
            features=feature_vector(root, binding),
        )
    ]
    frontier: list[PGraph] = [root]
    stats = SynthesisStats()
    level = 0
    resumed_from_level = 0

    if checkpoint:
        restored = _load_checkpoint(checkpoint_path, key, fingerprint)
        if restored is not None:
            level, entries, frontier, stats = restored
            resumed_from_level = level
            log.info(
                "resuming library %s from level %d (%d entries, %d frontier graphs)",
                name, level, len(entries), len(frontier),
            )

    seen = {entry.signature for entry in entries}
    expand = functools.partial(_expand_graph, options)

    while frontier and level < options.max_depth:
        # A signature appears at most once in the frontier, so sorting by it
        # is a total order — level results never depend on arrival order.
        frontier.sort(key=lambda graph: graph.signature())
        expansions = sharded_map(expand, frontier, shards=shards, runtime=runtime)
        next_frontier: list[PGraph] = []
        for parent_signature, records, worker_stats in expansions:
            stats.merge(worker_stats)
            for record in records:
                if record.signature in seen:
                    continue
                seen.add(record.signature)
                entries.append(
                    LibraryEntry(
                        signature=record.signature,
                        depth=record.depth,
                        complete=record.complete,
                        parent_signature=parent_signature,
                        primitive=record.primitive,
                        macs=record.macs,
                        params=record.params,
                        features=record.features,
                    )
                )
                if record.graph is not None:
                    next_frontier.append(record.graph)
        frontier = next_frontier
        level += 1
        if checkpoint:
            _save_checkpoint(
                checkpoint_path, name, key, fingerprint, level, entries, frontier, stats
            )
        if on_level is not None:
            on_level(level)

    # Nearest-neighbour lists for the complete entries, in a sharded pass.
    complete_items = [(e.signature, e.features) for e in entries if e.complete]
    if complete_items:
        ranked = sharded_map(
            functools.partial(_rank_neighbours, complete_items, neighbours),
            complete_items,
            shards=shards,
            runtime=runtime,
        )
        by_signature = dict(zip((s for s, _ in complete_items), ranked))
        entries = [
            entry.with_neighbours(by_signature[entry.signature])
            if entry.signature in by_signature
            else entry
            for entry in entries
        ]

    meta_stats = stats.to_dict()
    meta_stats["feature_names"] = list(FEATURE_NAMES)
    library = GraphLibrary.build(
        name=name,
        spec_key_=key,
        options_fingerprint_=fingerprint,
        entries=entries,
        stats=meta_stats,
        levels=level,
    )
    library.save(artifact_path)
    if checkpoint:
        try:
            os.remove(checkpoint_path)
        except FileNotFoundError:
            pass
    return BuildResult(
        library=library,
        path=artifact_path,
        content_hash=library.content_hash(),
        entries=len(library),
        complete=library.meta.get("complete", 0),
        levels=level,
        resumed_from_level=resumed_from_level,
        reused=False,
        stats=stats,
    )
