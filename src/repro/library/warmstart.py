"""Warm-starting MCTS from an ahead-of-time graph library.

Given a library built for the searched spec, warm-starting does two things:

* **Frontier seeding** — the complete library entries are ranked (previously
  rewarded ones first, by reward; the rest by embedding distance to the root)
  and each is walked back through its ``parent_signature`` chain to the
  depth-1 action that leads toward it.  The resulting signature list becomes
  ``MCTSConfig.root_priority``: the root expands toward the library's best
  regions first, while the RNG stream — and therefore every cold-path record
  fingerprint — stays untouched.

* **Reward seeding** — rewards recorded in the library's sidecar under the
  same evaluation context are injected into the run's reward cache by
  signature, so candidates the library has already proxy-trained (in any
  previous run) cost nothing to revisit.

Both halves are opt-in via ``SearchConfig.warm_start`` /
``RuntimeConfig.warm_start`` (``REPRO_WARM_START``) and degrade to no-ops
when no matching library exists.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.operator import OperatorSpec
from repro.core.pgraph import PGraph
from repro.library.embeddings import distance, feature_vector
from repro.library.store import (
    GraphLibrary,
    RewardSidecar,
    context_digest,
    library_filename,
    sidecar_filename,
    spec_key,
)
from repro.runtime.context import RuntimeContext, current

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class WarmStartPlan:
    """Everything a warm-started search needs, resolved ahead of the run."""

    #: library name the plan came from.
    name: str
    #: spec key both the library and the search target share.
    spec_key: str
    #: identity of the library version the plan is pinned to.
    content_hash: str
    #: depth-1 signatures the MCTS root should expand first, best first.
    root_priority: tuple[str, ...]
    #: rewards injected into the run's reward cache from the sidecar.
    seeded_rewards: int


def library_artifact_path(name: str, runtime: RuntimeContext | None = None) -> str:
    runtime = runtime if runtime is not None else current()
    return os.path.join(runtime.library_path(), library_filename(name))


def find_library_name(spec: OperatorSpec, runtime: RuntimeContext | None = None) -> str | None:
    """The name of a library covering ``spec``, discovered by spec key.

    Scans the library root for current-version artifacts (sorted, so the
    result is deterministic when several match) and returns the first whose
    spec key matches.  ``None`` when nothing on disk covers the spec.
    """
    runtime = runtime if runtime is not None else current()
    root = runtime.library_path()
    try:
        filenames = sorted(os.listdir(root))
    except (FileNotFoundError, NotADirectoryError):
        return None
    suffix = library_filename("")  # "-v{version}.rplb"
    key = spec_key(spec)
    for filename in filenames:
        if not filename.endswith(suffix) or filename.startswith("rewards-"):
            continue
        library = GraphLibrary.load(os.path.join(root, filename))
        if library is not None and library.meta.get("spec_key") == key:
            return library.meta.get("name")
    return None


def load_library(
    name: str, spec: OperatorSpec | None = None, runtime: RuntimeContext | None = None
) -> GraphLibrary | None:
    """The named library, or ``None`` if absent or built for another spec."""
    library = GraphLibrary.load(library_artifact_path(name, runtime))
    if library is None:
        return None
    if spec is not None and library.meta.get("spec_key") != spec_key(spec):
        log.warning(
            "library %r was built for a different spec; ignoring for warm start", name
        )
        return None
    return library


def reward_sidecar(name: str, runtime: RuntimeContext | None = None) -> RewardSidecar:
    runtime = runtime if runtime is not None else current()
    return RewardSidecar(os.path.join(runtime.library_path(), sidecar_filename(name)))


def plan_warm_start(
    spec: OperatorSpec,
    *,
    cache_context: Hashable,
    name: str | None = None,
    runtime: RuntimeContext | None = None,
    limit: int = 8,
) -> WarmStartPlan | None:
    """Resolve a warm-start plan for searching ``spec``, or ``None``.

    ``None`` means "run cold": no matching library on disk.  Otherwise the
    returned plan carries the root expansion priority and has already seeded
    the runtime's reward cache from the sidecar (when the cache is enabled).
    ``name`` defaults to spec-key auto-discovery (:func:`find_library_name`).
    """
    runtime = runtime if runtime is not None else current()
    if name is None:
        name = find_library_name(spec, runtime)
        if name is None:
            return None
    library = load_library(name, spec, runtime)
    if library is None:
        return None

    digest = context_digest(cache_context)
    rewards = reward_sidecar(name, runtime).load(digest)

    binding = dict(spec.bindings[0]) if spec.bindings else {}
    root = PGraph.root(spec.output_shape, spec.input_shape)
    root_features = feature_vector(root, binding)

    def rank(entry) -> tuple:
        reward = rewards.get(entry.signature)
        if reward is not None:
            return (0, -reward, entry.signature)
        return (1, distance(entry.features, root_features), entry.signature)

    root_priority: list[str] = []
    for entry in sorted(library.complete_entries(), key=rank):
        prefix = library.prefix_signature(entry, depth=1)
        if prefix is not None and prefix not in root_priority:
            root_priority.append(prefix)
        if len(root_priority) >= limit:
            break

    seeded = 0
    if runtime.config.eval_cache:
        reward_cache = runtime.caches.reward
        for signature, reward in sorted(rewards.items()):
            key = (cache_context, signature)
            if key not in reward_cache:
                reward_cache.put(key, reward)
                seeded += 1

    return WarmStartPlan(
        name=name,
        spec_key=library.meta.get("spec_key", ""),
        content_hash=library.content_hash(),
        root_priority=tuple(root_priority),
        seeded_rewards=seeded,
    )


def export_rewards(
    rewards: Mapping[str, float],
    *,
    name: str,
    cache_context: Hashable,
    runtime: RuntimeContext | None = None,
) -> int:
    """Publish a finished search's ``signature -> reward`` samples.

    Appends only rewards the sidecar does not already hold under this
    context; returns how many were written (0 under lock contention — the
    publish is best-effort by design).
    """
    runtime = runtime if runtime is not None else current()
    sidecar = reward_sidecar(name, runtime)
    return sidecar.publish(context_digest(cache_context), rewards)
