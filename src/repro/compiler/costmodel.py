"""A roofline-style analytical cost model for loop-nest programs.

Each stage of a :class:`~repro.codegen.loopnest.LoopNestProgram` is costed as
the maximum of its compute time and its memory time, where the achieved
compute throughput depends on the schedule (tile locality, vectorization,
parallel saturation) and the achieved bandwidth on whether the working set is
cache resident.  Kernel-launch overhead is added per stage, which is what
makes many-stage lowerings of tiny operators unattractive — the same effect
the paper sees with unfused fallback kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.loopnest import LoopNest, LoopNestProgram
from repro.compiler.schedule import Schedule
from repro.compiler.targets import HardwareTarget


@dataclass(frozen=True)
class StageCost:
    """Latency breakdown of one stage under one schedule."""

    stage_name: str
    compute_seconds: float
    memory_seconds: float
    overhead_seconds: float
    achieved_gflops: float

    @property
    def seconds(self) -> float:
        return max(self.compute_seconds, self.memory_seconds) + self.overhead_seconds


@dataclass
class AnalyticalCostModel:
    """Maps (program, schedule, target) to estimated latency."""

    #: efficiency multiplier applied on top of the target's tuned efficiency;
    #: backends use it to model template quality or fallback penalties.
    efficiency_scale: float = 1.0
    #: datatype width in bytes (4 for FP32, 1 for INT8).
    element_bytes: int = 4
    #: additional throughput factor for narrow datatypes (set by quantization).
    datatype_speedup: float = 1.0

    def config_key(self) -> tuple:
        """Hashable description of the knobs that change predicted latencies."""
        return (self.efficiency_scale, self.element_bytes, self.datatype_speedup)

    # -- per-stage model -----------------------------------------------------

    def stage_cost(self, stage: LoopNest, target: HardwareTarget, schedule: Schedule) -> StageCost:
        flops = 2.0 * stage.macs

        # Compute efficiency --------------------------------------------------
        efficiency = target.tuned_efficiency * self.efficiency_scale

        # Vectorization: the innermost extent must cover the vector lanes.
        innermost = stage.extents[-1] if stage.extents else 1
        if schedule.vectorize:
            if innermost % target.vector_width != 0 and innermost >= target.vector_width:
                efficiency *= 0.8
            elif innermost < target.vector_width:
                efficiency *= max(innermost / target.vector_width, 0.25)
        else:
            efficiency *= 0.5

        # Tile locality: the tile working set should fit in cache.
        if schedule.working_set_bytes() > target.cache_kib * 1024:
            efficiency *= 0.5
        # Very small tiles waste reuse on contractions with large reductions.
        reuse = min(schedule.tile, max(stage.macs // max(stage.output_elements, 1), 1))
        efficiency *= min(1.0, 0.25 + reuse / 64.0)

        # Unrolling mildly helps until registers spill.
        efficiency *= 1.0 if schedule.unroll <= 8 else 0.85

        # Parallel saturation.
        iterations = stage.iterations
        if schedule.parallel:
            saturation = min(1.0, iterations / target.saturation_iterations)
            efficiency *= 0.3 + 0.7 * saturation
        else:
            efficiency *= 0.25 if target.is_gpu else 0.5

        efficiency = max(min(efficiency, 1.0), 1e-3)
        achieved = target.peak_flops() * efficiency * self.datatype_speedup
        compute_seconds = flops / achieved if flops else 0.0

        # Memory time ---------------------------------------------------------
        bytes_moved = (
            stage.input_elements + stage.weight_elements + stage.output_elements
        ) * self.element_bytes
        cache_resident = bytes_moved <= target.cache_kib * 1024
        bandwidth = target.bandwidth_bytes() * (1.0 if not cache_resident else 3.0)
        memory_seconds = bytes_moved / bandwidth

        overhead_seconds = target.launch_overhead_us * 1e-6
        return StageCost(
            stage_name=stage.name,
            compute_seconds=compute_seconds,
            memory_seconds=memory_seconds,
            overhead_seconds=overhead_seconds,
            achieved_gflops=achieved / 1e9,
        )

    # -- whole-program model ---------------------------------------------------

    def program_latency(
        self, program: LoopNestProgram, target: HardwareTarget, schedule: Schedule
    ) -> float:
        """End-to-end latency (seconds) of a program under one schedule."""
        return sum(self.stage_cost(stage, target, schedule).seconds for stage in program.stages)

    def program_breakdown(
        self, program: LoopNestProgram, target: HardwareTarget, schedule: Schedule
    ) -> list[StageCost]:
        return [self.stage_cost(stage, target, schedule) for stage in program.stages]
