"""Hardware target descriptions for the three evaluation platforms.

The numbers are public datasheet figures for the devices the paper uses
(NVIDIA Jetson Orin Nano 8 GB: 6-core Cortex-A78AE CPU and a 1024-core Ampere
GPU; NVIDIA A100).  They parameterize the roofline cost model; only relative
magnitudes matter for reproducing the *shape* of the paper's speedups.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareTarget:
    """An execution platform for the analytical cost model."""

    name: str
    #: peak FP32 throughput in GFLOP/s.
    peak_gflops: float
    #: sustainable memory bandwidth in GB/s.
    memory_bandwidth_gbs: float
    #: last-level cache (or shared-memory) capacity in KiB.
    cache_kib: float
    #: SIMD/warp width in FP32 lanes.
    vector_width: int
    #: per-kernel launch / dispatch overhead in microseconds.
    launch_overhead_us: float
    #: fraction of peak a well-tuned dense kernel typically achieves.
    tuned_efficiency: float
    #: amount of parallel work (iterations) needed to saturate the machine.
    saturation_iterations: int
    #: whether the device is a GPU (affects fallback behaviour of backends).
    is_gpu: bool
    #: throughput multiplier when INT8 arithmetic is used (quantization study).
    int8_speedup: float = 2.0

    def peak_flops(self) -> float:
        return self.peak_gflops * 1e9

    def bandwidth_bytes(self) -> float:
        return self.memory_bandwidth_gbs * 1e9


#: 6-core Arm Cortex-A78AE @ ~1.5 GHz with 2x128-bit NEON pipes per core.
MOBILE_CPU = HardwareTarget(
    name="mobile_cpu",
    peak_gflops=70.0,
    memory_bandwidth_gbs=34.0,
    cache_kib=2048.0,
    vector_width=4,
    launch_overhead_us=2.0,
    tuned_efficiency=0.60,
    saturation_iterations=20_000,
    is_gpu=False,
    int8_speedup=2.5,
)

#: 1024-core Ampere GPU (Jetson Orin Nano), FP32 without tensor cores.
MOBILE_GPU = HardwareTarget(
    name="mobile_gpu",
    peak_gflops=1280.0,
    memory_bandwidth_gbs=68.0,
    cache_kib=4096.0,
    vector_width=32,
    launch_overhead_us=12.0,
    tuned_efficiency=0.55,
    saturation_iterations=400_000,
    is_gpu=True,
    int8_speedup=2.0,
)

#: NVIDIA A100-SXM4: 19.5 TFLOP/s FP32 (tensor cores unused for FP32, as the
#: paper notes TVM cannot use them without TF32).
A100 = HardwareTarget(
    name="a100",
    peak_gflops=19500.0,
    memory_bandwidth_gbs=1555.0,
    cache_kib=40_960.0,
    vector_width=32,
    launch_overhead_us=8.0,
    tuned_efficiency=0.65,
    saturation_iterations=4_000_000,
    is_gpu=True,
    int8_speedup=2.0,
)

ALL_TARGETS: tuple[HardwareTarget, ...] = (MOBILE_CPU, MOBILE_GPU, A100)


def target_by_name(name: str) -> HardwareTarget:
    for target in ALL_TARGETS:
        if target.name == name:
            return target
    raise KeyError(f"unknown hardware target {name!r}")
