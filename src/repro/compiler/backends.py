"""The two compiler personalities: a TVM-like tuner and an Inductor-like template backend.

``TVMBackend`` mirrors TVM MetaSchedule: it sweeps the schedule space per
operator (the "tuning trials") and keeps the best analytical latency; it
treats every loop nest the same way, so novel operators benefit from tuning
just like standard ones — the property the paper relies on.

``InductorBackend`` mirrors TorchInductor with ``max-autotune``: it recognizes
a small set of dense-contraction templates; a matched operator gets a
well-tuned schedule, an unmatched operator falls back to pre-compiled
(ATen-like) kernels executed stage by stage with reduced efficiency — much
reduced on mobile platforms, which is exactly the behaviour behind the paper's
observation that TorchInductor is unstable on the Jetson-class devices
(Section 9.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.codegen.loopnest import LoopNest, LoopNestProgram
from repro.compiler.costmodel import AnalyticalCostModel
from repro.compiler.schedule import Schedule, default_schedule, schedule_space
from repro.compiler.targets import HardwareTarget
from repro.nn.models.common import ConvSlot


@dataclass(frozen=True)
class TuneResult:
    """Outcome of compiling one operator for one target."""

    latency_seconds: float
    schedule: Schedule
    backend: str
    trials: int
    used_fallback: bool = False

    @property
    def latency_ms(self) -> float:
        return self.latency_seconds * 1e3


class CompilerBackend:
    """Interface shared by the two compiler personalities.

    ``compile`` is memoized through the runtime context's compile cache:
    tuning is a pure function of (backend configuration, program, target),
    and both the search loop and the experiment harness compile the same loop
    nests over and over (identical slots repeat within and across backbone
    profiles).  Backends implement ``_compile_uncached``; anything that
    changes tuning results must be reflected in ``config_key``.
    """

    name = "base"

    def config_key(self) -> tuple:
        """Hashable description of every knob that affects compile results."""
        return (self.name,)

    def compile(
        self, program: LoopNestProgram, target: HardwareTarget, runtime=None
    ) -> TuneResult:
        """Tune ``program`` for ``target``, memoized in the context's compile cache.

        ``runtime`` is the :class:`~repro.runtime.RuntimeContext` to cache
        into; ``None`` resolves the ambient context.
        """
        # Imported lazily: repro.search re-exports modules that import this
        # one, so a module-level import would form a cycle.
        from repro.runtime import current

        context = runtime if runtime is not None else current()
        key = (self.config_key(), program.structural_key(), target)
        return context.cached_compile(
            key, lambda: self._compile_uncached(program, target)
        )

    def _compile_uncached(self, program: LoopNestProgram, target: HardwareTarget) -> TuneResult:
        raise NotImplementedError


@dataclass
class TVMBackend(CompilerBackend):
    """TVM-MetaSchedule-like exhaustive schedule tuning."""

    trials: int = 64
    cost_model: AnalyticalCostModel = field(default_factory=AnalyticalCostModel)
    name: str = "tvm"

    def config_key(self) -> tuple:
        return (self.name, self.trials, self.cost_model.config_key())

    def _compile_uncached(self, program: LoopNestProgram, target: HardwareTarget) -> TuneResult:
        best_latency = float("inf")
        best_schedule = default_schedule()
        trials = 0
        for schedule in schedule_space():
            if trials >= self.trials:
                break
            trials += 1
            latency = self.cost_model.program_latency(program, target, schedule)
            if latency < best_latency:
                best_latency = latency
                best_schedule = schedule
        return TuneResult(
            latency_seconds=best_latency,
            schedule=best_schedule,
            backend=self.name,
            trials=trials,
        )


@dataclass
class InductorBackend(CompilerBackend):
    """TorchInductor-like template matching with ATen fallback."""

    #: efficiency of a matched template relative to a fully tuned kernel.
    template_quality: float = 1.05
    #: efficiency of Triton-generated code for non-template operators on
    #: server GPUs (Inductor handles most novel operators well on large GPUs).
    gpu_fallback_efficiency: float = 0.8
    #: efficiency of the pre-compiled ATen kernels used on mobile platforms,
    #: where Inductor keeps few templates and falls back often (Section 9.2).
    mobile_fallback_efficiency: float = 0.5
    #: extra per-stage dispatch overhead of eager fallback execution.
    fallback_overhead_multiplier: float = 2.0
    name: str = "torchinductor"

    def config_key(self) -> tuple:
        return (
            self.name,
            self.template_quality,
            self.gpu_fallback_efficiency,
            self.mobile_fallback_efficiency,
            self.fallback_overhead_multiplier,
        )

    def _matches_template(self, program: LoopNestProgram) -> bool:
        """Whether the operator looks like a conv/matmul the templates cover.

        Templates cover single-stage dense contractions whose reduction depth
        and output size are both regular and large enough; multi-stage
        programs (the staged lowerings Syno produces) and exotic iteration
        spaces fall back.
        """
        if len(program.stages) != 1:
            return False
        stage = program.stages[0]
        if stage.output_elements == 0:
            return False
        reduction_depth = stage.macs // max(stage.output_elements, 1)
        if reduction_depth < 8:
            return False
        # Templates are written for power-of-two-friendly output tile shapes
        # (conv and matmul outputs qualify; tiny or ragged outputs do not).
        return stage.output_elements % 4 == 0 and stage.output_elements >= 64

    def _compile_uncached(self, program: LoopNestProgram, target: HardwareTarget) -> TuneResult:
        if self._matches_template(program):
            cost_model = AnalyticalCostModel(efficiency_scale=self.template_quality)
            # max-autotune tries a handful of template variants.
            best = float("inf")
            best_schedule = default_schedule()
            trials = 0
            for schedule in list(schedule_space(tiles=(32, 64, 128), unrolls=(4, 8)))[:12]:
                trials += 1
                latency = cost_model.program_latency(program, target, schedule)
                if latency < best:
                    best = latency
                    best_schedule = schedule
            return TuneResult(best, best_schedule, self.name, trials, used_fallback=False)

        fallback_efficiency = (
            self.gpu_fallback_efficiency if target.name == "a100" else self.mobile_fallback_efficiency
        )
        cost_model = AnalyticalCostModel(efficiency_scale=fallback_efficiency)
        schedule = default_schedule()
        latency = 0.0
        for stage in program.stages:
            stage_cost = cost_model.stage_cost(stage, target, schedule)
            latency += max(stage_cost.compute_seconds, stage_cost.memory_seconds)
            latency += stage_cost.overhead_seconds * self.fallback_overhead_multiplier
        return TuneResult(latency, schedule, self.name, trials=1, used_fallback=True)


# ---------------------------------------------------------------------------
# Loop nests for standard layers described only by a ConvSlot
# ---------------------------------------------------------------------------


def loopnest_for_slot(slot: ConvSlot, batch: int = 1) -> LoopNestProgram:
    """A single-stage loop-nest program for a standard (possibly grouped) conv.

    Used for the baseline layers of the backbone models (including grouped and
    depthwise convolutions that are not substitution targets) so that both the
    baseline and the Syno-optimized models are costed through the same
    pipeline.
    """
    macs = slot.macs(batch)
    out_spatial = slot.output_spatial
    output_elements = batch * slot.out_channels * out_spatial * out_spatial
    input_elements = batch * slot.in_channels * slot.spatial * slot.spatial
    stage = LoopNest(
        name=f"{slot.name}.conv",
        extents=(
            batch,
            slot.out_channels,
            out_spatial,
            out_spatial,
            slot.in_channels // slot.groups,
            slot.kernel_size,
            slot.kernel_size,
        ),
        macs=macs,
        input_elements=input_elements,
        weight_elements=slot.parameters(),
        output_elements=output_elements,
    )
    return LoopNestProgram(
        operator_name=slot.name,
        stages=(stage,),
        naive_macs=macs,
        parameter_count=slot.parameters(),
        input_elements=input_elements,
        output_elements=output_elements,
    )


def linear_loopnest(name: str, batch_tokens: int, in_features: int, out_features: int) -> LoopNestProgram:
    """A single-stage loop nest for a dense projection (GPT-2 QKV slots)."""
    macs = batch_tokens * in_features * out_features
    stage = LoopNest(
        name=f"{name}.matmul",
        extents=(batch_tokens, out_features, in_features),
        macs=macs,
        input_elements=batch_tokens * in_features,
        weight_elements=in_features * out_features,
        output_elements=batch_tokens * out_features,
    )
    return LoopNestProgram(
        operator_name=name,
        stages=(stage,),
        naive_macs=macs,
        parameter_count=in_features * out_features,
        input_elements=batch_tokens * in_features,
        output_elements=batch_tokens * out_features,
    )
