"""The schedule space explored by the tuning backend.

A schedule decides how a loop-nest stage is implemented: the tile footprint
kept in cache/shared memory, whether the innermost loop is vectorized, the
unroll factor and whether outer loops are parallelized across cores or SMs.
The analytical cost model translates these choices into achieved efficiency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Schedule:
    """One point in the schedule space."""

    #: square tile edge (elements) the stage keeps resident per block of work.
    tile: int = 32
    #: whether the innermost loop is vectorized to the target's lanes.
    vectorize: bool = True
    #: unroll factor for the reduction loop.
    unroll: int = 4
    #: whether outer loops are parallelized across cores / SMs.
    parallel: bool = True

    def working_set_bytes(self) -> float:
        """FP32 footprint of one tile of work (two inputs + one accumulator)."""
        return 3 * self.tile * self.tile * 4.0

    def describe(self) -> str:
        flags = []
        if self.vectorize:
            flags.append("vec")
        if self.parallel:
            flags.append("par")
        return f"tile{self.tile}x{self.unroll}" + ("+" + "+".join(flags) if flags else "")


def default_schedule() -> Schedule:
    """The schedule a non-tuning backend would pick without searching."""
    return Schedule(tile=32, vectorize=True, unroll=4, parallel=True)


def schedule_space(
    tiles: tuple[int, ...] = (8, 16, 32, 64, 128),
    unrolls: tuple[int, ...] = (1, 2, 4, 8),
) -> Iterator[Schedule]:
    """The grid the TVM-like tuner sweeps (vectorization/parallelism always tried)."""
    for tile, unroll, vectorize, parallel in itertools.product(
        tiles, unrolls, (True, False), (True, False)
    ):
        yield Schedule(tile=tile, vectorize=vectorize, unroll=unroll, parallel=parallel)
