"""A simulated tensor compiler: targets, schedules, cost model and backends.

The paper evaluates latency by tuning every operator with TVM MetaSchedule and
with TorchInductor on three hardware platforms (mobile CPU, mobile GPU, A100).
Offline we cannot run either compiler or the hardware, so this package stands
in for them with an analytical model:

* :mod:`repro.compiler.targets` — parameterized hardware descriptions of the
  three platforms (peak throughput, bandwidth, caches, launch overheads);
* :mod:`repro.compiler.schedule` — the schedule space (tiling, vectorization,
  parallelization, unrolling) the tuner explores;
* :mod:`repro.compiler.costmodel` — a roofline-style analytical model mapping
  (loop-nest program, target, schedule) to latency;
* :mod:`repro.compiler.backends` — the two compiler personalities: a
  TVM-MetaSchedule-like tuning backend that searches the schedule space per
  operator, and a TorchInductor-like template backend that is fast when an
  operator matches one of its templates and falls back to slower pre-compiled
  kernels otherwise (reproducing the fallback behaviour the paper observes on
  mobile platforms).
"""

from repro.compiler.targets import HardwareTarget, MOBILE_CPU, MOBILE_GPU, A100, ALL_TARGETS
from repro.compiler.schedule import Schedule, default_schedule, schedule_space
from repro.compiler.costmodel import AnalyticalCostModel, StageCost
from repro.compiler.backends import (
    CompilerBackend,
    InductorBackend,
    TVMBackend,
    TuneResult,
    loopnest_for_slot,
)

__all__ = [
    "HardwareTarget",
    "MOBILE_CPU",
    "MOBILE_GPU",
    "A100",
    "ALL_TARGETS",
    "Schedule",
    "default_schedule",
    "schedule_space",
    "AnalyticalCostModel",
    "StageCost",
    "CompilerBackend",
    "TVMBackend",
    "InductorBackend",
    "TuneResult",
    "loopnest_for_slot",
]
