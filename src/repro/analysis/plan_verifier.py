"""Static verification of compiled :class:`~repro.codegen.plan.ExecutionPlan`s.

:func:`compile_plan` bakes every transpose order, reshape target, unfold
gather index vector and einsum subscript into a flat step list at compile
time.  Nothing re-checks that geometry before the first forward call — a
compiler bug (or a corrupted cached plan) surfaces as a numpy broadcast
error deep inside proxy training, or worse, as silently wrong numerics.

:func:`verify_plan` replays the plan **abstractly**: it propagates a shape
through every step without allocating a single array, and checks each step's
precomputed metadata against the shape that actually reaches it —

* transpose orders are permutations and their cached inverses invert them;
* reshapes preserve element count and match their recorded input shape;
* roll/sum/stride axes are in bounds;
* unfold gather indices are within the padded extent and the
  pad → gather → reshape → transpose pipeline is internally consistent;
* einsum subscripts have one subscript per operand, one label per axis,
  consistent label extents across operands, and an output that only uses
  input labels;
* every differentiable step has a backward: contraction operands (value and
  weights) each carry a VJP recipe whose recorded full shape matches the
  operand, weight indices address real weights, and view steps expose a
  callable ``grad``;
* the final propagated shape equals the plan's declared output shape.

Violations raise :class:`PlanVerificationError` naming the step index, the
step itself and the inferred shapes, so a failure reads like a stack trace
through the compiled program instead of a broadcast error at train time.

Verification is wired into :func:`repro.codegen.plan.cached_plan` behind the
``RuntimeConfig.verify_plans`` knob (``REPRO_VERIFY_PLANS``): it runs once
per memoized plan, so it is effectively free under tests and CI while
staying off the training hot path by default.
"""

from __future__ import annotations

import math

import numpy as np

from repro.codegen.plan import (
    BroadcastStep,
    ContractionStep,
    ExecutionPlan,
    ReshapeStep,
    RollStep,
    StrideSliceStep,
    SumStep,
    TransposeStep,
    UnfoldStep,
)


class PlanVerificationError(Exception):
    """A compiled plan failed static verification.

    Carries enough structure to debug without re-running the compiler:
    ``step_index`` / ``step`` locate the offending step inside
    ``plan.describe()`` and ``shape`` is the abstract shape that reached it.
    """

    def __init__(
        self,
        message: str,
        step_index: int | None = None,
        step: object | None = None,
        shape: tuple[int, ...] | None = None,
    ) -> None:
        location = ""
        if step_index is not None:
            location = f"step {step_index} ({step!r})"
            if shape is not None:
                location += f" with input shape {shape}"
            location += ": "
        super().__init__(location + message)
        self.step_index = step_index
        self.step = step
        self.shape = shape


def verify_plan(plan: ExecutionPlan) -> None:
    """Statically verify ``plan``; raises :class:`PlanVerificationError`."""
    shape = tuple(plan.input_shape)
    for index, step in enumerate(plan.steps):
        def fail(message: str) -> None:
            raise PlanVerificationError(message, index, step, shape)

        if isinstance(step, TransposeStep):
            shape = _verify_transpose(step, shape, fail)
        elif isinstance(step, ReshapeStep):
            shape = _verify_reshape(step, shape, fail)
        elif isinstance(step, RollStep):
            shape = _verify_roll(step, shape, fail)
        elif isinstance(step, BroadcastStep):
            shape = _verify_broadcast(step, shape, fail)
        elif isinstance(step, SumStep):
            shape = _verify_sum(step, shape, fail)
        elif isinstance(step, StrideSliceStep):
            shape = _verify_stride(step, shape, fail)
        elif isinstance(step, UnfoldStep):
            shape = _verify_unfold(step, shape, fail)
        elif isinstance(step, ContractionStep):
            shape = _verify_contraction(step, shape, plan.weight_count, fail)
        else:
            fail(f"unknown step type {type(step).__name__}")
        if not isinstance(step, ContractionStep) and not callable(
            getattr(step, "grad", None)
        ):
            fail("step has no callable grad — backward coverage is broken")
    if shape != tuple(plan.output_shape):
        raise PlanVerificationError(
            f"propagated output shape {shape} != declared output shape "
            f"{tuple(plan.output_shape)}"
        )


# ---------------------------------------------------------------------------
# Per-step shape transfer functions
# ---------------------------------------------------------------------------


def _verify_transpose(step: TransposeStep, shape, fail) -> tuple[int, ...]:
    order = tuple(step.order)
    if sorted(order) != list(range(len(order))):
        fail(f"order {order} is not a permutation")
    if len(order) != len(shape):
        fail(f"order has {len(order)} axes, input has {len(shape)}")
    expected_inverse = tuple(int(i) for i in np.argsort(order))
    if tuple(step.inverse) != expected_inverse:
        fail(f"cached inverse {step.inverse} does not invert order {order}")
    return tuple(shape[i] for i in order)


def _verify_reshape(step: ReshapeStep, shape, fail) -> tuple[int, ...]:
    if tuple(step.input_shape) != shape:
        fail(f"recorded input shape {tuple(step.input_shape)} != actual {shape}")
    if math.prod(step.shape) != math.prod(shape):
        fail(
            f"reshape to {tuple(step.shape)} changes element count "
            f"({math.prod(shape)} -> {math.prod(step.shape)})"
        )
    return tuple(step.shape)


def _verify_roll(step: RollStep, shape, fail) -> tuple[int, ...]:
    if not -len(shape) <= step.axis < len(shape):
        fail(f"roll axis {step.axis} out of bounds for rank {len(shape)}")
    return shape


def _verify_broadcast(step: BroadcastStep, shape, fail) -> tuple[int, ...]:
    target = tuple(step.shape)
    if target[:-1] != shape:
        fail(f"broadcast target {target} does not extend input {shape}")
    if target[-1] < 1:
        fail(f"broadcast extent {target[-1]} must be positive")
    return target


def _verify_sum(step: SumStep, shape, fail) -> tuple[int, ...]:
    if tuple(step.input_shape) != shape:
        fail(f"recorded input shape {tuple(step.input_shape)} != actual {shape}")
    axis = step.axis
    if not -len(shape) <= axis < len(shape):
        fail(f"sum axis {axis} out of bounds for rank {len(shape)}")
    axis %= len(shape)
    return shape[:axis] + shape[axis + 1 :]


def _verify_stride(step: StrideSliceStep, shape, fail) -> tuple[int, ...]:
    if tuple(step.input_shape) != shape:
        fail(f"recorded input shape {tuple(step.input_shape)} != actual {shape}")
    if len(step.slices) != len(shape):
        fail(f"{len(step.slices)} slices for rank {len(shape)}")
    return tuple(
        len(range(*sl.indices(extent))) for sl, extent in zip(step.slices, shape)
    )


def _verify_unfold(step: UnfoldStep, shape, fail) -> tuple[int, ...]:
    rank = len(shape)
    if not 0 <= step.axis < rank:
        fail(f"unfold axis {step.axis} out of bounds for rank {rank}")
    if len(step.pad_width) != rank:
        fail(f"pad_width has {len(step.pad_width)} entries for rank {rank}")
    if any(lo < 0 or hi < 0 for lo, hi in step.pad_width):
        fail(f"negative padding in {tuple(step.pad_width)}")
    padded = tuple(
        extent + lo + hi for extent, (lo, hi) in zip(shape, step.pad_width)
    )
    if tuple(step.padded_shape) != padded:
        fail(f"recorded padded shape {tuple(step.padded_shape)} != derived {padded}")
    if step.extent != shape[step.axis]:
        fail(f"recorded extent {step.extent} != axis extent {shape[step.axis]}")

    gather = np.asarray(step.gather)
    if gather.ndim != 1 or not np.issubdtype(gather.dtype, np.integer):
        fail("gather indices must be a flat integer vector")
    if gather.size != step.extent * step.window:
        fail(
            f"gather has {gather.size} indices, expected extent*window = "
            f"{step.extent * step.window}"
        )
    if gather.size and (gather.min() < 0 or gather.max() >= padded[step.axis]):
        fail(
            f"gather indices [{gather.min()}, {gather.max()}] out of bounds for "
            f"padded extent {padded[step.axis]}"
        )

    taken = padded[: step.axis] + (int(gather.size),) + padded[step.axis + 1 :]
    if math.prod(step.reshape_shape) != math.prod(taken):
        fail(
            f"reshape to {tuple(step.reshape_shape)} changes element count of "
            f"gathered shape {taken}"
        )
    axes = tuple(step.transpose_axes)
    if sorted(axes) != list(range(len(step.reshape_shape))):
        fail(f"transpose axes {axes} not a permutation of the reshaped rank")
    if tuple(step.inverse_axes) != tuple(int(i) for i in np.argsort(axes)):
        fail(f"cached inverse axes {step.inverse_axes} do not invert {axes}")
    reshaped = tuple(step.reshape_shape)
    out = tuple(reshaped[i] for i in axes)
    expected = shape + (step.window,)
    if out != expected:
        fail(f"unfold produces {out}, expected {expected}")
    return out


def _parse_subscripts(subscripts: str, fail) -> tuple[list[str], str]:
    if "->" not in subscripts:
        fail(f"subscripts {subscripts!r} missing '->'")
    lhs, output_sub = subscripts.split("->", 1)
    return lhs.split(","), output_sub


def _verify_contraction(
    step: ContractionStep, shape, weight_count: int, fail
) -> tuple[int, ...]:
    operand_subs, output_sub = _parse_subscripts(step.subscripts, fail)
    if len(operand_subs) != len(step.operands):
        fail(
            f"{len(operand_subs)} einsum subscripts for {len(step.operands)} operands"
        )
    if len(step.operand_shapes) != len(step.operands):
        fail(
            f"{len(step.operand_shapes)} operand shapes for {len(step.operands)} operands"
        )

    extent_of: dict[str, int] = {}
    value_positions: list[int] = []
    for position, ((kind, payload), sub, op_shape) in enumerate(
        zip(step.operands, operand_subs, step.operand_shapes)
    ):
        if len(sub) != len(op_shape):
            fail(
                f"operand {position} subscript {sub!r} has {len(sub)} labels for "
                f"shape {tuple(op_shape)}"
            )
        for label, extent in zip(sub, op_shape):
            if extent_of.setdefault(label, extent) != extent:
                fail(
                    f"label {label!r} has extent {extent} in operand {position} "
                    f"but {extent_of[label]} elsewhere"
                )
        if kind == "value":
            value_positions.append(position)
            if tuple(op_shape) != shape:
                fail(
                    f"value operand compiled for shape {tuple(op_shape)}, "
                    f"got {shape}"
                )
        elif kind == "weight":
            if not isinstance(payload, int) or not 0 <= payload < weight_count:
                fail(
                    f"weight operand {position} addresses weight {payload!r} "
                    f"(plan has {weight_count} weights)"
                )
        elif kind == "ones":
            if tuple(op_shape) != (payload,):
                fail(
                    f"ones operand {position} has extent {payload} but shape "
                    f"{tuple(op_shape)}"
                )
        else:
            fail(f"unknown operand kind {kind!r} at position {position}")
    if len(value_positions) != 1:
        fail(f"expected exactly one value operand, found {len(value_positions)}")

    input_labels = set().union(*operand_subs)
    unknown = [label for label in output_sub if label not in input_labels]
    if unknown:
        fail(f"output labels {unknown} appear in no operand subscript")
    if len(set(output_sub)) != len(output_sub):
        fail(f"output subscript {output_sub!r} repeats a label")

    out_shape = tuple(extent_of[label] for label in output_sub)
    if tuple(step.output_shape) != out_shape:
        fail(
            f"recorded output shape {tuple(step.output_shape)} != derived "
            f"{out_shape}"
        )

    # Backward coverage: every differentiable operand carries a VJP recipe
    # compiled against the operand's true shape.
    for position, (kind, _) in enumerate(step.operands):
        if kind == "ones":
            if position in step.backwards:
                fail(f"ones operand {position} has a spurious backward recipe")
            continue
        recipe = step.backwards.get(position)
        if recipe is None:
            fail(
                f"{kind} operand {position} has no backward recipe — its "
                "gradient would silently vanish"
            )
        if tuple(recipe.full_shape) != tuple(step.operand_shapes[position]):
            fail(
                f"backward recipe for operand {position} targets shape "
                f"{tuple(recipe.full_shape)}, operand has "
                f"{tuple(step.operand_shapes[position])}"
            )
    return out_shape
