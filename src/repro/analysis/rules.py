"""The lint rule catalog.

Five rules guard the invariants PR 4 and PR 5 established dynamically:

* ``env-confinement`` — ``REPRO_*`` environment reads happen only in
  ``src/repro/runtime/`` (the :func:`RuntimeConfig.from_env` process edge).
* ``mutable-global`` — no module-level mutable state (caches, counters,
  RNGs) outside ``runtime/``; process-global state is what broke
  serial-vs-sharded parity before contexts existed.
* ``nondeterminism`` — no ambient randomness (global ``random.*`` /
  ``np.random.*``, unseeded generators), no wall-clock reads in
  search/codegen/cache-key paths, no iteration over unordered ``set``s.
* ``runtime-threading`` — a function that accepts ``runtime=`` must forward
  it to every callee that also accepts ``runtime=``; a dropped context
  silently re-resolves the ambient one, which is exactly the bug class the
  explicit-context API was built to kill.
* ``exception-hygiene`` — no bare ``except:`` and no silently swallowed
  ``except Exception``/``BaseException``; a handler that catches everything
  and does nothing hides exactly the worker crashes and store corruption
  the fault-tolerance layer exists to surface.

Rules are pure AST analyses: no imports of the code under analysis, no
execution.  Every finding's ``key`` is content-based (symbol or expression,
never a line number) so baselines survive unrelated edits.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator, Sequence

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    describe_expr,
    import_aliases,
    resolve_dotted,
)

#: directory that is allowed to read ``REPRO_*`` knobs and hold process state.
RUNTIME_DIR = "runtime"


class EnvConfinementRule(Rule):
    """``REPRO_*`` environment reads outside ``src/repro/runtime/``.

    Catches what the old ``grep 'os\\.(environ|getenv)'`` guard caught, plus
    what it missed: aliased imports (``from os import environ as env``,
    ``import os as _os``) and computed keys (``os.environ[prefix + name]``),
    which cannot be proven to avoid the ``REPRO_`` namespace and are
    therefore flagged too.
    """

    rule_id = "env-confinement"
    description = "REPRO_* environment reads outside src/repro/runtime/"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.in_directory(RUNTIME_DIR):
            return
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            access = self._environ_access(node, aliases)
            if access is None:
                continue
            kind, key_expr = access
            yield from self._judge(module, node, kind, key_expr)

    def _environ_access(
        self, node: ast.AST, aliases: dict[str, str]
    ) -> tuple[str, ast.AST | None] | None:
        """(description, key expression) when ``node`` reads the environment."""
        if isinstance(node, ast.Subscript):
            # Only reads: writes/deletes (restoring saved values, test setup)
            # steer the environment rather than consume it.
            if isinstance(node.ctx, ast.Load):
                if resolve_dotted(node.value, aliases) == "os.environ":
                    return "os.environ[...]", node.slice
        elif isinstance(node, ast.Call):
            target = resolve_dotted(node.func, aliases)
            if target == "os.getenv" and node.args:
                return "os.getenv(...)", node.args[0]
            if target == "os.environ.get" and node.args:
                return "os.environ.get(...)", node.args[0]
            # environ.get(...) through `from os import environ [as alias]`
            if (
                target is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and resolve_dotted(node.func.value, aliases) == "os.environ"
                and node.args
            ):
                return "environ.get(...)", node.args[0]
        elif isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    if resolve_dotted(comparator, aliases) == "os.environ":
                        return "membership test on os.environ", node.left
        return None

    def _judge(
        self, module: ModuleSource, node: ast.AST, kind: str, key_expr: ast.AST | None
    ) -> Iterator[Finding]:
        if isinstance(key_expr, ast.Constant) and isinstance(key_expr.value, str):
            name = key_expr.value
            if name.startswith("REPRO_"):
                yield self.finding(
                    module,
                    node,
                    f"{kind} reads {name!r} outside runtime/ — route it through "
                    "RuntimeConfig.from_env()",
                    key=name,
                )
            return
        # A computed (or missing) key cannot be proven to stay out of the
        # REPRO_* namespace, so confinement cannot be verified statically.
        rendered = describe_expr(key_expr) if key_expr is not None else "<unknown>"
        yield self.finding(
            module,
            node,
            f"{kind} with computed key {rendered} outside runtime/ — cannot "
            "prove it avoids the REPRO_* namespace",
            key=rendered,
        )


#: constructors whose module-level result is process-global mutable state.
_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
    "itertools.count",
    "numpy.random.default_rng",
    "random.Random",
    "threading.Lock",
    "threading.RLock",
}


class MutableGlobalRule(Rule):
    """Module-level mutable state outside ``runtime/``.

    Flags module-level assignments of dict/list/set displays and
    comprehensions, known mutable-factory calls (``defaultdict``,
    ``itertools.count``, ``random.Random``, ...), and any ``global``
    statement rebinding module state from a function body.  Nonempty
    ALL_CAPS display assignments are treated as constant lookup tables and
    skipped (the idiom for static registries); empty displays are always
    flagged — an empty module-level ``{}`` is a cache in waiting.
    """

    rule_id = "mutable-global"
    description = "module-level mutable state outside src/repro/runtime/"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        if module.in_directory(RUNTIME_DIR):
            return
        aliases = import_aliases(module.tree)
        for stmt in module.tree.body:
            yield from self._check_assignment(module, stmt, aliases)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    yield self.finding(
                        module,
                        node,
                        f"'global {name}' rebinds module state from a function "
                        "— hold it on a RuntimeContext instead",
                        key=f"global:{name}",
                    )

    def _check_assignment(
        self, module: ModuleSource, stmt: ast.stmt, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            return
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names or all(n.startswith("__") and n.endswith("__") for n in names):
            return
        verdict = self._mutable_value(value, aliases)
        if verdict is None:
            return
        kind, is_display = verdict
        if is_display and all(n.isupper() for n in names) and self._nonempty(value):
            return  # constant ALL_CAPS lookup table
        for name in names:
            yield self.finding(
                module,
                stmt,
                f"module-level mutable {kind} {name!r} — process-global state "
                "belongs on a RuntimeContext",
                key=name,
            )

    @staticmethod
    def _nonempty(value: ast.AST) -> bool:
        if isinstance(value, (ast.Dict,)):
            return bool(value.keys)
        if isinstance(value, (ast.List, ast.Set)):
            return bool(value.elts)
        return True  # comprehensions produce computed, non-table contents

    @staticmethod
    def _mutable_value(
        value: ast.AST, aliases: dict[str, str]
    ) -> tuple[str, bool] | None:
        """(kind, is_constant_table_candidate) when the value is mutable."""
        if isinstance(value, ast.Dict):
            return "dict", True
        if isinstance(value, ast.List):
            return "list", True
        if isinstance(value, ast.Set):
            return "set", True
        if isinstance(value, (ast.DictComp, ast.ListComp, ast.SetComp)):
            return "comprehension", False
        if isinstance(value, ast.Call):
            target = resolve_dotted(value.func, aliases)
            if target in _MUTABLE_FACTORIES:
                return f"{target}()", False
            bare = target.rsplit(".", 1)[-1] if target else None
            if bare in {"defaultdict", "OrderedDict", "Counter", "deque"}:
                return f"{bare}()", False
        return None


#: stateful functions of the global `random` module generator.
_RANDOM_STATEFUL = {
    "seed", "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "lognormvariate",
    "expovariate", "betavariate", "gammavariate", "triangular",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes",
}

#: stateful functions of numpy's legacy global RandomState.
_NP_RANDOM_STATEFUL = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "bytes", "shuffle", "permutation", "choice", "uniform",
    "normal", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "gamma", "random_integers",
}

#: directories where wall-clock reads poison cache keys or reproducibility.
_CLOCK_SENSITIVE_DIRS = ("search", "codegen", "core", "compiler", "results")


class NondeterminismRule(Rule):
    """Ambient randomness, wall-clock reads and unordered-set iteration.

    The determinism contract (PR 4: bit-identical serial vs sharded runs)
    only holds if every source of entropy is owned by a context-seeded
    generator.  Flags global ``random.*`` / ``np.random.*`` calls, unseeded
    ``np.random.default_rng()``, ``time.time()`` / ``datetime.now()`` in
    search/codegen/cache-key paths, and materializing or iterating a ``set``
    without sorting (``sorted(set(...))`` is fine; ``list(set(...))`` leaks
    hash-seed ordering into whatever consumes it).
    """

    rule_id = "nondeterminism"
    description = "ambient RNG, wall-clock or set-iteration nondeterminism"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        clock_sensitive = any(module.in_directory(d) for d in _CLOCK_SENSITIVE_DIRS)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases, clock_sensitive)
            elif isinstance(node, ast.For):
                yield from self._check_set_iteration(module, node.iter, aliases)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_set_iteration(module, generator.iter, aliases)

    def _check_call(
        self,
        module: ModuleSource,
        node: ast.Call,
        aliases: dict[str, str],
        clock_sensitive: bool,
    ) -> Iterator[Finding]:
        target = resolve_dotted(node.func, aliases)
        if target is None:
            # Builtins are never imported, so they don't resolve: catch
            # tuple(set(...)) / list(set(...)) here.
            if isinstance(node.func, ast.Name) and node.func.id in ("tuple", "list"):
                if node.args and self._is_set_expr(node.args[0], aliases):
                    yield self.finding(
                        module,
                        node,
                        f"{node.func.id}(set(...)) materializes hash order — "
                        "wrap in sorted(...) for a stable sequence",
                        key=f"{node.func.id}(set)",
                    )
            return
        if target.startswith("random."):
            name = target.split(".", 1)[1]
            if name in _RANDOM_STATEFUL:
                yield self.finding(
                    module,
                    node,
                    f"global random.{name}() uses the process-wide generator — "
                    "use a seeded random.Random or the context RNG",
                    key=target,
                )
        elif target in ("numpy.random.default_rng", "np.random.default_rng"):
            if not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "np.random.default_rng() without a seed draws OS entropy — "
                    "seed it from the runtime context",
                    key=target,
                )
        elif target.startswith("numpy.random."):
            name = target.rsplit(".", 1)[1]
            if name in _NP_RANDOM_STATEFUL:
                yield self.finding(
                    module,
                    node,
                    f"global np.random.{name}() uses numpy's process-wide state — "
                    "use a context-owned Generator",
                    key=target,
                )
        elif target in ("time.time", "time.time_ns", "datetime.datetime.now",
                        "datetime.datetime.utcnow", "datetime.now", "datetime.utcnow"):
            if clock_sensitive:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {target}() in a search/codegen/cache-key "
                    "path makes results time-dependent",
                    key=target,
                )
    def _check_set_iteration(
        self, module: ModuleSource, iter_expr: ast.AST, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        if self._is_set_expr(iter_expr, aliases):
            yield self.finding(
                module,
                iter_expr,
                "iterating a set leaks hash order — sort before iterating "
                "anything that feeds a fingerprint or cache key",
                key=f"iter:{describe_expr(iter_expr)}",
            )

    @staticmethod
    def _is_set_expr(node: ast.AST, aliases: dict[str, str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return resolve_dotted(node.func, aliases) is None and (
                isinstance(node.func, ast.Name) and node.func.id == "set"
            )
        return False


class RuntimeThreadingRule(Rule):
    """Functions that accept ``runtime=`` but drop it when calling a callee
    that also accepts ``runtime=``.

    A dropped context silently falls back to the ambient resolution
    (:func:`repro.runtime.current`), which is correct only by accident: under
    ``with other_ctx.activate():`` the callee would cache into the wrong
    context.  The rule builds a whole-codebase set of function names whose
    signature includes ``runtime`` (``prepare``), excluding names that are
    ambiguous (also defined somewhere *without* a ``runtime`` parameter) or
    shadow builtins, then flags calls to those names from inside
    runtime-accepting functions when no ``runtime`` is passed positionally,
    by keyword, or via ``**kwargs``.
    """

    rule_id = "runtime-threading"
    description = "runtime= accepted but not forwarded to a runtime-accepting callee"

    def __init__(self) -> None:
        self._known: set[str] = set()

    def prepare(self, modules: Sequence[ModuleSource]) -> None:
        with_runtime: set[str] = set()
        without_runtime: set[str] = set()
        for module in modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    bucket = (
                        with_runtime if _has_runtime_param(node) else without_runtime
                    )
                    bucket.add(node.name)
        self._known = with_runtime - without_runtime - set(dir(builtins))

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _has_runtime_param(node):
                    yield from self._check_function(module, node)

    def _check_function(
        self, module: ModuleSource, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        for node in self._walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            callee = _bare_callee(node.func)
            if callee is None or callee not in self._known or callee == func.name:
                continue
            if _forwards_runtime(node):
                continue
            yield self.finding(
                module,
                node,
                f"{func.name}() accepts runtime= but calls {callee}() without "
                "forwarding it — the callee will re-resolve the ambient context",
                key=f"{func.name}->{callee}",
            )

    @classmethod
    def _walk_scope(cls, func: ast.AST) -> Iterator[ast.AST]:
        """Walk a function body, descending into nested defs only when the
        nested def does not rebind ``runtime`` with its own parameter."""
        for child in ast.iter_child_nodes(func):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _has_runtime_param(child):
                    continue
                yield from cls._walk_scope(child)
                continue
            yield child
            yield from cls._walk_descend(child)

    @classmethod
    def _walk_descend(cls, node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _has_runtime_param(child):
                    continue
                yield from cls._walk_scope(child)
                continue
            yield child
            yield from cls._walk_descend(child)


class ExceptionHygieneRule(Rule):
    """Bare ``except:`` clauses and silently swallowed broad handlers.

    Two shapes are flagged:

    * ``except:`` with no exception type — it catches ``SystemExit`` /
      ``KeyboardInterrupt`` too, so a Ctrl-C mid-run can be eaten by an
      envelope that only meant to tolerate a missing file;
    * ``except Exception`` / ``except BaseException`` (alone or in a tuple)
      whose body does nothing (only ``pass`` / ``...``) — the supervised
      executor turns worker death into diagnostics precisely because silent
      swallowing turns real faults into wrong-but-plausible results.

    Broad handlers that *do* something (log, fall back, re-raise, return a
    default) are fine: breadth is a judgment call, silence is not.  Keys are
    the enclosing scope plus the shape, so baselines survive line churn.
    """

    rule_id = "exception-hygiene"
    description = "bare except: or silently swallowed broad exception handler"

    _BROAD = ("Exception", "BaseException")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        yield from self._walk(module, module.tree, scope="<module>")

    def _walk(self, module: ModuleSource, node: ast.AST, scope: str) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_scope = scope
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_scope = child.name
            elif isinstance(child, ast.ExceptHandler):
                yield from self._check_handler(module, child, scope)
            yield from self._walk(module, child, child_scope)

    def _check_handler(
        self, module: ModuleSource, handler: ast.ExceptHandler, scope: str
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                module,
                handler,
                f"bare 'except:' in {scope}() catches SystemExit and "
                "KeyboardInterrupt — name the exceptions this envelope tolerates",
                key=f"bare:{scope}",
            )
            return
        broad = self._broad_name(handler.type)
        if broad is not None and self._is_silent(handler.body):
            yield self.finding(
                module,
                handler,
                f"'except {broad}: pass' in {scope}() swallows every failure "
                "silently — log it, narrow it, or re-raise",
                key=f"silent:{scope}",
            )

    @classmethod
    def _broad_name(cls, type_expr: ast.AST) -> str | None:
        if isinstance(type_expr, ast.Name) and type_expr.id in cls._BROAD:
            return type_expr.id
        if isinstance(type_expr, ast.Tuple):
            for element in type_expr.elts:
                if isinstance(element, ast.Name) and element.id in cls._BROAD:
                    return element.id
        return None

    @staticmethod
    def _is_silent(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # a docstring or `...` placeholder does not handle
            return False
        return True


def _has_runtime_param(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    args = func.args
    names = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
    return "runtime" in names


def _bare_callee(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _forwards_runtime(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs — assume it may carry runtime
            return True
        if keyword.arg == "runtime":
            return True
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == "runtime":
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == "runtime":
            return True
        if isinstance(arg, ast.Starred):
            return True
    return False


ALL_RULES = (
    EnvConfinementRule,
    ExceptionHygieneRule,
    MutableGlobalRule,
    NondeterminismRule,
    RuntimeThreadingRule,
)


def make_rules(rule_ids: Sequence[str] | None = None) -> list[Rule]:
    """Instantiate the requested rules (all of them by default)."""
    catalog = {cls.rule_id: cls for cls in ALL_RULES}
    if rule_ids is None:
        return [cls() for cls in ALL_RULES]
    rules = []
    for rule_id in rule_ids:
        if rule_id not in catalog:
            known = ", ".join(sorted(catalog))
            raise ValueError(f"unknown rule {rule_id!r} (known rules: {known})")
        rules.append(catalog[rule_id]())
    return rules
