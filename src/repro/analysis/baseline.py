"""Reviewed-baseline handling for the lint engine.

A baseline file records findings that were reviewed and deliberately kept
(e.g. the autograd on/off switch in ``nn/tensor.py``: a process-global by
design, because gradient mode is a per-process interpreter flag, not
per-context state).  Each line is one finding's stable key::

    <rule-id> <path> <key>    # optional trailing comment

Keys are content-based — symbol names and expressions, never line numbers —
so a baseline survives unrelated edits to the same file.  The contract is
symmetric: a finding *not* in the baseline fails the lint, and a baseline
entry that no longer matches any finding is reported as stale (the exception
was fixed; the entry must be deleted so it cannot mask a regression).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.engine import Finding

_HEADER = """\
# repro lint baseline — reviewed, deliberate exceptions.
# One finding key per line: <rule-id> <path> <key>   (trailing # comments ok)
# Regenerate with: repro lint --write-baseline <this file>
"""


def load_baseline(path: Path | str) -> set[str]:
    """The set of suppressed finding keys (missing file -> empty set)."""
    path = Path(path)
    if not path.exists():
        return set()
    keys: set[str] = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        entry = line.split("#", 1)[0].strip()
        if entry:
            keys.add(entry)
    return keys


def save_baseline(path: Path | str, findings: Sequence[Finding]) -> None:
    """Write the current findings as the new reviewed baseline."""
    lines = sorted({finding.baseline_key() for finding in findings})
    Path(path).write_text(_HEADER + "".join(f"{line}\n" for line in lines),
                          encoding="utf-8")


def apply_baseline(
    findings: Sequence[Finding], baseline: set[str]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Split findings into (new, suppressed) and report stale baseline keys."""
    new: list[Finding] = []
    suppressed: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        key = finding.baseline_key()
        if key in baseline:
            suppressed.append(finding)
            seen.add(key)
        else:
            new.append(finding)
    stale = sorted(baseline - seen)
    return new, suppressed, stale
