"""The codebase-level lint engine: parse once, run every rule, report findings.

The engine is deliberately small: :func:`collect_modules` parses every Python
file under the analysis root exactly once into :class:`ModuleSource` objects
(path + shared AST), and :class:`LintEngine` runs a list of
:class:`~repro.analysis.rules.Rule` instances over them.  Rules that need a
whole-codebase symbol table (e.g. the runtime-threading rule, which must know
every function that accepts a ``runtime`` argument) implement ``prepare``,
which the engine calls with the full module list before any per-module
checking starts.

Findings carry a **stable key** (a symbol, an environment-variable name, a
call target — never a line number), so the baseline file in
:mod:`repro.analysis.baseline` survives unrelated edits to the same file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    rule: str
    path: str  # posix-style path relative to the analysis root
    line: int
    col: int
    message: str
    #: stable, line-number-free identifier used for baseline matching.
    key: str

    def baseline_key(self) -> str:
        return f"{self.rule} {self.path} {self.key}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "key": self.key,
        }


@dataclass
class ModuleSource:
    """One parsed source file, shared by every rule."""

    path: Path
    relpath: str  # posix-style, relative to the analysis root
    tree: ast.Module

    def in_directory(self, name: str) -> bool:
        """Whether the module lives under a directory called ``name``."""
        return name in Path(self.relpath).parts[:-1]


class LintSyntaxError(Exception):
    """A file under analysis failed to parse (reported, never swallowed)."""


def collect_modules(
    paths: Sequence[Path | str], root: Path | str
) -> list[ModuleSource]:
    """Parse every ``.py`` file under ``paths`` once, relative to ``root``."""
    root = Path(root).resolve()
    files: list[Path] = []
    for entry in paths:
        entry = Path(entry).resolve()
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    modules: list[ModuleSource] = []
    for path in files:
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError as exc:
            raise LintSyntaxError(f"{relpath}: {exc}") from exc
        modules.append(ModuleSource(path=path, relpath=relpath, tree=tree))
    return modules


class Rule:
    """Base class of one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`description` and implement
    :meth:`check`; rules that need whole-codebase context first implement
    :meth:`prepare`, called once with every module before checking starts.
    """

    rule_id: str = ""
    description: str = ""

    def prepare(self, modules: Sequence[ModuleSource]) -> None:  # pragma: no cover
        """Optional whole-codebase pass before per-module checking."""

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: ast.AST, message: str, key: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            key=key,
        )


class LintEngine:
    """Runs a set of rules over a set of parsed modules."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)

    def run(self, modules: Sequence[ModuleSource]) -> list[Finding]:
        for rule in self.rules:
            rule.prepare(modules)
        findings: list[Finding] = []
        for module in modules:
            for rule in self.rules:
                findings.extend(rule.check(module))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import os`` -> ``{"os": "os"}``; ``import numpy as np`` ->
    ``{"np": "numpy"}``; ``from os import environ as env`` ->
    ``{"env": "os.environ"}``.  Covers nested imports too (function-local
    ``from repro.runtime import current`` style), which is exactly where
    aliasing tends to hide from grep.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_dotted(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The fully-qualified dotted name of an expression, alias-expanded.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``numpy.random.default_rng``; expressions not rooted in an imported name
    (method calls on locals, subscripts, calls) resolve to ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    origin = aliases.get(node.id)
    if origin is None:
        return None
    parts.append(origin)
    return ".".join(reversed(parts))


def describe_expr(node: ast.AST, limit: int = 60) -> str:
    """A compact source rendering of an expression (for messages and keys)."""
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse failures are exotic
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."
