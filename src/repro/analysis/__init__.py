"""Static analysis: the codebase lint engine and the execution-plan verifier.

Level 1 (:mod:`~repro.analysis.engine`, :mod:`~repro.analysis.rules`,
:mod:`~repro.analysis.baseline`) lints ``src/repro/`` itself, turning the
project's reviewer-enforced invariants — env-knob confinement, no module
globals, no ambient nondeterminism, explicit runtime threading — into
machine-checked rules behind ``repro lint``.

Level 2 (:mod:`~repro.analysis.plan_verifier`) verifies compiled
:class:`~repro.codegen.plan.ExecutionPlan`s before first execution, behind
the ``RuntimeConfig.verify_plans`` knob.

This package must stay import-light and free of repro's numeric machinery at
import time: the lint level analyzes source text only (it never imports the
code under analysis), and the plan verifier imports :mod:`repro.codegen.plan`
lazily through its own module so ``repro lint`` works even in a broken tree.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, save_baseline
from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintSyntaxError,
    ModuleSource,
    Rule,
    collect_modules,
)
from repro.analysis.rules import ALL_RULES, make_rules

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintEngine",
    "LintSyntaxError",
    "ModuleSource",
    "Rule",
    "apply_baseline",
    "collect_modules",
    "load_baseline",
    "make_rules",
    "save_baseline",
]
