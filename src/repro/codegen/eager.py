"""The eager (PyTorch-like) code generator.

``lower_to_module`` turns a :class:`~repro.core.operator.SynthesizedOperator`
into a differentiable :class:`~repro.nn.module.Module`.  Following the paper's
PyTorch generator, each view primitive is lowered to its tensor-op counterpart
(reshape, roll, sliding-window gather, strided slice, broadcast) and each
contraction is lowered to an einsum; primitives are lowered in (reverse)
topological order so dependencies are satisfied.

The lowering walks the pGraph's applications *top-down* (reverse of the
bottom-up construction order), maintaining the invariant that after the
application at position ``t`` has been processed the current tensor's axes are
exactly the pGraph frontier after position ``t``.  Weight tensors are
multiplied in at the last ``Share`` of their group, where all of their
identified coordinates are guaranteed to be live axes.
"""

from __future__ import annotations

import string
from typing import Mapping, Sequence

import numpy as np

from repro.codegen.plan import ExecutionPlan, PlanError, cached_plan
from repro.core.operator import SynthesizedOperator
from repro.core.pgraph import Application, Dim
from repro.core.primitives import Expand, Merge, Reduce, Share, Shift, Split, Stride, Unfold
from repro.ir.variables import Variable
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, grad_enabled


class LoweringError(RuntimeError):
    """Raised when a pGraph cannot be lowered to eager tensor operations."""


# The runtime package is import-light (stdlib only), so binding its resolver
# at module scope costs nothing and avoids a memoized-global rebind.
from repro.runtime import current as _current_runtime


def _compiled_forward_enabled() -> bool:
    return _current_runtime().config.compiled_forward


class _PlanBackward:
    """One shared backward pass behind every parent's VJP closure.

    The compiled forward registers the whole operator as a *single* autograd
    node with one parent entry per tensor (input + each weight).  The tape
    calls each parent's VJP with the same upstream gradient object, so the
    full backward plan runs once and the per-parent closures just pick their
    slice out of the shared result.
    """

    __slots__ = ("plan", "saved", "weights", "need_input_grad", "_grad", "_result")

    def __init__(
        self,
        plan: ExecutionPlan,
        saved: list,
        weights: Sequence[np.ndarray],
        need_input_grad: bool,
    ) -> None:
        self.plan = plan
        self.saved = saved
        self.weights = weights
        self.need_input_grad = need_input_grad
        self._grad: np.ndarray | None = None
        self._result: tuple[np.ndarray | None, dict[int, np.ndarray]] | None = None

    def _results(self, grad: np.ndarray):
        if self._grad is not grad:
            self._result = self.plan.run_backward(
                grad, self.saved, self.weights, need_input_grad=self.need_input_grad
            )
            self._grad = grad
        return self._result

    def input_vjp(self, grad: np.ndarray) -> np.ndarray:
        result = self._results(grad)[0]
        assert result is not None  # only registered when the input needs a grad
        return result

    def weight_vjp(self, index: int):
        def vjp(grad: np.ndarray) -> np.ndarray:
            return self._results(grad)[1][index]

        return vjp


class EagerOperator(Module):
    """A synthesized operator lowered to differentiable tensor operations.

    The module owns one :class:`Parameter` per pGraph weight tensor and its
    ``forward`` reproduces the operator semantics for the concrete ``binding``
    it was instantiated with (one binding per layer of the backbone model).
    """

    def __init__(
        self,
        operator: SynthesizedOperator,
        binding: Mapping[Variable, int],
        rng: np.random.Generator | None = None,
        weights: list[Parameter] | None = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.operator = operator
        self.binding = dict(binding)
        self._plan: ExecutionPlan | None = None
        graph = operator.graph
        self.weights: list[Parameter] = []
        reduction_total = 1
        for dim in graph.reduction_dims:
            reduction_total *= dim.size.evaluate(binding)
        num_weights = max(len(graph.weights), 1)
        for index, weight in enumerate(graph.weights):
            shape = tuple(dim.size.evaluate(binding) for dim in weight.dims)
            if weights is not None:
                # Share parameters with another instantiation of the same
                # operator (used when only the batch size differs).
                if tuple(weights[index].shape) != shape:
                    raise LoweringError(
                        f"cannot share weights: shape {weights[index].shape} != {shape}"
                    )
                self.weights.append(weights[index])
                continue
            # Kaiming-style scaling: the *product* of all weight tensors along
            # the reduction paths should have variance ~ 2 / fan_in, so each
            # of the W weights takes the 2W-th root.
            fan_in = max(reduction_total, 1)
            scale = (2.0 / fan_in) ** (1.0 / (2.0 * num_weights))
            self.weights.append(Parameter(rng.normal(0.0, scale, size=shape)))

    # -- helpers -------------------------------------------------------------

    def _extent(self, dim: Dim) -> int:
        return dim.size.evaluate(self.binding)

    def forward(self, x: Tensor) -> Tensor:
        expected = self.operator.concrete_input_shape(self.binding)
        if tuple(x.shape) != tuple(expected):
            raise LoweringError(f"input shape {x.shape} does not match expected {expected}")
        if _compiled_forward_enabled():
            return self._forward_compiled(x)
        return self._forward_interpreted(x)

    def _forward_compiled(self, x: Tensor) -> Tensor:
        """Run the once-compiled execution plan (the default fast path)."""
        if self._plan is None:
            try:
                self._plan = cached_plan(self.operator, self.binding)
            except PlanError as exc:
                # Structural failures the interpreter would also reject —
                # keep the exception type the evaluators treat as "invalid
                # candidate".  Anything else (including SizeError, a
                # ValueError like in the interpreter path) propagates: a
                # crash in the plan compiler is a genuine bug, not an
                # invalid candidate.
                raise LoweringError(f"cannot compile execution plan: {exc}") from exc
        plan = self._plan
        weight_arrays = [weight.data for weight in self.weights]
        need_grad = grad_enabled() and (
            x.requires_grad or any(weight.requires_grad for weight in self.weights)
        )
        data, saved = plan.run_forward(x.data, weight_arrays, save_for_backward=need_grad)
        if not need_grad:
            return Tensor(data)
        backward = _PlanBackward(plan, saved, weight_arrays, x.requires_grad)
        parents = [(x, backward.input_vjp)]
        parents.extend(
            (weight, backward.weight_vjp(index)) for index, weight in enumerate(self.weights)
        )
        return Tensor.from_op(data, parents)

    def _forward_interpreted(self, x: Tensor) -> Tensor:
        """The original per-call interpreter (``REPRO_COMPILED_FORWARD=0``)."""
        graph = self.operator.graph

        # Current tensor axes, labelled by pGraph dims.  Axis ``i`` of the
        # input corresponds to the frontier dim assigned to input position i.
        axes: list[Dim] = [
            graph.frontier[index] for index in self.operator.input_assignment
        ]
        value: Tensor = x
        multiplied_weights: set[int] = set()

        for app in reversed(graph.applications):
            primitive = app.primitive
            if isinstance(primitive, Share):
                value, axes = self._lower_share(app, value, axes, multiplied_weights)
            elif isinstance(primitive, Reduce):
                value, axes = self._lower_reduce(app, value, axes)
            elif isinstance(primitive, Merge):
                value, axes = self._lower_merge(app, value, axes)
            elif isinstance(primitive, Split):
                value, axes = self._lower_split(app, value, axes)
            elif isinstance(primitive, Shift):
                value, axes = self._lower_shift(app, value, axes, primitive.amount)
            elif isinstance(primitive, Expand):
                value, axes = self._lower_expand(app, value, axes)
            elif isinstance(primitive, Unfold):
                value, axes = self._lower_unfold(app, value, axes)
            elif isinstance(primitive, Stride):
                value, axes = self._lower_stride(app, value, axes, primitive)
            else:  # pragma: no cover - defensive
                raise LoweringError(f"unknown primitive {primitive!r}")

        # All remaining axes must be output dims; permute them to output order.
        output_positions = []
        for dim in graph.output_dims:
            if dim not in axes:
                raise LoweringError(f"output dim {dim!r} missing after lowering")
            output_positions.append(axes.index(dim))
        if len(axes) != len(graph.output_dims):
            extra = [d for d in axes if d not in graph.output_dims]
            raise LoweringError(f"unexpected residual axes {extra!r}")
        return F.transpose(value, output_positions)

    # -- per-primitive lowering ----------------------------------------------

    def _axis_of(self, axes: list[Dim], dim: Dim) -> int:
        try:
            return axes.index(dim)
        except ValueError as exc:
            raise LoweringError(f"dim {dim!r} is not a live axis") from exc

    def _lower_merge(self, app: Application, value: Tensor, axes: list[Dim]):
        (bottom,) = app.consumed
        outer, inner = app.produced
        outer_axis = self._axis_of(axes, outer)
        inner_axis = self._axis_of(axes, inner)
        # Bring the inner axis right after the outer axis, then flatten.
        order = list(range(len(axes)))
        order.remove(inner_axis)
        insert_at = order.index(outer_axis) + 1
        order.insert(insert_at, inner_axis)
        value = F.transpose(value, order)
        axes = [axes[i] for i in order]
        outer_axis = axes.index(outer)
        new_shape = list(value.shape)
        new_shape[outer_axis : outer_axis + 2] = [self._extent(bottom)]
        value = F.reshape(value, new_shape)
        axes = axes[:outer_axis] + [bottom] + axes[outer_axis + 2 :]
        return value, axes

    def _lower_split(self, app: Application, value: Tensor, axes: list[Dim]):
        major, minor = app.consumed
        (top,) = app.produced
        axis = self._axis_of(axes, top)
        new_shape = list(value.shape)
        new_shape[axis : axis + 1] = [self._extent(major), self._extent(minor)]
        value = F.reshape(value, new_shape)
        axes = axes[:axis] + [major, minor] + axes[axis + 1 :]
        return value, axes

    def _lower_shift(self, app: Application, value: Tensor, axes: list[Dim], amount: int):
        (bottom,) = app.consumed
        (top,) = app.produced
        axis = self._axis_of(axes, top)
        value = F.roll(value, -amount, axis=axis)
        axes = list(axes)
        axes[axis] = bottom
        return value, axes

    def _lower_expand(self, app: Application, value: Tensor, axes: list[Dim]):
        (bottom,) = app.consumed
        extent = self._extent(bottom)
        value = F.expand_dims(value, axis=len(axes))
        value = F.broadcast_to(value, tuple(value.shape[:-1]) + (extent,))
        axes = list(axes) + [bottom]
        return value, axes

    def _lower_unfold(self, app: Application, value: Tensor, axes: list[Dim]):
        main, window = app.consumed
        (top,) = app.produced
        axis = self._axis_of(axes, top)
        value = F.unfold1d(value, axis=axis, window=self._extent(window))
        axes = list(axes)
        axes[axis] = main
        axes.append(window)
        return value, axes

    def _lower_stride(self, app: Application, value: Tensor, axes: list[Dim], primitive: Stride):
        (bottom,) = app.consumed
        (top,) = app.produced
        axis = self._axis_of(axes, top)
        step = primitive.stride.evaluate(self.binding)
        value = F.strided_slice(value, axis=axis, step=step)
        axes = list(axes)
        axes[axis] = bottom
        return value, axes

    def _lower_reduce(self, app: Application, value: Tensor, axes: list[Dim]):
        (produced,) = app.produced
        axis = self._axis_of(axes, produced)
        value = F.sum(value, axis=axis)
        axes = axes[:axis] + axes[axis + 1 :]
        return value, axes

    def _lower_share(
        self,
        app: Application,
        value: Tensor,
        axes: list[Dim],
        multiplied_weights: set[int],
    ):
        weight_index = app.weight_index
        assert weight_index is not None
        if weight_index in multiplied_weights:
            # The whole weight tensor was already multiplied at the last Share
            # of its group; this earlier Share is a no-op on the data path.
            return value, axes
        multiplied_weights.add(weight_index)

        weight = self.operator.graph.weights[weight_index]
        parameter = self.weights[weight_index]

        letters = iter(string.ascii_letters)
        labels: dict[int, str] = {}

        def label_for(dim: Dim) -> str:
            if dim.uid not in labels:
                labels[dim.uid] = next(letters)
            return labels[dim.uid]

        value_sub = "".join(label_for(dim) for dim in axes)
        weight_sub = ""
        new_axes: list[Dim] = []
        for wdim in weight.dims:
            target = wdim.identified_with
            if target is None:  # pragma: no cover - defensive
                raise LoweringError(f"weight dim {wdim!r} has no identified coordinate")
            if target in axes:
                weight_sub += label_for(target)
            else:
                weight_sub += label_for(target)
                if target not in new_axes:
                    new_axes.append(target)
        output_sub = value_sub + "".join(label_for(dim) for dim in new_axes)
        value = F.einsum(f"{value_sub},{weight_sub}->{output_sub}", value, parameter)
        return value, list(axes) + new_axes


def lower_to_module(
    operator: SynthesizedOperator,
    binding: Mapping[Variable, int],
    rng: np.random.Generator | None = None,
) -> EagerOperator:
    """Lower a synthesized operator to a trainable module for one binding."""
    return EagerOperator(operator, binding, rng=rng)
