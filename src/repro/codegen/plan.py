"""Compiled execution plans for lowered operators.

The eager generator (:mod:`repro.codegen.eager`) re-interprets the pGraph on
every single forward call: it walks the applications, re-derives the axis
bookkeeping, rebuilds einsum subscript strings and allocates one VJP closure
per primitive for the autograd tape.  During proxy training that
interpretation overhead is paid once per training step per layer — by far the
hottest path in the whole system.

:func:`compile_plan` performs the walk **once** per ``(graph, binding)`` and
emits a flat :class:`ExecutionPlan`: a sequence of primitive numpy steps with
every transpose order, reshape target, unfold gather/scatter index set and
einsum subscript (plus its ``np.einsum_path`` contraction path) precomputed at
compile time.  Each step also knows its own hand-derived backward rule, so a
training step pays neither tape construction nor topological sorting — the
whole operator becomes a single autograd node with one shared backward pass.

Adjacent transpose/reshape steps are fused and identity steps dropped at plan
build time.  Plans are memoized per :class:`EagerOperator` instance and
process-wide in :func:`repro.search.cache.plan_cache`, keyed by the graph's
canonical signature plus the concrete binding, so structurally identical
candidates across a search session share one compiled plan.

``REPRO_COMPILED_FORWARD=0`` keeps the original eager interpreter for A/B
timing; the two paths agree to numerical tolerance (see
``tests/test_plan_parity.py``).
"""

from __future__ import annotations

import string
from typing import Mapping, Sequence

import numpy as np

from repro.core.operator import SynthesizedOperator
from repro.core.pgraph import Dim
from repro.core.primitives import Expand, Merge, Reduce, Share, Shift, Split, Stride, Unfold
from repro.ir.variables import Variable


class PlanError(RuntimeError):
    """Raised when a pGraph cannot be compiled to an execution plan."""


def _dummy(shape: Sequence[int]) -> np.ndarray:
    """A zero-stride stand-in array for ``np.einsum_path`` shape queries."""
    return np.broadcast_to(np.empty((), dtype=np.float64), tuple(shape))


# ---------------------------------------------------------------------------
# Plan steps
# ---------------------------------------------------------------------------
#
# Every step implements ``run`` (numpy in, numpy out) and ``grad`` (upstream
# gradient in, gradient w.r.t. the step's input out).  Only the contraction
# step takes weight operands; it is the only step that needs its input value
# saved for the backward pass.


class TransposeStep:
    __slots__ = ("order", "inverse")

    def __init__(self, order: tuple[int, ...]) -> None:
        self.order = order
        self.inverse = tuple(int(i) for i in np.argsort(order))

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.transpose(self.order)

    def grad(self, g: np.ndarray) -> np.ndarray:
        return g.transpose(self.inverse)

    def __repr__(self) -> str:
        return f"Transpose{self.order}"


class ReshapeStep:
    __slots__ = ("shape", "input_shape")

    def __init__(self, shape: tuple[int, ...], input_shape: tuple[int, ...]) -> None:
        self.shape = shape
        self.input_shape = input_shape

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(self.shape)

    def grad(self, g: np.ndarray) -> np.ndarray:
        return g.reshape(self.input_shape)

    def __repr__(self) -> str:
        return f"Reshape{self.shape}"


class RollStep:
    __slots__ = ("shift", "axis")

    def __init__(self, shift: int, axis: int) -> None:
        self.shift = shift
        self.axis = axis

    def run(self, x: np.ndarray) -> np.ndarray:
        return np.roll(x, self.shift, axis=self.axis)

    def grad(self, g: np.ndarray) -> np.ndarray:
        return np.roll(g, -self.shift, axis=self.axis)

    def __repr__(self) -> str:
        return f"Roll({self.shift}, axis={self.axis})"


class BroadcastStep:
    """The Expand primitive: repeat the tensor along a new trailing axis."""

    __slots__ = ("shape",)

    def __init__(self, shape: tuple[int, ...]) -> None:
        self.shape = shape  # input shape + (extent,)

    def run(self, x: np.ndarray) -> np.ndarray:
        # A zero-stride view; downstream steps copy only if they must.
        return np.broadcast_to(x[..., None], self.shape)

    def grad(self, g: np.ndarray) -> np.ndarray:
        return g.sum(axis=-1)

    def __repr__(self) -> str:
        return f"Broadcast{self.shape}"


class SumStep:
    """The Reduce primitive: sum over one axis."""

    __slots__ = ("axis", "input_shape")

    def __init__(self, axis: int, input_shape: tuple[int, ...]) -> None:
        self.axis = axis
        self.input_shape = input_shape

    def run(self, x: np.ndarray) -> np.ndarray:
        return x.sum(axis=self.axis)

    def grad(self, g: np.ndarray) -> np.ndarray:
        return np.broadcast_to(np.expand_dims(g, self.axis), self.input_shape)

    def __repr__(self) -> str:
        return f"Sum(axis={self.axis})"


class StrideSliceStep:
    """The Stride primitive: select every ``step``-th element along one axis."""

    __slots__ = ("slices", "input_shape")

    def __init__(self, axis: int, step: int, input_shape: tuple[int, ...]) -> None:
        self.slices = tuple(
            slice(None, None, step) if current == axis else slice(None)
            for current in range(len(input_shape))
        )
        self.input_shape = input_shape

    def run(self, x: np.ndarray) -> np.ndarray:
        return x[self.slices]

    def grad(self, g: np.ndarray) -> np.ndarray:
        out = np.zeros(self.input_shape, dtype=g.dtype)
        out[self.slices] = g
        return out

    def __repr__(self) -> str:
        return f"StrideSlice{self.slices}"


class UnfoldStep:
    """The Unfold primitive: same-padded sliding windows along one axis.

    Forward is pad → gather → reshape → move-window-axis-to-end, with the
    gather index vector precomputed.  Backward scatters with ``window`` shifted
    slice-adds into the padded buffer instead of a per-element ``np.add.at``
    — same sums, vectorized.
    """

    __slots__ = (
        "axis",
        "window",
        "extent",
        "offset",
        "pad_width",
        "gather",
        "reshape_shape",
        "transpose_axes",
        "inverse_axes",
        "padded_shape",
    )

    def __init__(self, axis: int, window: int, input_shape: tuple[int, ...]) -> None:
        # The geometry is the eager unfold1d's, computed once instead of per
        # call; only the backward scatter strategy differs from the eager VJP.
        from repro.nn.functional import unfold1d_geometry

        pad_width, gather, reshape_shape, transpose_axes = unfold1d_geometry(
            input_shape, axis, window
        )
        self.axis = axis
        self.window = window
        self.extent = input_shape[axis]
        self.offset = window // 2
        self.pad_width = pad_width
        self.gather = gather
        self.reshape_shape = reshape_shape
        self.transpose_axes = transpose_axes
        self.inverse_axes = tuple(int(i) for i in np.argsort(transpose_axes))
        self.padded_shape = tuple(
            size + (lo + hi) for size, (lo, hi) in zip(input_shape, pad_width)
        )

    def run(self, x: np.ndarray) -> np.ndarray:
        padded = np.pad(x, self.pad_width)
        taken = np.take(padded, self.gather, axis=self.axis)
        return taken.reshape(self.reshape_shape).transpose(self.transpose_axes)

    def grad(self, g: np.ndarray) -> np.ndarray:
        g = g.transpose(self.inverse_axes)  # window axis back next to the main axis
        padded = np.zeros(self.padded_shape, dtype=g.dtype)
        dst = [slice(None)] * padded.ndim
        src = [slice(None)] * g.ndim
        for j in range(self.window):
            dst[self.axis] = slice(j, j + self.extent)
            src[self.axis + 1] = j
            padded[tuple(dst)] += g[tuple(src)]
        dst[self.axis] = slice(self.offset, self.offset + self.extent)
        return padded[tuple(dst)]

    def __repr__(self) -> str:
        return f"Unfold(axis={self.axis}, window={self.window})"


class _OperandGrad:
    """Precompiled backward recipe for one differentiable einsum operand."""

    __slots__ = ("subscripts", "path", "other_positions", "expand_shape", "full_shape")

    def __init__(self, subscripts, path, other_positions, expand_shape, full_shape) -> None:
        self.subscripts = subscripts
        self.path = path
        self.other_positions = other_positions
        self.expand_shape = expand_shape
        self.full_shape = full_shape


class ContractionStep:
    """A fused contraction group: Shares, Expands and Reduces as one einsum.

    The lowering emits runs of ``Share`` (multiply a weight in), ``Expand``
    (broadcast a new axis) and ``Reduce`` (sum an axis out).  Evaluated one by
    one those materialize enormous intermediates — every live axis of every
    weight, before the sums shrink anything.  Fused, they are a single
    ``np.einsum`` over ``[value, weights..., ones...]`` whose output subscript
    simply omits the reduced labels, so the contraction path chosen by
    ``np.einsum_path`` (at compile time) sums early and never builds the full
    product.  An ``Expand`` becomes a ones-vector operand, which the path
    optimizer folds away.

    Backward is einsum's classic swap: the gradient of operand ``i`` feeds the
    upstream gradient through ``(output, others...) -> operand_i``, with axes
    appearing in no other operand recovered by a precomputed broadcast.
    """

    __slots__ = (
        "subscripts",
        "operands",
        "operand_shapes",
        "output_shape",
        "path",
        "backwards",
        "weight_positions",
    )

    def __init__(
        self,
        operand_subs: Sequence[str],
        operand_specs: Sequence[tuple[str, int | None]],
        operand_shapes: Sequence[tuple[int, ...]],
        output_sub: str,
        output_shape: tuple[int, ...],
    ) -> None:
        self.operands = tuple(operand_specs)  # ("value", None) | ("weight", i) | ("ones", extent)
        # Retained for the static verifier (analysis.plan_verifier): the
        # concrete operand/output geometry this einsum was compiled against.
        self.operand_shapes = tuple(tuple(shape) for shape in operand_shapes)
        self.output_shape = tuple(output_shape)
        self.subscripts = ",".join(operand_subs) + "->" + output_sub
        self.path = np.einsum_path(
            self.subscripts, *[_dummy(shape) for shape in operand_shapes], optimize="optimal"
        )[0]
        self.weight_positions = tuple(
            position for position, (kind, _) in enumerate(self.operands) if kind == "weight"
        )

        extent_of = {}
        for sub, shape in zip(operand_subs, operand_shapes):
            extent_of.update(zip(sub, shape))

        self.backwards: dict[int, _OperandGrad] = {}
        for position, (kind, _) in enumerate(self.operands):
            if kind == "ones":
                continue  # constants need no gradient
            target_sub = operand_subs[position]
            other_positions = tuple(
                index for index in range(len(self.operands)) if index != position
            )
            other_subs = [operand_subs[index] for index in other_positions]
            available = set(output_sub).union(*other_subs) if other_subs else set(output_sub)
            missing = [c for c in target_sub if c not in available]
            reduced_target = "".join(c for c in target_sub if c not in missing)
            subscripts = ",".join([output_sub, *other_subs]) + "->" + reduced_target
            path = np.einsum_path(
                subscripts,
                _dummy(output_shape),
                *[_dummy(operand_shapes[index]) for index in other_positions],
                optimize="optimal",
            )[0]
            expand_shape = (
                tuple(1 if c in missing else extent_of[c] for c in target_sub)
                if missing
                else None
            )
            self.backwards[position] = _OperandGrad(
                subscripts, path, other_positions, expand_shape, operand_shapes[position]
            )

    def _arrays(self, value: np.ndarray, weights: Sequence[np.ndarray]) -> list[np.ndarray]:
        arrays: list[np.ndarray] = []
        for kind, payload in self.operands:
            if kind == "value":
                arrays.append(value)
            elif kind == "weight":
                arrays.append(weights[payload])
            else:  # ones: dtype follows the value so nothing silently upcasts
                arrays.append(np.ones(payload, dtype=value.dtype))
        return arrays

    def run(self, value: np.ndarray, weights: Sequence[np.ndarray]) -> np.ndarray:
        return np.einsum(self.subscripts, *self._arrays(value, weights), optimize=self.path)

    def _grad_for(self, position: int, g: np.ndarray, arrays: list[np.ndarray]) -> np.ndarray:
        recipe = self.backwards[position]
        others = [arrays[index] for index in recipe.other_positions]
        grad = np.einsum(recipe.subscripts, g, *others, optimize=recipe.path)
        if recipe.expand_shape is not None:
            grad = np.broadcast_to(grad.reshape(recipe.expand_shape), recipe.full_shape)
        return grad

    def backward(
        self, g: np.ndarray, value: np.ndarray, weights: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, dict[int, np.ndarray]]:
        """``(grad_value, {weight_index: grad_weight})`` for this step."""
        arrays = self._arrays(value, weights)
        weight_grads: dict[int, np.ndarray] = {}
        grad_value: np.ndarray | None = None
        for position in self.backwards:
            grad = self._grad_for(position, g, arrays)
            kind, payload = self.operands[position]
            if kind == "value":
                grad_value = grad
            else:
                weight_grads[payload] = grad
        assert grad_value is not None
        return grad_value, weight_grads

    def backward_weights_only(
        self, g: np.ndarray, value: np.ndarray, weights: Sequence[np.ndarray]
    ) -> dict[int, np.ndarray]:
        """Weight gradients alone (the input below needs no gradient)."""
        arrays = self._arrays(value, weights)
        return {
            payload: self._grad_for(position, g, arrays)
            for position, (kind, payload) in enumerate(self.operands)
            if kind == "weight"
        }

    def __repr__(self) -> str:
        tags = [
            "x" if kind == "value" else (f"w{payload}" if kind == "weight" else f"1({payload})")
            for kind, payload in self.operands
        ]
        return f"Contract({self.subscripts}; {','.join(tags)})"


# ---------------------------------------------------------------------------
# The compiled plan
# ---------------------------------------------------------------------------


class ExecutionPlan:
    """A flat, pre-resolved program computing one operator for one binding."""

    __slots__ = ("steps", "input_shape", "output_shape", "weight_count", "_first_contraction")

    def __init__(
        self,
        steps: list,
        input_shape: tuple[int, ...],
        output_shape: tuple[int, ...],
        weight_count: int,
    ) -> None:
        self.steps = steps
        self.input_shape = input_shape
        self.output_shape = output_shape
        self.weight_count = weight_count
        contraction_indices = [
            index for index, step in enumerate(steps) if isinstance(step, ContractionStep)
        ]
        self._first_contraction = contraction_indices[0] if contraction_indices else None

    def run_forward(
        self,
        x: np.ndarray,
        weights: Sequence[np.ndarray],
        save_for_backward: bool = False,
    ) -> tuple[np.ndarray, list | None]:
        """Execute the plan; optionally save the contraction inputs for backward."""
        saved: list | None = [None] * len(self.steps) if save_for_backward else None
        value = x
        for index, step in enumerate(self.steps):
            if isinstance(step, ContractionStep):
                if saved is not None:
                    saved[index] = value
                value = step.run(value, weights)
            else:
                value = step.run(value)
        return value, saved

    def run_backward(
        self,
        grad_output: np.ndarray,
        saved: list,
        weights: Sequence[np.ndarray],
        need_input_grad: bool = True,
    ) -> tuple[np.ndarray | None, dict[int, np.ndarray]]:
        """Gradients of a scalar loss w.r.t. the input and every weight.

        With ``need_input_grad=False`` (the input is raw data, not an
        activation) the walk stops at the first contraction: everything below
        is pure data movement with no parameters, so the expensive
        gradient-through-the-value einsum is skipped and ``None`` is returned
        in the input-gradient slot.
        """
        grad = grad_output
        weight_grads: dict[int, np.ndarray] = {}
        for index in range(len(self.steps) - 1, -1, -1):
            step = self.steps[index]
            if isinstance(step, ContractionStep):
                if not need_input_grad and index == self._first_contraction:
                    for weight_index, contribution in step.backward_weights_only(
                        grad, saved[index], weights
                    ).items():
                        existing = weight_grads.get(weight_index)
                        weight_grads[weight_index] = (
                            contribution if existing is None else existing + contribution
                        )
                    return None, weight_grads
                grad, step_weight_grads = step.backward(grad, saved[index], weights)
                for weight_index, contribution in step_weight_grads.items():
                    existing = weight_grads.get(weight_index)
                    weight_grads[weight_index] = (
                        contribution if existing is None else existing + contribution
                    )
            else:
                if not need_input_grad and (
                    self._first_contraction is None or index < self._first_contraction
                ):
                    # Only view steps remain below: no parameters, no grads.
                    return None, weight_grads
                grad = step.grad(grad)
        return grad if need_input_grad else None, weight_grads

    def describe(self) -> str:
        """One line per step — the compiled program, for debugging and docs."""
        lines = [f"ExecutionPlan {self.input_shape} -> {self.output_shape}"]
        lines.extend(f"  {index:2d}: {step!r}" for index, step in enumerate(self.steps))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ExecutionPlan(steps={len(self.steps)}, weights={self.weight_count}, "
            f"{self.input_shape}->{self.output_shape})"
        )


# ---------------------------------------------------------------------------
# Step fusion
# ---------------------------------------------------------------------------


def _fuse_steps(steps: list) -> list:
    """Drop identity view steps and merge adjacent transposes / reshapes."""
    changed = True
    while changed:
        changed = False
        fused: list = []
        for step in steps:
            previous = fused[-1] if fused else None
            if isinstance(step, TransposeStep) and step.order == tuple(range(len(step.order))):
                changed = True
                continue
            if isinstance(step, ReshapeStep) and step.shape == step.input_shape:
                changed = True
                continue
            if isinstance(step, TransposeStep) and isinstance(previous, TransposeStep):
                fused[-1] = TransposeStep(tuple(previous.order[i] for i in step.order))
                changed = True
                continue
            if isinstance(step, ReshapeStep) and isinstance(previous, ReshapeStep):
                fused[-1] = ReshapeStep(step.shape, previous.input_shape)
                changed = True
                continue
            fused.append(step)
        steps = fused
    return steps


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


class _ContractionGroup:
    """Accumulates a run of Share/Expand/Reduce into one fused einsum.

    ``labels`` maps dim uid -> subscript letter for every dim the group has
    seen; the value operand's subscript is fixed when the group opens, weight
    and ones operands accumulate, and reductions simply drop axes from the
    live set — the output subscript is read off the live axes at flush time.
    """

    def __init__(self, axes: Sequence[Dim], shape: Sequence[int]) -> None:
        self._letters = iter(string.ascii_letters)
        self.labels: dict[int, str] = {}
        self.value_sub = "".join(self.label_for(dim) for dim in axes)
        self.value_shape = tuple(shape)
        self.operand_subs: list[str] = [self.value_sub]
        self.operand_specs: list[tuple[str, int | None]] = [("value", None)]
        self.operand_shapes: list[tuple[int, ...]] = [self.value_shape]
        self.has_share = False
        #: plain steps to emit instead when the group never sees a Share.
        self.fallback: list = []

    def label_for(self, dim: Dim) -> str:
        if dim.uid not in self.labels:
            try:
                self.labels[dim.uid] = next(self._letters)
            except StopIteration:  # pragma: no cover - >52 axes in one group
                raise PlanError("contraction group exceeds the einsum label alphabet")
        return self.labels[dim.uid]

    def add_operand(self, kind: str, payload, sub: str, shape: tuple[int, ...]) -> None:
        self.operand_subs.append(sub)
        self.operand_specs.append((kind, payload))
        self.operand_shapes.append(shape)


class _PlanBuilder:
    """Walks the lowering trace once, tracking (axes, concrete shape)."""

    def __init__(self, operator: SynthesizedOperator, binding: Mapping[Variable, int]) -> None:
        self.operator = operator
        self.binding = dict(binding)
        self.graph = operator.graph
        self.steps: list = []
        self.axes: list[Dim] = [
            self.graph.frontier[index] for index in operator.input_assignment
        ]
        self.shape: list[int] = [self._extent(dim) for dim in self.axes]
        self._multiplied: set[int] = set()
        self._group: _ContractionGroup | None = None

    def _extent(self, dim: Dim) -> int:
        return dim.size.evaluate(self.binding)

    def _axis_of(self, dim: Dim) -> int:
        try:
            return self.axes.index(dim)
        except ValueError as exc:
            raise PlanError(f"dim {dim!r} is not a live axis") from exc

    def build(self) -> ExecutionPlan:
        input_shape = tuple(self.shape)
        for app in reversed(self.graph.applications):
            primitive = app.primitive
            if isinstance(primitive, Share):
                self._share(app)
            elif isinstance(primitive, Reduce):
                self._reduce(app)
            elif isinstance(primitive, Expand):
                self._expand(app)
            else:
                # Data-movement primitives close the running contraction group.
                self._flush_group()
                if isinstance(primitive, Merge):
                    self._merge(app)
                elif isinstance(primitive, Split):
                    self._split(app)
                elif isinstance(primitive, Shift):
                    self._shift(app, primitive.amount)
                elif isinstance(primitive, Unfold):
                    self._unfold(app)
                elif isinstance(primitive, Stride):
                    self._stride(app, primitive)
                else:  # pragma: no cover - defensive
                    raise PlanError(f"unknown primitive {primitive!r}")
        self._flush_group()

        output_positions = []
        for dim in self.graph.output_dims:
            if dim not in self.axes:
                raise PlanError(f"output dim {dim!r} missing after lowering")
            output_positions.append(self.axes.index(dim))
        if len(self.axes) != len(self.graph.output_dims):
            extra = [d for d in self.axes if d not in self.graph.output_dims]
            raise PlanError(f"unexpected residual axes {extra!r}")
        self._emit_transpose(output_positions)
        return ExecutionPlan(
            _fuse_steps(self.steps),
            input_shape,
            tuple(self.shape),
            len(self.graph.weights),
        )

    # -- contraction-group handling -----------------------------------------

    def _ensure_group(self) -> _ContractionGroup:
        if self._group is None:
            self._group = _ContractionGroup(self.axes, self.shape)
        return self._group

    def _flush_group(self) -> None:
        group, self._group = self._group, None
        if group is None:
            return
        if not group.has_share:
            self.steps.extend(group.fallback)
            return
        output_sub = "".join(group.labels[dim.uid] for dim in self.axes)
        self.steps.append(
            ContractionStep(
                group.operand_subs,
                group.operand_specs,
                group.operand_shapes,
                output_sub,
                tuple(self.shape),
            )
        )

    # -- emission helpers ---------------------------------------------------

    def _emit_transpose(self, order: list[int]) -> None:
        self.steps.append(TransposeStep(tuple(order)))
        self.axes = [self.axes[i] for i in order]
        self.shape = [self.shape[i] for i in order]

    def _emit_reshape(self, shape: list[int]) -> None:
        self.steps.append(ReshapeStep(tuple(shape), tuple(self.shape)))
        self.shape = list(shape)

    # -- per-primitive compilation (mirrors codegen.eager exactly) ----------

    def _merge(self, app) -> None:
        (bottom,) = app.consumed
        outer, inner = app.produced
        outer_axis = self._axis_of(outer)
        inner_axis = self._axis_of(inner)
        order = list(range(len(self.axes)))
        order.remove(inner_axis)
        insert_at = order.index(outer_axis) + 1
        order.insert(insert_at, inner_axis)
        self._emit_transpose(order)
        outer_axis = self.axes.index(outer)
        new_shape = list(self.shape)
        new_shape[outer_axis : outer_axis + 2] = [self._extent(bottom)]
        self._emit_reshape(new_shape)
        self.axes = self.axes[:outer_axis] + [bottom] + self.axes[outer_axis + 2 :]

    def _split(self, app) -> None:
        major, minor = app.consumed
        (top,) = app.produced
        axis = self._axis_of(top)
        new_shape = list(self.shape)
        new_shape[axis : axis + 1] = [self._extent(major), self._extent(minor)]
        self._emit_reshape(new_shape)
        self.axes = self.axes[:axis] + [major, minor] + self.axes[axis + 1 :]

    def _shift(self, app, amount: int) -> None:
        (bottom,) = app.consumed
        (top,) = app.produced
        axis = self._axis_of(top)
        self.steps.append(RollStep(-amount, axis))
        self.axes = list(self.axes)
        self.axes[axis] = bottom

    def _expand(self, app) -> None:
        (bottom,) = app.consumed
        extent = self._extent(bottom)
        group = self._ensure_group()
        self.axes = list(self.axes) + [bottom]
        self.shape = list(self.shape) + [extent]
        group.add_operand("ones", extent, group.label_for(bottom), (extent,))
        group.fallback.append(BroadcastStep(tuple(self.shape)))

    def _unfold(self, app) -> None:
        main, window = app.consumed
        (top,) = app.produced
        axis = self._axis_of(top)
        window_extent = self._extent(window)
        self.steps.append(UnfoldStep(axis, window_extent, tuple(self.shape)))
        self.axes = list(self.axes)
        self.axes[axis] = main
        self.axes.append(window)
        self.shape = list(self.shape) + [window_extent]

    def _stride(self, app, primitive: Stride) -> None:
        (bottom,) = app.consumed
        (top,) = app.produced
        axis = self._axis_of(top)
        step = primitive.stride.evaluate(self.binding)
        self.steps.append(StrideSliceStep(axis, step, tuple(self.shape)))
        self.axes = list(self.axes)
        self.axes[axis] = bottom
        self.shape = list(self.shape)
        self.shape[axis] = self._extent(bottom)

    def _reduce(self, app) -> None:
        (produced,) = app.produced
        axis = self._axis_of(produced)
        group = self._ensure_group()
        group.label_for(self.axes[axis])  # ensure the reduced axis is labelled
        group.fallback.append(SumStep(axis, tuple(self.shape)))
        self.axes = self.axes[:axis] + self.axes[axis + 1 :]
        self.shape = self.shape[:axis] + self.shape[axis + 1 :]

    def _share(self, app) -> None:
        weight_index = app.weight_index
        assert weight_index is not None
        if weight_index in self._multiplied:
            # Already multiplied at the last Share of its group.
            return
        self._multiplied.add(weight_index)

        weight = self.graph.weights[weight_index]
        group = self._ensure_group()
        group.has_share = True
        weight_sub = ""
        new_axes: list[Dim] = []
        for wdim in weight.dims:
            target = wdim.identified_with
            if target is None:  # pragma: no cover - defensive
                raise PlanError(f"weight dim {wdim!r} has no identified coordinate")
            weight_sub += group.label_for(target)
            if target not in self.axes and target not in new_axes:
                new_axes.append(target)
        weight_shape = tuple(self._extent(dim) for dim in weight.dims)
        group.add_operand("weight", weight_index, weight_sub, weight_shape)
        self.axes = list(self.axes) + new_axes
        self.shape = list(self.shape) + [self._extent(dim) for dim in new_axes]


def compile_plan(
    operator: SynthesizedOperator, binding: Mapping[Variable, int]
) -> ExecutionPlan:
    """Compile one operator for one concrete binding into an execution plan."""
    return _PlanBuilder(operator, binding).build()


# ---------------------------------------------------------------------------
# Process-wide memoization
# ---------------------------------------------------------------------------


def plan_cache_key(operator: SynthesizedOperator, binding: Mapping[Variable, int]) -> tuple:
    """The memoization key: structure plus every concrete extent.

    The canonical signature fixes the application structure; the binding and
    the concrete input/output/weight shapes pin every extent the plan bakes
    in, so structurally identical (graph, binding) pairs share one plan and
    nothing else ever aliases one.
    """
    return (
        operator.graph.signature(),
        operator.input_assignment,
        tuple(sorted((variable.name, int(value)) for variable, value in binding.items())),
        tuple(operator.concrete_input_shape(binding)),
        tuple(operator.concrete_output_shape(binding)),
        tuple(operator.weight_shapes(binding)),
    )


def cached_plan(
    operator: SynthesizedOperator, binding: Mapping[Variable, int], runtime=None
) -> ExecutionPlan:
    """The compiled plan for ``(operator, binding)``, memoized per context.

    ``runtime`` is the :class:`~repro.runtime.RuntimeContext` whose plan
    cache is used; ``None`` resolves the ambient context.

    Under ``RuntimeConfig.verify_plans`` every freshly compiled plan is
    statically verified (:func:`repro.analysis.plan_verifier.verify_plan`)
    before it enters the cache — verification happens once per memoized plan,
    never per forward call, so the knob is safe to leave on in tests and CI.
    """
    # Lazy import: repro.search.__init__ pulls in codegen via substitution, so
    # a module-level import here would cycle.
    from repro.runtime import current

    context = runtime if runtime is not None else current()

    def compute() -> ExecutionPlan:
        plan = compile_plan(operator, binding)
        if context.config.verify_plans:
            from repro.analysis.plan_verifier import verify_plan

            verify_plan(plan)
        return plan

    return context.cached_plan(plan_cache_key(operator, binding), compute)
