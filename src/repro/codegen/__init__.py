"""Code generators for synthesized operators (Section 8).

Two backends mirror the paper's:

* :mod:`repro.codegen.eager` — the PyTorch-like generator: lowers a pGraph
  top-down into differentiable tensor operations of :mod:`repro.nn`, so the
  operator can be dropped into a backbone model and trained;
* :mod:`repro.codegen.loopnest` — the TVM-TE-like generator: lowers the
  pGraph bottom-up into a loop-nest IR (with the materialized-reduction
  optimization of Figure 4) that the simulated tensor compiler schedules and
  costs.

:mod:`repro.codegen.plan` compiles the eager lowering once per
``(graph, binding)`` into a flat :class:`ExecutionPlan` of primitive numpy
steps with a matching hand-derived backward plan; ``EagerOperator.forward``
runs through it by default (``REPRO_COMPILED_FORWARD=0`` restores the
per-call interpreter).
"""

from repro.codegen.eager import EagerOperator, lower_to_module
from repro.codegen.loopnest import LoopNest, LoopNestProgram, lower_to_loopnest
from repro.codegen.plan import ExecutionPlan, cached_plan, compile_plan, plan_cache_key

__all__ = [
    "EagerOperator",
    "lower_to_module",
    "LoopNest",
    "LoopNestProgram",
    "lower_to_loopnest",
    "ExecutionPlan",
    "cached_plan",
    "compile_plan",
    "plan_cache_key",
]
