"""Code generators for synthesized operators (Section 8).

Two backends mirror the paper's:

* :mod:`repro.codegen.eager` — the PyTorch-like generator: lowers a pGraph
  top-down into differentiable tensor operations of :mod:`repro.nn`, so the
  operator can be dropped into a backbone model and trained;
* :mod:`repro.codegen.loopnest` — the TVM-TE-like generator: lowers the
  pGraph bottom-up into a loop-nest IR (with the materialized-reduction
  optimization of Figure 4) that the simulated tensor compiler schedules and
  costs.
"""

from repro.codegen.eager import EagerOperator, lower_to_module
from repro.codegen.loopnest import LoopNest, LoopNestProgram, lower_to_loopnest

__all__ = [
    "EagerOperator",
    "lower_to_module",
    "LoopNest",
    "LoopNestProgram",
    "lower_to_loopnest",
]
