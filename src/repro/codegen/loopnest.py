"""The loop-nest (TVM-TE-like) code generator and the materialized-reduction pass.

The eager generator (:mod:`repro.codegen.eager`) is what training uses; this
module produces the representation the *simulated tensor compiler* consumes: a
sequence of loop-nest stages, each with an iteration space, multiply-accumulate
count and memory-traffic estimate.

The central optimization is the paper's **materialized reduction** (Section 8,
Figure 4): a naive lowering evaluates ``|output| * prod(reductions)``
multiply-accumulates, but when a ``Reduce`` can be performed before a
1-to-many view (or before contracting a later weight) the reduction can be
*materialized* into an intermediate tensor, lowering FLOPs — e.g. from
``k*H`` to ``(1 + k/s) * H`` in the paper's pooling example.  The lowering
here searches over reduction/weight orderings and keeps the cheapest staged
program (never worse than the naive single stage).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.operator import SynthesizedOperator
from repro.core.pgraph import Dim, DimRole, PGraph
from repro.core.primitives import Expand, Merge, Reduce, Share, Shift, Split, Stride, Unfold
from repro.ir.variables import Variable


# ---------------------------------------------------------------------------
# Iteration-space atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Atom:
    """One axis of a stage's iteration space.

    ``identity`` is the pGraph dim the axis corresponds to, ``extent`` its
    concrete size and ``components`` the set of dim uids the axis *bijectively
    covers* — iterating the axis determines the value of every covered
    coordinate (used to avoid double-counting when, e.g., a ``Split`` product
    covers both of its factors, or an unfolded axis covers the output
    coordinate it slides over).
    """

    identity: int
    extent: int
    components: frozenset[int]
    leaf_components: frozenset[int]


def _atom_for(dim: Dim, graph: PGraph, binding: Mapping[Variable, int]) -> Atom:
    extent = dim.size.evaluate(binding)
    components, leaves = _bijective_components(dim, graph)
    return Atom(identity=dim.uid, extent=extent, components=components, leaf_components=leaves)


def _bijective_components(dim: Dim, graph: PGraph) -> tuple[frozenset[int], frozenset[int]]:
    """Dims whose values are determined by iterating ``dim`` (plus leaf dims)."""
    components: set[int] = {dim.uid}
    leaves: set[int] = set()
    producer = None
    for app in graph.applications:
        if dim in app.produced:
            producer = app
            break
    if producer is None:
        # Output dims and weight-identified output dims are leaves.
        leaves.add(dim.uid)
        return frozenset(components), frozenset(leaves)
    primitive = producer.primitive
    if isinstance(primitive, Split):
        for consumed in producer.consumed:
            sub, sub_leaves = _bijective_components(consumed, graph)
            components |= sub
            leaves |= sub_leaves
    elif isinstance(primitive, (Shift, Stride)):
        sub, sub_leaves = _bijective_components(producer.consumed[0], graph)
        components |= sub
        leaves |= sub_leaves
    elif isinstance(primitive, Unfold):
        # The unfolded axis determines (covers) its *main* coordinate but not
        # the window coordinate — the window stays a separate loop.
        main = producer.consumed[0]
        sub, sub_leaves = _bijective_components(main, graph)
        components |= sub
        leaves |= sub_leaves
    elif isinstance(primitive, Reduce):
        leaves.add(dim.uid)
    # Merge / Expand / Share produce dims that cover nothing extra.
    return frozenset(components), frozenset(leaves)


def _count(atoms: Sequence[Atom]) -> tuple[int, list[Atom]]:
    """Deduplicate atoms (drop those covered by others) and return the product."""
    kept: list[Atom] = []
    covered: set[int] = set()
    for atom in sorted(atoms, key=lambda a: (-len(a.components), -a.extent, a.identity)):
        if atom.components <= covered and atom.identity in covered:
            continue
        kept.append(atom)
        covered |= atom.components
    product = 1
    for atom in kept:
        product *= atom.extent
    return product, kept


# ---------------------------------------------------------------------------
# Loop-nest program
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoopNest:
    """One materialized stage: an iteration space plus data movement."""

    name: str
    extents: tuple[int, ...]
    macs: int
    input_elements: int
    weight_elements: int
    output_elements: int

    @property
    def iterations(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    @property
    def bytes_moved(self) -> int:
        """Approximate FP32 traffic: read inputs and weights, write outputs."""
        return 4 * (self.input_elements + self.weight_elements + self.output_elements)


@dataclass(frozen=True)
class LoopNestProgram:
    """A staged lowering of one operator at one concrete binding."""

    operator_name: str
    stages: tuple[LoopNest, ...]
    naive_macs: int
    parameter_count: int
    input_elements: int
    output_elements: int

    def structural_key(self) -> tuple:
        """The program's identity for compile caching: everything but names.

        Tuning outcomes depend only on the iteration spaces and data volumes,
        so structurally identical layers (e.g. the repeated blocks of a
        backbone profile) share one cache entry regardless of slot naming.
        """
        return (
            tuple(
                (
                    stage.extents,
                    stage.macs,
                    stage.input_elements,
                    stage.weight_elements,
                    stage.output_elements,
                )
                for stage in self.stages
            ),
            self.naive_macs,
            self.parameter_count,
            self.input_elements,
            self.output_elements,
        )

    @property
    def macs(self) -> int:
        return sum(stage.macs for stage in self.stages)

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @property
    def bytes_moved(self) -> int:
        return sum(stage.bytes_moved for stage in self.stages)

    @property
    def materialization_gain(self) -> float:
        """How much the materialized-reduction pass lowered the MAC count."""
        return self.naive_macs / max(self.macs, 1)


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------


def _weight_factor_atoms(
    graph: PGraph, binding: Mapping[Variable, int]
) -> list[list[Atom]]:
    factors = []
    for weight in graph.weights:
        atoms = []
        for wdim in weight.dims:
            target = wdim.identified_with
            assert target is not None
            atoms.append(_atom_for(target, graph, binding))
        factors.append(atoms)
    return factors


def _needed_leaves(factors: Sequence[Sequence[Atom]]) -> set[int]:
    needed: set[int] = set()
    for factor in factors:
        for atom in factor:
            needed |= set(atom.components)
    return needed


def _decompose(atoms: Sequence[Atom], eliminated: set[int], graph: PGraph,
               binding: Mapping[Variable, int]) -> list[Atom]:
    """Rebuild intermediate atoms after eliminating some reduction dims."""
    dims_by_uid = _dims_by_uid(graph)
    result: list[Atom] = []
    for atom in atoms:
        if atom.identity in eliminated:
            continue
        if atom.components & eliminated:
            # The axis covered an eliminated coordinate: fall back to the
            # surviving leaf coordinates it covered.
            for uid in sorted(atom.leaf_components - eliminated):
                result.append(_atom_for(dims_by_uid[uid], graph, binding))
        else:
            result.append(atom)
    return result


def _dims_by_uid(graph: PGraph) -> dict[int, Dim]:
    dims: dict[int, Dim] = {dim.uid: dim for dim in graph.output_dims}
    for app in graph.applications:
        for dim in itertools.chain(app.consumed, app.produced, app.weight_dims, app.matched):
            dims.setdefault(dim.uid, dim)
    return dims


def _program_for_order(
    operator: SynthesizedOperator,
    binding: Mapping[Variable, int],
    weight_order: Sequence[int],
    reduction_order: Sequence[Dim],
) -> list[LoopNest]:
    graph = operator.graph
    weight_factors = _weight_factor_atoms(graph, binding)
    input_atoms = [_atom_for(dim, graph, binding) for dim in graph.frontier]
    output_atoms = [_atom_for(dim, graph, binding) for dim in graph.output_dims]
    output_elements = 1
    for dim in graph.output_dims:
        output_elements *= dim.size.evaluate(binding)

    reduction_uids = {dim.uid for dim in graph.reduction_dims}
    current = list(input_atoms)
    current_elements = 1
    for dim in graph.frontier:
        current_elements *= dim.size.evaluate(binding)

    stages: list[LoopNest] = []
    remaining_weights = list(weight_order)
    pending_reductions = list(reduction_order)

    def finalize_needed() -> set[int]:
        needed = _needed_leaves([weight_factors[i] for i in remaining_weights])
        needed |= {dim.uid for dim in graph.output_dims}
        return needed

    for step_index, weight_index in enumerate(weight_order):
        remaining_weights = [w for w in weight_order if weight_order.index(w) > step_index]
        participating = current + list(weight_factors[weight_index])
        macs, kept = _count(participating)
        needed = finalize_needed()
        eliminated = {
            uid
            for uid in reduction_uids
            if uid not in needed and any(uid in atom.components for atom in kept)
        }
        new_atoms = _decompose(kept, eliminated, graph, binding)
        out_elems, _ = _count(new_atoms)
        weight_elems = graph.weights[weight_index].parameter_count(binding)
        stages.append(
            LoopNest(
                name=f"contract_w{weight_index}",
                extents=tuple(atom.extent for atom in kept),
                macs=macs,
                input_elements=current_elements,
                weight_elements=weight_elems,
                output_elements=out_elems,
            )
        )
        current = new_atoms
        current_elements = out_elems
        pending_reductions = [dim for dim in pending_reductions if dim.uid not in eliminated]

    # Remaining reductions (none of them touch weights anymore): one stage each.
    for dim in reduction_order:
        if dim not in pending_reductions:
            continue
        participating = current + [_atom_for(dim, graph, binding)]
        macs, kept = _count(participating)
        eliminated = {dim.uid}
        new_atoms = _decompose(kept, eliminated, graph, binding)
        out_elems, _ = _count(new_atoms)
        stages.append(
            LoopNest(
                name=f"reduce_{dim.name}",
                extents=tuple(atom.extent for atom in kept),
                macs=macs,
                input_elements=current_elements,
                weight_elements=0,
                output_elements=out_elems,
            )
        )
        current = new_atoms
        current_elements = out_elems
        pending_reductions.remove(dim)

    # Final stage: produce the output if the last contraction did not already.
    final_atoms = current + output_atoms
    macs, kept = _count(final_atoms)
    if current_elements != output_elements or macs != current_elements:
        stages.append(
            LoopNest(
                name="epilogue",
                extents=tuple(atom.extent for atom in kept),
                macs=macs if macs > output_elements else output_elements,
                input_elements=current_elements,
                weight_elements=0,
                output_elements=output_elements,
            )
        )
    return stages


def lower_to_loopnest(
    operator: SynthesizedOperator,
    binding: Mapping[Variable, int],
    materialize: bool = True,
    max_orderings: int = 24,
) -> LoopNestProgram:
    """Lower an operator to a staged loop-nest program.

    With ``materialize=False`` the naive single-stage lowering is returned
    (the ablation baseline); otherwise orderings of weight contractions and
    residual reductions are enumerated (bounded by ``max_orderings``) and the
    cheapest program — never worse than the naive one — is kept.
    """
    graph = operator.graph
    naive_macs = graph.macs(binding)
    parameter_count = graph.parameter_count(binding)
    input_elements = 1
    for size in operator.spec.input_shape:
        input_elements *= size.evaluate(binding)
    output_elements = 1
    for size in operator.spec.output_shape:
        output_elements *= size.evaluate(binding)

    naive_stage = LoopNest(
        name="naive",
        extents=(naive_macs,),
        macs=naive_macs,
        input_elements=input_elements,
        weight_elements=parameter_count,
        output_elements=output_elements,
    )
    naive_program = LoopNestProgram(
        operator_name=operator.spec.name,
        stages=(naive_stage,),
        naive_macs=naive_macs,
        parameter_count=parameter_count,
        input_elements=input_elements,
        output_elements=output_elements,
    )
    if not materialize:
        return naive_program

    weight_indices = list(range(len(graph.weights)))
    reductions = list(graph.reduction_dims)
    weight_orders = list(itertools.permutations(weight_indices)) or [()]
    reduction_orders = list(itertools.permutations(reductions))
    if len(reduction_orders) > max_orderings:
        reduction_orders = reduction_orders[:max_orderings]
    if len(weight_orders) > max_orderings:
        weight_orders = weight_orders[:max_orderings]

    best = naive_program
    for weight_order in weight_orders:
        for reduction_order in reduction_orders:
            stages = _program_for_order(operator, binding, list(weight_order), list(reduction_order))
            program = LoopNestProgram(
                operator_name=operator.spec.name,
                stages=tuple(stages),
                naive_macs=naive_macs,
                parameter_count=parameter_count,
                input_elements=input_elements,
                output_elements=output_elements,
            )
            if program.macs < best.macs:
                best = program
    return best
