"""Implementation of the ``repro`` command line (see :mod:`repro.cli`).

The CLI is a thin shell over three layers that do the real work:

* :mod:`repro.runtime` — ``main()`` is a process edge: it calls
  ``RuntimeConfig.from_env()`` exactly once, builds a
  :class:`~repro.runtime.RuntimeContext` and activates it around the
  command; flags become explicit config overrides on derived contexts;
* :mod:`repro.experiments.runner` — maps an :class:`ExperimentConfig` onto
  the experiment's ``run()`` under a derived runtime context;
* :mod:`repro.results` — the artifact store that records land in, with the
  context's cache snapshot loaded/saved around every run so repeated
  invocations reuse each other's work.

``config_from_args`` is deliberately a pure function of the parsed arguments
so the flag → config mapping is unit-testable without running anything.
"""

from __future__ import annotations

import argparse
import ast
import contextlib
import csv
import io
import json
import logging
import os
import signal
import sys
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.analysis.rules import ALL_RULES
from repro.experiments.runner import (
    ExperimentConfig,
    experiment_descriptions,
    experiment_names,
    run_experiment,
)
from repro.results import ArtifactStore, ResultRecord
from repro.runtime import (
    ENV_KNOBS,
    CacheLockTimeout,
    FaultPlan,
    FaultPlanError,
    RuntimeConfig,
    RuntimeContext,
    current,
    default_context,
)

#: exit code of a run refused because another process holds the store lock.
EXIT_STORE_LOCKED = 4

log = logging.getLogger(__name__)


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run, store and report the paper's experiments.",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log cache and runner activity"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser("run", help="run one experiment and store its record")
    run.add_argument("experiment", choices=experiment_names(), help="which figure/table to run")
    fidelity = run.add_mutually_exclusive_group()
    fidelity.add_argument(
        "--smoke", action="store_true", help="shrunken workloads (REPRO_SMOKE=1)"
    )
    fidelity.add_argument(
        "--full", action="store_true", help="full-fidelity workloads (REPRO_SMOKE=0)"
    )
    run.add_argument("--train-steps", type=int, help="proxy-training step budget")
    run.add_argument("--processes", type=int, help="worker processes for candidate evaluation")
    run.add_argument(
        "--shards",
        type=int,
        help="worker shards for sharded search execution (REPRO_SEARCH_SHARDS); "
        "results are identical at any shard count",
    )
    run.add_argument("--seed", type=int, help="random seed for experiments that take one")
    run.add_argument(
        "--option",
        action="append",
        default=[],
        type=_parse_option,
        metavar="KEY=VALUE",
        help="extra keyword for the experiment's run(), e.g. models=['resnet18'] "
        "(VALUE is parsed as a Python literal, falling back to a string)",
    )
    run.add_argument("--results-dir", help="artifact store root (default: $REPRO_RESULTS_DIR or ./results)")
    run.add_argument(
        "--no-cache-persist",
        action="store_true",
        help="do not load/save the evaluation-cache snapshot around this run",
    )
    run.add_argument(
        "--debug",
        action="store_true",
        help="re-raise experiment failures with the full traceback "
        "(default: a one-line message; the traceback goes to the debug log)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the coalescing search service (concurrent clients share "
        "reward waves and the warm caches)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (default 0: pick an ephemeral port)"
    )
    serve.add_argument("--socket", help="serve on this unix socket path instead of TCP")
    serve.add_argument(
        "--window-ms",
        type=float,
        default=50.0,
        help="wave coalescing window in milliseconds: how long a lone request's "
        "wave waits for company before firing (default 50)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        help="worker shards for each coalesced fan-out (REPRO_SEARCH_SHARDS)",
    )
    serve.add_argument("--results-dir", help="artifact store root request records land in")
    serve.add_argument(
        "--no-cache-persist",
        action="store_true",
        help="do not load/save the evaluation-cache snapshot around the service",
    )

    bench = subparsers.add_parser(
        "bench",
        help="time one experiment (compiled vs eager-float64) and record the trajectory",
    )
    bench.add_argument(
        "experiment",
        nargs="?",
        choices=experiment_names() + ["serve", "library"],
        help="which figure/table to time (omit with --all); `serve` benchmarks "
        "the coalescing search service against serial parity runs; `library` "
        "benchmarks graph-library builds and warm-started search",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=3,
        help="bench serve: concurrent clients driving the service (default 3)",
    )
    bench.add_argument(
        "--all",
        action="store_true",
        dest="all_experiments",
        help="sweep every registered experiment into one trajectory file",
    )
    bench_fidelity = bench.add_mutually_exclusive_group()
    bench_fidelity.add_argument(
        "--smoke", action="store_true", help="shrunken workloads (REPRO_SMOKE=1)"
    )
    bench_fidelity.add_argument(
        "--full", action="store_true", help="full-fidelity workloads (REPRO_SMOKE=0)"
    )
    bench.add_argument("--train-steps", type=int, help="proxy-training step budget")
    bench.add_argument("--processes", type=int, help="worker processes for candidate evaluation")
    bench.add_argument(
        "--shards",
        type=int,
        help="worker shards for sharded search execution (REPRO_SEARCH_SHARDS); "
        "results are identical at any shard count",
    )
    bench.add_argument("--seed", type=int, help="random seed for experiments that take one")
    bench.add_argument(
        "--repeats", type=int, default=1, help="timed repetitions per leg (caches cleared between)"
    )
    bench.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the eager-interpreter float64 reference leg",
    )
    bench.add_argument(
        "--max-seconds",
        type=float,
        help="exit non-zero if the mean compiled wall-clock exceeds this (CI regression guard)",
    )
    bench.add_argument("--results-dir", help="artifact store root (BENCH_<experiment>.json lives there)")
    bench.add_argument(
        "--output", help="write the bench record here instead of <results-dir>/BENCH_<experiment>.json"
    )

    report = subparsers.add_parser("report", help="summarize stored runs")
    report.add_argument("--results-dir", help="artifact store root")
    report.add_argument("--experiment", choices=experiment_names(), help="only this experiment")
    report.add_argument("--format", choices=("markdown", "csv"), default="markdown")
    report.add_argument("--output", help="write the report here instead of stdout")

    cache = subparsers.add_parser("cache", help="show evaluation-cache statistics")
    cache.add_argument("--results-dir", help="artifact store root")
    cache.add_argument(
        "--clear", action="store_true", help="delete the persisted snapshot and clear in-memory caches"
    )
    cache.add_argument(
        "--json", action="store_true", help="machine-readable snapshot/lock state"
    )

    lister = subparsers.add_parser("list", help="list experiments and stored runs")
    lister.add_argument("--results-dir", help="artifact store root")
    lister.add_argument(
        "--json", action="store_true", help="machine-readable experiments and runs"
    )

    library = subparsers.add_parser(
        "library",
        help="build and inspect the ahead-of-time graph library "
        "(enumerate once, warm-start every search)",
    )
    library_sub = library.add_subparsers(dest="library_command", required=True)

    lib_build = library_sub.add_parser(
        "build", help="enumerate a slot family's design space into a library artifact"
    )
    lib_build.add_argument(
        "family",
        nargs="?",
        default="all",
        help="slot family to build (gpt2, resnet, resnext, densenet, "
        "efficientnet) or 'all' (default)",
    )
    lib_build.add_argument(
        "--max-depth", type=int, help="enumeration depth (default: per-family)"
    )
    lib_build.add_argument(
        "--shards",
        type=int,
        help="worker shards per enumeration level (REPRO_SEARCH_SHARDS); the "
        "artifact is bit-identical at any shard count",
    )
    lib_build.add_argument(
        "--neighbours",
        type=int,
        default=8,
        help="nearest-neighbour list length per complete entry (default 8)",
    )
    lib_build.add_argument(
        "--force", action="store_true", help="rebuild even if a matching artifact exists"
    )
    lib_build.add_argument(
        "--no-checkpoint",
        action="store_true",
        help="skip per-level checkpointing (a killed build restarts from scratch)",
    )
    lib_build.add_argument("--json", action="store_true", help="machine-readable summary")
    lib_build.add_argument(
        "--library-dir", help="library root (default: $REPRO_LIBRARY_DIR or <results>/library)"
    )
    lib_build.add_argument("--results-dir", help="artifact store root")

    lib_stats = library_sub.add_parser(
        "stats", help="show a built library's entry counts, pruning statistics and hash"
    )
    lib_stats.add_argument(
        "family", nargs="?", help="one slot family (default: every artifact present)"
    )
    lib_stats.add_argument("--json", action="store_true", help="machine-readable output")
    lib_stats.add_argument(
        "--library-dir", help="library root (default: $REPRO_LIBRARY_DIR or <results>/library)"
    )
    lib_stats.add_argument("--results-dir", help="artifact store root")

    lib_query = library_sub.add_parser(
        "query", help="look up library entries (complete candidates, neighbours)"
    )
    lib_query.add_argument("family", help="slot family whose library to query")
    lib_query.add_argument(
        "--signature", help="show one entry (with its nearest neighbours) by signature"
    )
    lib_query.add_argument(
        "--top", type=int, default=10, help="how many complete entries to list (default 10)"
    )
    lib_query.add_argument("--json", action="store_true", help="machine-readable output")
    lib_query.add_argument(
        "--library-dir", help="library root (default: $REPRO_LIBRARY_DIR or <results>/library)"
    )
    lib_query.add_argument("--results-dir", help="artifact store root")

    show = subparsers.add_parser(
        "config", help="print the resolved runtime configuration and its provenance"
    )
    show.add_argument("--json", action="store_true", help="machine-readable output")
    show.add_argument(
        "--diff",
        metavar="RUN_ID",
        help="compare the live resolved config against a stored record's "
        "captured environment (exit 1 when they differ)",
    )
    show.add_argument("--results-dir", help="artifact store root the record lives in")

    chaos = subparsers.add_parser(
        "chaos",
        help="run an experiment under a fault plan and assert fingerprint "
        "parity with the clean serial run",
    )
    chaos.add_argument("experiment", choices=experiment_names(), help="which figure/table to run")
    chaos.add_argument(
        "--plan",
        required=True,
        help="fault plan spec (REPRO_FAULT_PLAN grammar, e.g. "
        "'kill:shard-entry:shard=1,attempt=1')",
    )
    chaos_fidelity = chaos.add_mutually_exclusive_group()
    chaos_fidelity.add_argument(
        "--smoke", action="store_true", help="shrunken workloads (REPRO_SMOKE=1)"
    )
    chaos_fidelity.add_argument(
        "--full", action="store_true", help="full-fidelity workloads (REPRO_SMOKE=0)"
    )
    chaos.add_argument("--train-steps", type=int, help="proxy-training step budget")
    chaos.add_argument("--seed", type=int, help="random seed for experiments that take one")
    chaos.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count of the chaos leg (default 2; the clean leg is serial)",
    )
    chaos.add_argument(
        "--timeout", type=float, help="per-shard wall-clock timeout seconds (REPRO_SHARD_TIMEOUT)"
    )
    chaos.add_argument(
        "--retries", type=int, help="per-shard retries before serial fallback (REPRO_SHARD_RETRIES)"
    )
    chaos.add_argument(
        "--expect-failures",
        action="store_true",
        help="fail unless the plan actually fired (guards against typo'd plans "
        "that silently run fault-free)",
    )

    lint = subparsers.add_parser(
        "lint", help="statically check src/repro against the project invariants"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE_ID",
        choices=sorted(cls.rule_id for cls in ALL_RULES),
        help="run only this rule (repeatable; default: every rule)",
    )
    lint.add_argument("--json", action="store_true", help="machine-readable findings")
    lint.add_argument(
        "--baseline",
        help="baseline file of reviewed findings (default: scripts/lint_baseline.txt)",
    )
    lint.add_argument(
        "--no-baseline", action="store_true", help="report baselined findings too"
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the reviewed baseline and exit",
    )
    return parser


def _parse_option(text: str) -> tuple[str, object]:
    key, separator, raw = text.partition("=")
    if not separator or not key:
        raise argparse.ArgumentTypeError(f"expected KEY=VALUE, got {text!r}")
    try:
        value: object = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    """The pure flag → :class:`ExperimentConfig` mapping of ``repro run``."""
    smoke: bool | None = None
    if getattr(args, "smoke", False):
        smoke = True
    elif getattr(args, "full", False):
        smoke = False
    # argparse already ran each --option through _parse_option (type=), so
    # entries arrive as (key, value) pairs and malformed input died with a
    # usage error at parse time.
    options = dict(getattr(args, "option", []))
    return ExperimentConfig(
        smoke=smoke,
        train_steps=args.train_steps,
        processes=args.processes,
        shards=getattr(args, "shards", None),
        seed=args.seed,
        options=options,
    )


def _command_runtime(args: argparse.Namespace) -> RuntimeContext:
    """The context a command runs under: the edge context, re-rooted by flags."""
    results_dir = getattr(args, "results_dir", None)
    if results_dir:
        return current().derive(results_dir=str(results_dir))
    return current()


def _store(args: argparse.Namespace) -> ArtifactStore:
    return _command_runtime(args).store


# ---------------------------------------------------------------------------
# repro run
# ---------------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    runtime = _command_runtime(args)
    store = runtime.store
    config = config_from_args(args)
    persist = not args.no_cache_persist

    if persist:
        status = runtime.load_caches(str(store.cache_path))
        if status.status == "locked":
            # Refusing up front beats running: the save at the end would hit
            # the same held lock and this run's work would never be shared.
            _print_lock_advice(status.error, store.cache_path)
            return EXIT_STORE_LOCKED
        if status.status == "loaded" and any(status.entries.values()):
            print(f"cache snapshot {status.summary()}")
        elif not status.ok:
            # Version mismatch or corruption: the run proceeds cold, but say
            # so instead of silently retraining everything.
            print(f"cache snapshot {status.summary()}", file=sys.stderr)

    def _save_snapshot() -> None:
        if not persist:
            return
        status = runtime.save_caches(str(store.cache_path))
        if status.status in ("saved", "merged"):
            # `merged` means other processes' entries were already in the
            # shared store and our delta joined them; the summary carries the
            # merged-entry counts and any lock wait.
            print(f"cache snapshot saved to {store.cache_path}: {status.summary()}")
        else:
            # Caches disabled, the store lock timed out, or the write failed —
            # the status (and the log) carry the details; don't claim success.
            print(f"cache snapshot not written ({status.summary()})")

    try:
        with runtime.activate(adopt=False):
            outcome = run_experiment(args.experiment, config, store=store)
    except KeyboardInterrupt:
        # The partial record (status=interrupted) was already stored by the
        # runner; persisting the caches makes the rerun skip finished work.
        # The save is shielded: a second Ctrl-C here would otherwise unwind
        # it mid-critical-section and strand the shared store lock for every
        # other process.
        with _deferred_interrupts():
            _save_snapshot()
        print(
            f"\ninterrupted — rerun `repro run {args.experiment}` to resume "
            "from the persisted caches",
            file=sys.stderr,
        )
        return 130
    except CacheLockTimeout as exc:
        # A held store lock inside the run (partial record already saved by
        # the runner): actionable advice, never a traceback.
        _print_lock_advice(str(exc), store.cache_path)
        return EXIT_STORE_LOCKED
    except Exception as exc:
        _save_snapshot()
        log.debug("experiment %s failed", args.experiment, exc_info=True)
        if getattr(args, "debug", False):
            raise
        print(
            f"experiment failed: {exc} (rerun with --debug for the full traceback)",
            file=sys.stderr,
        )
        return 1

    record = outcome.record
    print(record.table)
    print()
    for name, value in sorted(record.metrics.items()):
        print(f"  {name} = {_format_number(value)}")
    print()
    print(f"run {record.run_id}: {record.status} in {record.duration_seconds:.1f}s")
    print(f"fingerprint {record.fingerprint()}")
    print("cache activity:", _format_cache_delta(record.cache_stats))
    _print_shard_failures(record)
    print(f"record stored in {store.run_dir(record.run_id)}")
    _save_snapshot()
    return 0


@contextlib.contextmanager
def _deferred_interrupts():
    """Delay SIGINT delivery for the duration of the block.

    Shields a critical section on the interrupt path — specifically the
    cache-snapshot save, which holds the shared store lock: interrupting it
    would leave the lock held and wedge every other process on the store.
    A Ctrl-C received inside the block is acknowledged on stderr and then
    dropped, because the caller is already on its way to exit 130 — the
    user's intent — the moment the block ends.  Signal handlers can only be
    retargeted from the main thread; elsewhere (tests driving ``main()``
    from a worker thread) the block runs unshielded.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = signal.getsignal(signal.SIGINT)

    def _defer(signum, frame):
        del signum, frame
        print(
            "\nfinishing the cache save before exiting (interrupt deferred)...",
            file=sys.stderr,
        )

    signal.signal(signal.SIGINT, _defer)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)


def _print_lock_advice(detail: str | None, cache_path) -> None:
    """Actionable guidance when the shared cache store lock is held."""
    print(f"run refused: the shared cache store is locked ({detail})", file=sys.stderr)
    print(
        "another process is using the store — wait for it and retry, raise "
        "REPRO_CACHE_LOCK_TIMEOUT, run with --no-cache-persist to skip the "
        f"store, or `repro cache --clear` if the holder is dead and the lock "
        f"is stale ({cache_path}.lock)",
        file=sys.stderr,
    )


def _print_shard_failures(record: ResultRecord) -> None:
    """The run summary's view of supervised-executor diagnostics."""
    failures = record.environment.get("shard_failures") or []
    if not failures:
        return
    print(
        f"shard failures: {len(failures)} worker attempt(s) lost and recovered "
        "(results unaffected)"
    )
    for failure in failures:
        print(
            f"  shard {failure.get('shard')} attempt {failure.get('attempt')} "
            f"[{failure.get('kind')}]: {failure.get('detail')}"
        )


def _format_number(value) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _format_cache_delta(cache_deltas: dict) -> str:
    parts = []
    for name in sorted(cache_deltas):
        delta = cache_deltas[name]
        parts.append(f"{name} {delta.get('hits', 0)} hits / {delta.get('misses', 0)} misses")
    return "; ".join(parts) if parts else "none"


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the coalescing search service until interrupted.

    The daemon loads the cache snapshot once, serves every request over the
    warm shared caches (per-request contexts derived from one root), and
    saves the snapshot on the way out — interrupt-shielded, so Ctrl-C
    Ctrl-C cannot strand the store lock.
    """
    from repro.serve import SearchServer, run_server

    runtime = _command_runtime(args)
    if args.shards is not None:
        runtime = runtime.derive(shards=max(args.shards, 1))
    store = runtime.store
    persist = not args.no_cache_persist

    if persist:
        status = runtime.load_caches(str(store.cache_path))
        if status.status == "locked":
            _print_lock_advice(status.error, store.cache_path)
            return EXIT_STORE_LOCKED
        if status.status == "loaded" and any(status.entries.values()):
            print(f"cache snapshot {status.summary()}")
        elif not status.ok:
            print(f"cache snapshot {status.summary()}", file=sys.stderr)

    server = SearchServer(runtime, window_seconds=max(args.window_ms, 0.0) / 1000.0)

    def _announce(address: str) -> None:
        print(f"serving on {address} — press Ctrl-C to stop", flush=True)

    exit_code = 0
    try:
        with runtime.activate(adopt=False):
            run_server(
                server,
                host=args.host,
                port=args.port,
                socket_path=args.socket,
                on_ready=_announce,
            )
    except KeyboardInterrupt:
        print("\ninterrupted — shutting down", file=sys.stderr)
        exit_code = 130
    finally:
        if args.socket:
            # asyncio closes the listening socket but leaves the filesystem
            # entry; a stale path would fail the next bind with EADDRINUSE.
            Path(args.socket).unlink(missing_ok=True)
        if persist:
            with _deferred_interrupts():
                status = runtime.save_caches(str(store.cache_path))
            if status.status in ("saved", "merged"):
                print(f"cache snapshot saved to {store.cache_path}: {status.summary()}")
            else:
                print(f"cache snapshot not written ({status.summary()})")

    summary = server.status()
    requests = summary["requests"]
    coalescer = summary["coalescer"]
    print(
        f"served {requests['completed']} request(s) "
        f"({requests['failed']} failed) over {summary['derived_contexts']} "
        "derived context(s)"
    )
    print(
        f"coalescer: {coalescer['waves']} wave(s), {coalescer['pending']} "
        f"evaluation(s) -> {coalescer['tasks']} task(s) "
        f"({coalescer['coalesced']} coalesced, {coalescer['cache_hits']} cache hit(s))"
    )
    return exit_code


# ---------------------------------------------------------------------------
# repro bench
# ---------------------------------------------------------------------------


def _bench_leg(
    experiment: str, config: ExperimentConfig, repeats: int, overrides: dict
) -> dict:
    """Time ``repeats`` cold runs of one experiment under config overrides.

    ``overrides`` are explicit :class:`~repro.runtime.RuntimeConfig` fields
    (the reference leg pins ``compiled_forward``/``dtype``), applied by
    activating a context derived from the ambient one.  Every repeat starts
    from cleared in-memory caches and nothing is loaded from or saved to the
    persisted snapshot, so the wall-clock numbers measure real
    training/tuning work rather than cache state.
    """
    times: list[float] = []
    cache_activity: list[dict] = []
    runtime = current().derive(**overrides) if overrides else current()
    with runtime.activate(adopt=False):
        for _ in range(repeats):
            runtime.caches.clear()
            start = time.perf_counter()
            outcome = run_experiment(experiment, config, store=None)
            times.append(round(time.perf_counter() - start, 3))
            cache_activity.append(outcome.record.cache_stats)
        runtime.caches.clear()
    return {
        "times_seconds": times,
        "mean_seconds": round(sum(times) / len(times), 3),
        "min_seconds": min(times),
        "cache_activity": cache_activity,
    }


def _append_bench_record(path: Path, entry: dict, name: str | None = None) -> None:
    """Append one entry to the machine-readable perf trajectory file."""
    history: list = []
    if path.exists():
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(payload, dict) and isinstance(payload.get("entries"), list):
                history = payload["entries"]
        except (OSError, ValueError) as exc:
            log.warning("starting a fresh bench record (unreadable %s: %s)", path, exc)
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic replace: a reader (or a crash) never sees a half-written
    # trajectory file.
    tmp_path = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp_path.write_text(
        json.dumps(
            {"experiment": name or entry["experiment"], "entries": history}, indent=2
        )
        + "\n",
        encoding="utf-8",
    )
    os.replace(tmp_path, path)


def _bench_one(experiment: str, config, repeats: int, no_compare: bool, dtype: str) -> dict:
    """Time one experiment's compiled (and optionally reference) legs."""
    print(f"benchmarking {experiment} (repeats={repeats}, compiled dtype={dtype}) ...")
    compiled = _bench_leg(experiment, config, repeats, {})
    print(
        f"  compiled:  mean {compiled['mean_seconds']:.2f}s  "
        f"min {compiled['min_seconds']:.2f}s  over {compiled['times_seconds']}"
    )

    reference = None
    speedup = None
    if not no_compare:
        reference = _bench_leg(
            experiment,
            config,
            repeats,
            {"compiled_forward": False, "dtype": "float64"},
        )
        speedup = round(
            reference["mean_seconds"] / max(compiled["mean_seconds"], 1e-9), 3
        )
        print(
            f"  reference: mean {reference['mean_seconds']:.2f}s  "
            f"min {reference['min_seconds']:.2f}s  (eager interpreter, float64)"
        )
        print(f"  speedup:   {speedup:.2f}x (compiled {dtype} vs eager float64)")
    print("  cache activity (first compiled run):", _format_cache_delta(compiled["cache_activity"][0]))

    return {
        "experiment": experiment,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": config.to_dict(),
        "repeats": repeats,
        "compiled_dtype": dtype,
        "compiled": compiled,
        "reference": reference,
        "speedup_vs_eager_float64": speedup,
    }


def _bench_serve(args: argparse.Namespace, store: ArtifactStore, config: ExperimentConfig) -> int:
    """Benchmark the coalescing search service against serial parity runs.

    Starts an in-process server on an ephemeral port, drives ``--clients``
    concurrent ``search`` requests (distinct seeds) through real sockets,
    then re-runs every request serially through the same runner and compares
    fingerprints.  The serve leg goes first, from cold caches, so its waves
    measure real coalescing; the serial legs then run warm — which *is* the
    parity claim: a reward's value cannot depend on where or when it was
    computed, only on its cache key.
    """
    from repro.serve import SearchServer, ServeClient, start_server_thread

    clients = max(args.clients, 1)
    base_seed = config.seed if config.seed is not None else current().config.seed
    experiment = "search"

    def _request_config(index: int) -> ExperimentConfig:
        return ExperimentConfig(
            smoke=config.smoke,
            train_steps=config.train_steps,
            seed=base_seed + index,
            options=dict(config.options),
        )

    runtime = current()
    runtime.caches.clear()
    server = SearchServer(runtime)
    server_thread, address = start_server_thread(server)
    print(f"bench serve: {clients} client(s) against {address} running `{experiment}`")

    results: list[dict | None] = [None] * clients
    failures: list[tuple[int, Exception]] = []

    def _drive(index: int) -> None:
        try:
            with ServeClient(port=server.port) as client:
                results[index] = client.run(
                    experiment, _request_config(index), request_id=f"client-{index}"
                )
        except Exception as exc:
            failures.append((index, exc))
            log.warning("bench serve client %d failed", index, exc_info=True)

    start = time.perf_counter()
    workers = [
        threading.Thread(target=_drive, args=(index,), name=f"bench-client-{index}")
        for index in range(clients)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    serve_seconds = round(time.perf_counter() - start, 3)
    coalescer_stats = server.coalescer.stats()

    server.request_shutdown()
    server_thread.join(timeout=30.0)
    if server_thread.is_alive():
        print("FAIL: the server did not shut down cleanly", file=sys.stderr)
        return 1
    if failures:
        for index, exc in failures:
            print(f"client {index} failed: {exc}", file=sys.stderr)
        return 1

    mismatches: list[int] = []
    serial_times: list[float] = []
    for index in range(clients):
        leg_start = time.perf_counter()
        record = run_experiment(experiment, _request_config(index), store=None).record
        serial_times.append(round(time.perf_counter() - leg_start, 3))
        served = results[index]
        serial_fingerprint = record.fingerprint()
        match = served is not None and served["fingerprint"] == serial_fingerprint
        if not match:
            mismatches.append(index)
        print(
            f"  client {index} (seed {base_seed + index}): "
            f"serve {served['fingerprint'][:16] if served else '<missing>'}  "
            f"serial {serial_fingerprint[:16]}  "
            f"{'ok' if match else 'MISMATCH'}"
        )

    print(
        f"  serve leg: {clients} request(s) in {serve_seconds:.2f}s "
        f"({clients / max(serve_seconds, 1e-9):.2f} req/s)"
    )
    print(
        f"  coalescer: {coalescer_stats['waves']} wave(s), "
        f"{coalescer_stats['pending']} evaluation(s) -> "
        f"{coalescer_stats['tasks']} task(s) "
        f"({coalescer_stats['coalesced']} coalesced across clients, "
        f"{coalescer_stats['cache_hits']} cache hit(s))"
    )

    entry = {
        "experiment": "serve",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": config.to_dict(),
        "clients": clients,
        "serve_wall_seconds": serve_seconds,
        "requests_per_second": round(clients / max(serve_seconds, 1e-9), 3),
        # Warm-cache parity reruns, not a fair serial baseline.
        "serial_parity_seconds": serial_times,
        "coalescer": coalescer_stats,
        "parity": not mismatches,
    }
    output = Path(args.output) if args.output else store.root / "BENCH_serve.json"
    _append_bench_record(output, entry, name="serve")
    print(f"bench record appended to {output}")

    if mismatches:
        print(
            f"FAIL: serve/serial fingerprints diverge for client(s) "
            f"{', '.join(map(str, mismatches))}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {clients}/{clients} client fingerprint(s) identical to serial runs")
    return 0


def _bench_library(
    args: argparse.Namespace, store: ArtifactStore, config: ExperimentConfig
) -> int:
    """Benchmark library builds and the warm-start contract end to end.

    Three legs, all asserted rather than merely timed:

    1. **Build parity** — the gpt2 space is built serially and at two shards;
       the artifacts must be bit-identical (same content hash).
    2. **Family sweep** — every slot family is built (reusing matching
       artifacts), recording entry counts and enumeration statistics.
    3. **Warm start** — a cold search (fresh caches, no library) is timed and
       its proxy-training count measured, its rewards are exported to the
       library sidecar, then a warm-started search (fresh caches again) must
       reach at least the same best reward with strictly fewer proxy
       trainings.

    Proxy trainings are counted as new reward-cache entries: each leg runs in
    an isolated context whose reward cache starts empty, so entries present
    afterwards were either trained in that leg or (warm leg only) seeded from
    the sidecar — the seeded count is subtracted.
    """
    from repro.library.builder import build_library
    from repro.library.warmstart import export_rewards, plan_warm_start

    runtime = _command_runtime(args)
    depth = 3 if config.smoke else None
    spaces = _library_spaces(depth)
    gpt2 = spaces["gpt2"]
    print(f"bench library: root {runtime.library_path()} (smoke={config.smoke})")

    # Leg 1: serial vs sharded build parity.
    start = time.perf_counter()
    serial = build_library(
        gpt2.spec, gpt2.options, name=gpt2.name, runtime=runtime, shards=1, force=True
    )
    serial_seconds = round(time.perf_counter() - start, 3)
    start = time.perf_counter()
    sharded = build_library(
        gpt2.spec, gpt2.options, name=gpt2.name, runtime=runtime, shards=2, force=True
    )
    sharded_seconds = round(time.perf_counter() - start, 3)
    build_parity = serial.content_hash == sharded.content_hash
    print(
        f"  build gpt2: serial {serial_seconds:.2f}s, 2 shards {sharded_seconds:.2f}s, "
        f"{serial.entries} entries, hash {serial.content_hash[:16]} "
        f"{'== sharded' if build_parity else '!= sharded ' + sharded.content_hash[:16]}"
    )

    # Leg 2: sweep every slot family (reuses the artifact when it matches).
    sweep: list[dict] = []
    for name in sorted(spaces):
        space = spaces[name]
        start = time.perf_counter()
        result = build_library(
            space.spec, space.options, name=space.name, runtime=runtime
        )
        # Meta stats survive artifact reuse (a reused build carries no live
        # SynthesisStats of its own).
        stats = result.library.meta.get("stats") or {}
        sweep.append(
            {
                "family": name,
                "entries": result.entries,
                "complete": result.complete,
                "levels": result.levels,
                "reused": result.reused,
                "seconds": round(time.perf_counter() - start, 3),
                "dead_ends_by_distance": stats.get("dead_ends_by_distance", 0),
                "canonicalization_rejections": sum(
                    (stats.get("canonicalization_rejections") or {}).values()
                ),
            }
        )
        print(
            f"  sweep {name:13s} {result.entries:5d} entries "
            f"({result.complete} complete){'  [reused]' if result.reused else ''}"
        )

    # Leg 3: cold search, export rewards, warm-started search.
    cold = runtime.isolated(warm_start=False)
    with cold.activate(adopt=False):
        start = time.perf_counter()
        cold_outcome = run_experiment("search", config, store=None)
        cold_seconds = round(time.perf_counter() - start, 3)
    cold_entries = cold.caches.reward.export_entries()
    cold_trainings = len(cold_entries)
    cold_best = max(cold_entries.values(), default=0.0)
    if not cold_entries:
        print("FAIL: the cold search trained nothing to warm-start from", file=sys.stderr)
        return 1
    cache_context = next(iter(cold_entries))[0]
    exported = export_rewards(
        {signature: reward for (_, signature), reward in cold_entries.items()},
        name=gpt2.name,
        cache_context=cache_context,
        runtime=runtime,
    )
    print(
        f"  cold search: {cold_trainings} proxy training(s) in {cold_seconds:.2f}s, "
        f"best reward {cold_best:.6f}, {exported} reward(s) exported to the sidecar"
    )

    warm = runtime.isolated(warm_start=True)
    with warm.activate(adopt=False):
        # Planning ahead of the run seeds the reward cache now and tells us
        # how many entries were seeds; the run's own plan then seeds nothing,
        # so trainings = entries afterwards - seeded.
        plan = plan_warm_start(
            gpt2.spec, cache_context=cache_context, name=gpt2.name, runtime=warm
        )
        seeded = plan.seeded_rewards if plan is not None else 0
        start = time.perf_counter()
        warm_outcome = run_experiment("search", config, store=None)
        warm_seconds = round(time.perf_counter() - start, 3)
    warm_entries = warm.caches.reward.export_entries()
    warm_trainings = len(warm_entries) - seeded
    warm_best = max(warm_entries.values(), default=0.0)
    fingerprint_parity = (
        cold_outcome.record.fingerprint() == warm_outcome.record.fingerprint()
    )
    print(
        f"  warm search: {warm_trainings} proxy training(s) "
        f"({seeded} seeded) in {warm_seconds:.2f}s, best reward {warm_best:.6f}"
    )

    entry = {
        "experiment": "library",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "config": config.to_dict(),
        "build": {
            "family": gpt2.name,
            "entries": serial.entries,
            "complete": serial.complete,
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "content_hash": serial.content_hash,
            "parity": build_parity,
        },
        "sweep": sweep,
        "warm_start": {
            "cold_trainings": cold_trainings,
            "cold_seconds": cold_seconds,
            "cold_best_reward": cold_best,
            "seeded_rewards": seeded,
            "warm_trainings": warm_trainings,
            "warm_seconds": warm_seconds,
            "warm_best_reward": warm_best,
            "fingerprint_parity": fingerprint_parity,
        },
    }
    output = Path(args.output) if args.output else store.root / "BENCH_library.json"
    _append_bench_record(output, entry, name="library")
    print(f"bench record appended to {output}")

    failures: list[str] = []
    if not build_parity:
        failures.append("serial and sharded gpt2 builds diverge")
    if warm_trainings >= cold_trainings:
        failures.append(
            f"warm start did not save proxy trainings "
            f"({warm_trainings} warm vs {cold_trainings} cold)"
        )
    if warm_best < cold_best - 1e-12:
        failures.append(
            f"warm best reward {warm_best:.6f} below cold {cold_best:.6f}"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: sharded build bit-identical; warm start reached reward "
        f"{warm_best:.6f} with {warm_trainings}/{cold_trainings} trainings"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    store = _store(args)
    config = config_from_args(args)
    repeats = max(args.repeats, 1)

    if args.experiment == "serve":
        return _bench_serve(args, store, config)
    if args.experiment == "library":
        return _bench_library(args, store, config)

    if args.all_experiments:
        if args.experiment is not None:
            print("bench: give an experiment or --all, not both", file=sys.stderr)
            return 2
        experiments = experiment_names()
    elif args.experiment is not None:
        experiments = [args.experiment]
    else:
        print("bench: an experiment name (or --all) is required", file=sys.stderr)
        return 2

    dtype = current().config.with_overrides(**config.runtime_overrides()).dtype_name()

    trajectory = "all" if args.all_experiments else args.experiment
    output = Path(args.output) if args.output else store.root / f"BENCH_{trajectory}.json"

    over_threshold: list[str] = []
    for experiment in experiments:
        entry = _bench_one(experiment, config, repeats, args.no_compare, dtype)
        _append_bench_record(output, entry, name=trajectory)
        if args.max_seconds is not None and entry["compiled"]["mean_seconds"] > args.max_seconds:
            over_threshold.append(experiment)
    print(f"bench record appended to {output}")

    if over_threshold:
        print(
            f"FAIL: compiled mean of {', '.join(over_threshold)} exceeds the "
            f"--max-seconds threshold of {args.max_seconds:.2f}s",
            file=sys.stderr,
        )
        return 1
    return 0


# ---------------------------------------------------------------------------
# repro report
# ---------------------------------------------------------------------------


def _record_shards(record: ResultRecord) -> str:
    """The shard count a run executed with, from its captured environment.

    The runner deliberately nulls ``config["shards"]`` before fingerprinting
    (shards never change results, so they must not change record identity);
    the resolved runtime config in the record's environment is the one place
    the count survives.  Rendering it next to the fingerprint is what makes
    serial/sharded parity auditable from `repro report`: a sharded run of the
    same experiment must show the same metrics as its serial sibling.
    """
    runtime = record.environment.get("runtime")
    if isinstance(runtime, dict) and runtime.get("shards") is not None:
        return str(runtime["shards"])
    # Records written before the runtime API captured raw REPRO_* values.
    shards = record.environment.get("REPRO_SEARCH_SHARDS")
    return str(shards) if shards is not None else "1"


def render_markdown_report(records: list[ResultRecord]) -> str:
    """Per-experiment markdown tables over the stored runs."""
    if not records:
        return "No stored runs. Start with: `repro run figure5 --smoke`"
    lines: list[str] = ["# Experiment runs", ""]
    experiments = sorted({record.experiment for record in records})
    for experiment in experiments:
        group = [record for record in records if record.experiment == experiment]
        metric_names = sorted({name for record in group for name in record.metrics})
        header = [
            "run", "status", "started (UTC)", "duration (s)", "shards", "fingerprint",
            *metric_names,
        ]
        lines.append(f"## {experiment}")
        lines.append("")
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for record in group:
            row = [
                record.run_id,
                record.status,
                record.started_at,
                f"{record.duration_seconds:.1f}",
                _record_shards(record),
                record.fingerprint(),
                *[_format_number(record.metrics.get(name)) for name in metric_names],
            ]
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines)


def render_csv_report(records: list[ResultRecord]) -> str:
    """Long-format CSV: one row per (run, metric)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["run_id", "experiment", "status", "started_at", "duration_seconds", "shards",
         "fingerprint", "metric", "value"]
    )
    for record in records:
        base = [
            record.run_id,
            record.experiment,
            record.status,
            record.started_at,
            record.duration_seconds,
            _record_shards(record),
            record.fingerprint(),
        ]
        if not record.metrics:
            writer.writerow(base + ["", ""])
        for name in sorted(record.metrics):
            value = record.metrics[name]
            writer.writerow(base + [name, "" if value is None else value])
    return buffer.getvalue()


def cmd_report(args: argparse.Namespace) -> int:
    store = _store(args)
    records = store.list_runs(args.experiment)
    if args.format == "csv":
        text = render_csv_report(records)
    else:
        text = render_markdown_report(records)
    if not records:
        # Decide emptiness *before* touching --output: an exit-1 invocation
        # must never leave a freshly written report (and a "report written"
        # line) behind as if it had succeeded.
        print(text, end="" if text.endswith("\n") else "\n")
        if args.output:
            print(f"report not written to {args.output} (no stored runs)", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(text if text.endswith("\n") else text + "\n", encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    return 0


# ---------------------------------------------------------------------------
# repro cache
# ---------------------------------------------------------------------------


def cmd_cache(args: argparse.Namespace) -> int:
    runtime = _command_runtime(args)
    store = runtime.store
    path = store.cache_path
    shared = runtime.shared_store
    if args.clear:
        runtime.caches.clear()
        # The store's clear is race-free (no exists-then-unlink window) and
        # also removes a leftover lock, so a crashed holder never wedges the
        # next run.
        if shared.clear():
            print(f"deleted {path}")
        print("in-memory caches cleared")
        return 0

    if args.json:
        status = runtime.load_caches(str(path))
        payload = {
            "path": str(path),
            "load": status.to_dict(),
            "sizes": runtime.caches.sizes(),
            "store_entries": shared.entry_counts(),
            "lock": shared.lock_info(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if path.exists():
        status = runtime.load_caches(str(path))
        try:
            size_kib = path.stat().st_size / 1024
            print(f"persisted snapshot: {path} ({size_kib:.1f} KiB)")
        except OSError:  # deleted under us by a concurrent --clear
            print(f"persisted snapshot: {path}")
        print(f"load status: {status.summary()}")
        for name, count in sorted(runtime.caches.sizes().items()):
            print(f"  {name:10s} {count} entries ({status.entries.get(name, 0)} loaded just now)")
    else:
        print(f"persisted snapshot: {path} (absent — run an experiment first)")
    lock_info = shared.lock_info()
    if lock_info is not None:
        print(
            f"store lock: held by pid {lock_info.get('pid')} on {lock_info.get('host')}"
        )
    else:
        print("store lock: free")

    stats = runtime.caches.stats()
    print("this process:", _format_cache_delta(
        {name: {"hits": s.hits, "misses": s.misses} for name, s in stats.items()}
    ))
    save_status = runtime.caches.last_save
    if save_status is not None:
        print(f"last save: {save_status.summary()}")

    recent = store.list_runs()[-5:]
    if recent:
        print("recent runs:")
        for record in recent:
            print(
                f"  {record.run_id:40s} {record.status:11s} "
                f"{_format_cache_delta(record.cache_stats)}"
            )
    return 0


# ---------------------------------------------------------------------------
# repro list
# ---------------------------------------------------------------------------


def cmd_list(args: argparse.Namespace) -> int:
    store = _store(args)
    records = store.list_runs()
    if args.json:
        payload = {
            "experiments": experiment_descriptions(),
            "results_dir": str(store.root),
            "runs": [
                {
                    "run_id": record.run_id,
                    "experiment": record.experiment,
                    "status": record.status,
                    "started_at": record.started_at,
                    "duration_seconds": record.duration_seconds,
                    "fingerprint": record.fingerprint(),
                }
                for record in records
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("experiments:")
    for name, description in experiment_descriptions().items():
        print(f"  {name:26s} {description}")
    print()
    if records:
        print(f"stored runs in {store.root}:")
        for record in records:
            print(
                f"  {record.run_id:40s} {record.status:11s} "
                f"{record.duration_seconds:8.1f}s  {record.fingerprint()}"
            )
    else:
        print(f"no stored runs in {store.root}")
    return 0


# ---------------------------------------------------------------------------
# repro library
# ---------------------------------------------------------------------------


def _library_runtime(args: argparse.Namespace) -> RuntimeContext:
    """The context a library command runs under: ``--library-dir`` re-roots it."""
    runtime = _command_runtime(args)
    library_dir = getattr(args, "library_dir", None)
    if library_dir:
        runtime = runtime.derive(library_dir=str(library_dir))
    return runtime


def _library_spaces(max_depth: int | None):
    from repro.library.specs import design_spaces

    if max_depth is None:
        return design_spaces()
    return design_spaces(max_depth=max_depth, gpt2_depth=max_depth)


def _library_names_on_disk(root: str) -> list[str]:
    """Artifact names present under ``root`` (current format version only)."""
    from repro.library.store import library_filename

    suffix = library_filename("")
    try:
        filenames = sorted(os.listdir(root))
    except (FileNotFoundError, NotADirectoryError):
        return []
    return [
        filename[: -len(suffix)]
        for filename in filenames
        if filename.endswith(suffix) and not filename.startswith("rewards-")
    ]


def _library_build(args: argparse.Namespace) -> int:
    from repro.library.builder import build_library

    runtime = _library_runtime(args)
    spaces = _library_spaces(args.max_depth)
    if args.family == "all":
        names = sorted(spaces)
    elif args.family in spaces:
        names = [args.family]
    else:
        print(
            f"library build: unknown family {args.family!r} "
            f"(available: {', '.join(sorted(spaces))}, all)",
            file=sys.stderr,
        )
        return 2

    summaries: list[dict] = []
    if not args.json:
        print(f"library root: {runtime.library_path()}")
    for name in names:
        space = spaces[name]
        start = time.perf_counter()
        result = build_library(
            space.spec,
            space.options,
            name=space.name,
            runtime=runtime,
            shards=args.shards,
            neighbours=args.neighbours,
            checkpoint=not args.no_checkpoint,
            force=args.force,
        )
        elapsed = round(time.perf_counter() - start, 3)
        summaries.append(
            {
                "family": name,
                "path": result.path,
                "entries": result.entries,
                "complete": result.complete,
                "levels": result.levels,
                "content_hash": result.content_hash,
                "reused": result.reused,
                "resumed_from_level": result.resumed_from_level,
                "seconds": elapsed,
            }
        )
        if not args.json:
            if result.reused:
                status = "reused"
            elif result.resumed_from_level:
                status = f"resumed@{result.resumed_from_level}"
            else:
                status = "built"
            print(
                f"  {name:13s} {status:9s} {result.entries:5d} entries "
                f"({result.complete} complete, {result.levels} level(s))  "
                f"hash {result.content_hash[:16]}  {elapsed:7.2f}s"
            )
    if args.json:
        print(
            json.dumps(
                {"library_dir": runtime.library_path(), "builds": summaries}, indent=2
            )
        )
    return 0


def _format_library_stats(item: dict) -> list[str]:
    """Human lines for one library's enumeration statistics."""
    stats = item.get("stats") or {}
    lines = [
        f"{item['name']}: {item['entries']} entries "
        f"({item['complete']} complete, max depth {item['max_depth']}, "
        f"{item['levels']} level(s))  hash {item['content_hash'][:16]}",
        f"  path: {item['path']}",
    ]
    if stats:
        lines.append(
            f"  enumeration: {stats.get('nodes_visited', 0)} node(s) visited, "
            f"{stats.get('children_generated', 0)} children generated, "
            f"{stats.get('completed', 0)} completed, "
            f"{stats.get('rejected_by_budget', 0)} over budget"
        )
        lines.append(
            f"  shape distance: {stats.get('pruned_by_distance', 0)} pruned, "
            f"{stats.get('dead_ends_by_distance', 0)} dead end(s)"
        )
        rejections = stats.get("canonicalization_rejections") or {}
        if rejections:
            per_rule = ", ".join(
                f"{rule} {count}" for rule, count in sorted(rejections.items())
            )
            total = sum(rejections.values())
            lines.append(f"  canonicalization rejections: {total} ({per_rule})")
        else:
            lines.append("  canonicalization rejections: 0")
    return lines


def _library_stats(args: argparse.Namespace) -> int:
    from repro.library.store import GraphLibrary, library_filename

    runtime = _library_runtime(args)
    root = runtime.library_path()
    names = [args.family] if args.family else _library_names_on_disk(root)
    if not names:
        print(
            f"no library artifacts in {root} (run `repro library build` first)",
            file=sys.stderr,
        )
        return 1

    payload: list[dict] = []
    for name in names:
        path = os.path.join(root, library_filename(name))
        library = GraphLibrary.load(path)
        if library is None:
            print(
                f"library stats: no readable artifact for {name!r} at {path}",
                file=sys.stderr,
            )
            return 1
        meta = library.meta
        payload.append(
            {
                "name": meta.get("name", name),
                "path": path,
                "entries": len(library),
                "complete": meta.get("complete", len(library.complete_entries())),
                "max_depth": meta.get("max_depth"),
                "levels": meta.get("levels"),
                "content_hash": library.content_hash(),
                "spec_key": meta.get("spec_key"),
                "stats": meta.get("stats", {}),
            }
        )
    if args.json:
        print(json.dumps({"library_dir": root, "libraries": payload}, indent=2))
        return 0
    print(f"library root: {root}")
    for item in payload:
        for line in _format_library_stats(item):
            print(line)
    return 0


def _library_query(args: argparse.Namespace) -> int:
    from repro.library.store import GraphLibrary, library_filename

    runtime = _library_runtime(args)
    path = os.path.join(runtime.library_path(), library_filename(args.family))
    library = GraphLibrary.load(path)
    if library is None:
        print(
            f"library query: no artifact for {args.family!r} at {path} "
            f"(run `repro library build {args.family}` first)",
            file=sys.stderr,
        )
        return 1

    if args.signature:
        entry = library.get(args.signature)
        if entry is None:
            print(
                f"library query: signature not in the {args.family} library: "
                f"{args.signature}",
                file=sys.stderr,
            )
            return 1
        payload = json.loads(entry.to_payload())
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        print(f"signature: {entry.signature}")
        print(f"  depth {entry.depth}  complete {entry.complete}")
        print(f"  macs {entry.macs}  params {entry.params}")
        print(f"  produced by {entry.primitive or '<root>'}")
        print(f"  parent: {entry.parent_signature or '<none>'}")
        if entry.neighbours:
            print("  nearest neighbours:")
            for neighbour in entry.neighbours:
                print(f"    {neighbour}")
        return 0

    # Cheapest complete candidates first: the library's ranking view.
    complete = sorted(
        library.complete_entries(), key=lambda entry: (entry.macs, entry.signature)
    )
    top = complete[: max(args.top, 1)]
    if args.json:
        print(
            json.dumps(
                {
                    "family": args.family,
                    "complete": len(complete),
                    "entries": [json.loads(entry.to_payload()) for entry in top],
                },
                indent=2,
            )
        )
        return 0
    print(
        f"{args.family}: {len(complete)} complete candidate(s), "
        f"cheapest {len(top)} by MACs:"
    )
    print(f"  {'signature':44s} {'depth':>5s} {'macs':>10s} {'params':>8s}")
    for entry in top:
        label = (
            entry.signature
            if len(entry.signature) <= 44
            else entry.signature[:41] + "..."
        )
        print(f"  {label:44s} {entry.depth:5d} {entry.macs:10d} {entry.params:8d}")
    return 0


def cmd_library(args: argparse.Namespace) -> int:
    handlers = {
        "build": _library_build,
        "stats": _library_stats,
        "query": _library_query,
    }
    return handlers[args.library_command](args)


# ---------------------------------------------------------------------------
# repro config
# ---------------------------------------------------------------------------


def render_config(config: RuntimeConfig) -> str:
    """The resolved runtime configuration as an aligned value/provenance table."""
    values = config.describe()
    provenance = config.provenance_map()
    rows = [("field", "value", "provenance", "env fallback")]
    for name in values:
        rows.append((name, str(values[name]), provenance[name], ENV_KNOBS[name]))
    widths = [max(len(row[i]) for row in rows) for i in range(4)]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def cmd_config(args: argparse.Namespace) -> int:
    runtime = _command_runtime(args)
    config = runtime.config
    if args.diff:
        return _config_diff(args.diff, runtime, as_json=args.json)
    if args.json:
        payload = {"runtime": config.describe(), "provenance": config.provenance_map()}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_config(config))
    return 0


def _config_diff(run_id: str, runtime: RuntimeContext, as_json: bool) -> int:
    """Compare the live resolved config against a stored record's snapshot.

    The record's ``environment["runtime"]`` is the :meth:`RuntimeConfig.describe`
    mapping captured when the run executed, so the comparison answers the
    reproduction question directly: "would rerunning now resolve the same
    knobs that produced this record?"  Exit 0 when identical, 1 when any
    field differs, 2 when the record is missing or predates config capture.
    """
    store = runtime.store
    try:
        record = store.load(run_id)
    except (OSError, ValueError) as exc:
        print(f"config --diff: cannot load run {run_id!r} from {store.root}: {exc}",
              file=sys.stderr)
        return 2
    stored = record.environment.get("runtime")
    if not isinstance(stored, dict):
        print(
            f"config --diff: run {run_id!r} predates runtime-config capture "
            "(no environment['runtime'] in its record)",
            file=sys.stderr,
        )
        return 2
    live = runtime.config.describe()
    fields = sorted(set(live) | set(stored))
    differing = [
        name for name in fields
        if str(live.get(name, "<absent>")) != str(stored.get(name, "<absent>"))
    ]
    if as_json:
        payload = {
            "run_id": run_id,
            "identical": not differing,
            "differing": {
                name: {"live": live.get(name), "stored": stored.get(name)}
                for name in differing
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if differing else 0
    if not differing:
        print(f"live config matches run {run_id} ({len(fields)} fields)")
        return 0
    rows = [("field", "live", f"run {run_id}")]
    for name in differing:
        rows.append((name, str(live.get(name, "<absent>")), str(stored.get(name, "<absent>"))))
    widths = [max(len(row[i]) for row in rows) for i in range(3)]
    lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
             for row in rows]
    lines.insert(1, "  ".join("-" * width for width in widths))
    print("\n".join(lines))
    print(f"\n{len(differing)} field(s) differ from run {run_id}")
    return 1


# ---------------------------------------------------------------------------
# repro chaos
# ---------------------------------------------------------------------------


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run one experiment twice — faulted+sharded, then clean+serial — and
    assert the two records carry the same fingerprint.

    This is the executable form of the supervised executor's contract: worker
    loss, hangs and injected store faults may cost wall-clock, but they must
    never change results.
    """
    try:
        plan = FaultPlan.parse(args.plan)
    except FaultPlanError as exc:
        print(f"chaos: invalid fault plan: {exc}", file=sys.stderr)
        return 2

    smoke: bool | None = None
    if args.smoke:
        smoke = True
    elif args.full:
        smoke = False
    config = ExperimentConfig(smoke=smoke, train_steps=args.train_steps, seed=args.seed)

    overrides: dict = {"fault_plan": plan.spec, "shards": max(args.shards, 1)}
    if args.timeout is not None:
        overrides["shard_timeout"] = args.timeout
    if args.retries is not None:
        overrides["shard_retries"] = args.retries

    print(
        f"chaos leg: {args.experiment} with {overrides['shards']} shard(s) "
        f"under plan {plan.spec!r}"
    )
    chaos_runtime = current().derive(**overrides)
    with chaos_runtime.activate(adopt=False):
        chaos_record = run_experiment(args.experiment, config, store=None).record
    failures = chaos_record.environment.get("shard_failures") or []
    _print_shard_failures(chaos_record)
    if not failures:
        print("chaos leg completed fault-free (the plan never fired)")

    # The clean leg clears fault_plan explicitly so an ambient
    # REPRO_FAULT_PLAN cannot fault both legs and vacuously "agree".
    print(f"clean leg: {args.experiment} serial, no faults")
    clean_runtime = current().derive(shards=1, fault_plan="")
    with clean_runtime.activate(adopt=False):
        clean_record = run_experiment(args.experiment, config, store=None).record

    chaos_fingerprint = chaos_record.fingerprint()
    clean_fingerprint = clean_record.fingerprint()
    print(f"chaos fingerprint {chaos_fingerprint}")
    print(f"clean fingerprint {clean_fingerprint}")
    if chaos_fingerprint != clean_fingerprint:
        print(
            "FAIL: fingerprints diverge — fault recovery changed results",
            file=sys.stderr,
        )
        return 1
    if args.expect_failures and not failures:
        print(
            "FAIL: --expect-failures was given but no shard failure occurred "
            "(plan matched nothing — check shard/attempt matchers)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: fingerprint parity under fault plan "
        f"({len(failures)} shard failure(s) recovered)"
    )
    return 0


# ---------------------------------------------------------------------------
# repro lint
# ---------------------------------------------------------------------------


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the static invariant analyzer; exit non-zero on unbaselined findings.

    The contract is symmetric: every finding must either be fixed or be a
    reviewed baseline entry, and every baseline entry must still match a
    finding — stale entries fail the lint too, so a fixed exception cannot
    silently keep masking a future regression.
    """
    import repro
    from repro.analysis import (
        LintEngine,
        LintSyntaxError,
        apply_baseline,
        collect_modules,
        load_baseline,
        make_rules,
        save_baseline,
    )

    package_dir = Path(repro.__file__).resolve().parent
    # Relative paths are computed against src/ so findings read "repro/...".
    root = package_dir.parent
    paths = [Path(p) for p in args.paths] if args.paths else [package_dir]
    baseline_path = (
        Path(args.baseline)
        if args.baseline
        else root.parent / "scripts" / "lint_baseline.txt"
    )

    try:
        modules = collect_modules(paths, root)
    except LintSyntaxError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    engine = LintEngine(make_rules(args.rules))
    findings = engine.run(modules)

    if args.write_baseline:
        save_baseline(baseline_path, findings)
        print(f"baseline with {len(findings)} finding(s) written to {baseline_path}")
        return 0

    baseline = set() if args.no_baseline else load_baseline(baseline_path)
    # With --rule, entries of rules that did not run are neither suppressing
    # nor stale — only judge the baseline against the rules that executed.
    active = {rule.rule_id for rule in engine.rules}
    baseline = {entry for entry in baseline if entry.split(" ", 1)[0] in active}
    new, suppressed, stale = apply_baseline(findings, baseline)

    if args.json:
        payload = {
            "files": len(modules),
            "rules": sorted(active),
            "findings": [finding.to_dict() for finding in new],
            "suppressed": [finding.to_dict() for finding in suppressed],
            "stale_baseline": stale,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if new or stale else 0

    for finding in new:
        print(finding.render())
    if stale:
        print(
            "stale baseline entries (the finding was fixed — delete these lines "
            f"from {baseline_path}):",
            file=sys.stderr,
        )
        for entry in stale:
            print(f"  {entry}", file=sys.stderr)
    verdict = "FAIL" if new or stale else "OK"
    print(
        f"{verdict}: {len(new)} finding(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale baseline entries over {len(modules)} file(s)"
    )
    return 1 if new or stale else 0


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(level=logging.INFO if args.verbose else logging.WARNING)
    handlers = {
        "run": cmd_run,
        "serve": cmd_serve,
        "bench": cmd_bench,
        "report": cmd_report,
        "cache": cmd_cache,
        "list": cmd_list,
        "library": cmd_library,
        "config": cmd_config,
        "chaos": cmd_chaos,
        "lint": cmd_lint,
    }
    # The CLI entry is a process edge: REPRO_* variables are read exactly
    # once, into one explicit context that scopes the whole command.  The
    # edge context shares the process-default CacheSet so sharded workers
    # inherit the warm caches through fork (config-only shipping) instead of
    # pickling the whole set into every shard payload.
    edge = RuntimeContext(RuntimeConfig.from_env(), caches=default_context().caches)
    with edge.activate(adopt=False):
        return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro.cli`
    sys.exit(main())
