"""``python -m repro.cli`` — the uninstalled spelling of the ``repro`` script."""

import sys

from repro.cli.main import main

sys.exit(main())
