"""The ``repro`` command-line interface.

Entry points:

* ``repro run <experiment>`` — regenerate one paper figure/table through the
  shared runner, persisting a :class:`repro.results.ResultRecord` and the
  evaluation-cache snapshot into the artifact store.
* ``repro report`` — render stored runs into a markdown or CSV summary.
* ``repro cache`` — show in-process and persisted cache statistics, including
  the last snapshot load/save status.
* ``repro list`` — list runnable experiments and stored runs.
* ``repro config`` — print the resolved :class:`repro.runtime.RuntimeConfig`
  as a table (value + provenance: default/env/flag), or ``--json``.

``main()`` is a process edge of the runtime API: it parses the ``REPRO_*``
environment exactly once (``RuntimeConfig.from_env``) into an explicit
:class:`repro.runtime.RuntimeContext` that scopes the whole command.

Installed as a console script by ``setup.py``; also runnable without
installation as ``python -m repro.cli`` from a source checkout (with ``src``
on ``PYTHONPATH``).
"""

from repro.cli.main import build_parser, config_from_args, main

__all__ = ["build_parser", "config_from_args", "main"]
