"""The shape-distance metric that guides synthesis (Section 7.1).

``shape_distance(current, desired)`` estimates the minimum number of
additional primitives needed to turn the current frontier shape into the
desired input shape.  Synthesis backtracks whenever the remaining primitive
budget is smaller than the shape distance (Algorithm 1, line 20), which the
paper shows is essential: without it, hundreds of millions of random trials
produce no valid operator.

The metric follows the paper's construction:

1. dimensions of the two shapes are partitioned into *reshape groups* — future
   primitives only match dimensions within a group, never across groups;
2. a group whose two sides have the same total domain needs only reshape
   primitives, a lower bound of ``#lhs + #rhs - 2`` steps;
3. groups with differing domains additionally need at least one 1-to-many
   primitive, contributing one extra step (accounted once globally, as the
   paper does);
4. repeated dimensions / permutations are free (the final matching may
   transpose).
"""

from __future__ import annotations

from typing import Iterable

from repro.ir.shape import ShapeSpec
from repro.ir.size import Size


def _union_find_groups(lhs: ShapeSpec, rhs: ShapeSpec) -> list[tuple[list[Size], list[Size]]]:
    """Partition dims of both shapes into reshape groups via shared variables."""
    entries: list[tuple[str, int, Size]] = []
    for index, size in enumerate(lhs):
        entries.append(("lhs", index, size))
    for index, size in enumerate(rhs):
        entries.append(("rhs", index, size))

    parent = list(range(len(entries)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    # Union entries that mention a common variable (primary or coefficient).
    by_variable: dict[str, list[int]] = {}
    for index, (_, _, size) in enumerate(entries):
        for var in size.variables():
            by_variable.setdefault(var.name, []).append(index)
    for indices in by_variable.values():
        for other in indices[1:]:
            union(indices[0], other)

    # Constant dims with equal value pair up greedily across the two sides.
    constants_lhs = [i for i, (side, _, size) in enumerate(entries) if side == "lhs" and size.is_constant]
    constants_rhs = [i for i, (side, _, size) in enumerate(entries) if side == "rhs" and size.is_constant]
    used_rhs: set[int] = set()
    for i in constants_lhs:
        for j in constants_rhs:
            if j in used_rhs:
                continue
            if entries[i][2] == entries[j][2]:
                union(i, j)
                used_rhs.add(j)
                break

    groups: dict[int, tuple[list[Size], list[Size]]] = {}
    for index, (side, _, size) in enumerate(entries):
        root = find(index)
        group = groups.setdefault(root, ([], []))
        if side == "lhs":
            group[0].append(size)
        else:
            group[1].append(size)
    return list(groups.values())


def _domain(sizes: Iterable[Size]) -> Size:
    return Size.product(sizes)


def _group_bound(lhs: list[Size], rhs: list[Size]) -> int:
    """Lower bound on the primitives needed to match one reshape group."""
    if not lhs and not rhs:
        return 0
    if not lhs or not rhs:
        # One side is empty: every dim on the other side must be produced or
        # eliminated by at least one primitive each, but a single 1-to-many
        # primitive can handle one dim; use a conservative bound of the count
        # minus overlap with the global 1-to-many step accounted separately.
        return max(len(lhs) + len(rhs) - 1, 0)
    # Pair up dims that are already identical (transposition is free).
    remaining_lhs = list(lhs)
    remaining_rhs = list(rhs)
    for size in list(remaining_lhs):
        for other in remaining_rhs:
            if size == other:
                remaining_lhs.remove(size)
                remaining_rhs.remove(other)
                break
    if not remaining_lhs and not remaining_rhs:
        return 0
    return max(len(remaining_lhs) + len(remaining_rhs) - 2, 0)


def shape_distance(current: ShapeSpec, desired: ShapeSpec) -> int:
    """Estimated minimum number of primitives to reach ``desired`` from ``current``.

    Returns 0 when the shapes already match as multisets.
    """
    current = ShapeSpec.of(current)
    desired = ShapeSpec.of(desired)
    if current.same_multiset(desired):
        return 0

    groups = _union_find_groups(current, desired)
    total = sum(_group_bound(lhs, rhs) for lhs, rhs in groups)
    if current.total != desired.total:
        total += 1
    return max(total, 1)


def remaining_budget_allows(current: ShapeSpec, desired: ShapeSpec, remaining_steps: int) -> bool:
    """Whether a completion is still possible within ``remaining_steps`` primitives."""
    return shape_distance(current, desired) <= remaining_steps
