"""Monte Carlo Tree Search over the primitive-application space (Section 7.2).

The synthesis problem is formulated as a Markov decision process: states are
partial pGraphs, actions are canonical primitive applications, terminal states
are complete pGraphs within budget.  The reward of a terminal state is
supplied by an evaluator (typically: proxy training accuracy of the backbone
model with the candidate operator substituted in, see
:mod:`repro.search.evaluator`); invalid rollouts receive zero reward.

The implementation is a standard UCT tree search with random rollouts that are
*guided* by the shape-distance metric, mirroring the paper's combination of
stochastic tree search and guided synthesis.

The search loop is **batched**: :meth:`MCTS.propose_batch` runs the tree
policy for a wave of iterations (recording every pending terminal rollout
without evaluating it), :meth:`MCTS.pending_evaluations` lists the unique
signatures the wave needs rewards for, and :meth:`MCTS.apply_results` feeds
the rewards back in iteration order.  Within a wave only *visit counts* are
backpropagated eagerly (a deterministic virtual loss that diversifies the
selections); rewards land all at once in ``apply_results``.  Because the
wave's composition depends only on the seed and the wave width — never on
how, where, or whether rewards were cached — the sample sequence is
bit-identical across serial runs, sharded runs
(:func:`repro.search.parallel.sharded_reward_evaluator`), and cache
round-trips.  ``batch_size=1`` (the default) reproduces the classic
one-sample-at-a-time UCT loop exactly.

Rewards are memoized twice: per instance (``_local_rewards``, which also
deduplicates the recorded samples) and process-wide through
:func:`repro.search.cache.cached_reward` under ``MCTSConfig.cache_context`` —
searches sharing a context (same backbone, same evaluation settings) reuse
each other's proxy-training results, including results reloaded from a
persisted cache snapshot.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from repro.core.enumeration import Action, EnumerationOptions, enumerate_children
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import PGraph
from repro.core.shape_distance import shape_distance

#: Reward function over complete operators; should return a value in [0, 1].
RewardFn = Callable[[SynthesizedOperator], float]

#: Monotonic ids for instance-private cache contexts (``id()`` can be reused
#: after garbage collection, which would alias unrelated searches' rewards).
_INSTANCE_CONTEXTS = itertools.count()


@dataclass
class MCTSConfig:
    """Hyper-parameters of the tree search."""

    iterations: int = 200
    exploration: float = 1.0
    rollout_depth: int | None = None  # defaults to options.max_depth
    #: search RNG seed; ``None`` inherits the runtime context's root seed
    #: (``RuntimeConfig.seed``), so `REPRO_SEED`/`with_overrides(seed=...)`
    #: steer the tree search like every other seeded component.
    seed: int | None = None
    #: maximum number of children to expand per node (limits branching).
    max_children: int = 64
    #: frontier width: how many rollouts each wave proposes before their
    #: rewards are applied.  The wave composition (and hence the whole sample
    #: sequence) is a function of the seed and this width only — sharded
    #: evaluation parallelizes *within* a wave without changing it.  ``1``
    #: reproduces the classic one-sample-at-a-time UCT loop exactly.
    batch_size: int = 1
    #: context of the process-wide reward cache.  Searches sharing a context
    #: (same backbone, same evaluation settings) reuse each other's rewards;
    #: ``None`` keeps rewards private to this search instance.
    cache_context: Hashable | None = None
    #: signatures of root children to expand first, best first (seeded by the
    #: library warm start, :mod:`repro.library.warmstart`).  Pure reordering
    #: of the root's untried list: the RNG stream — shuffles and rollouts —
    #: is consumed identically whether or not this is set, so leaving it
    #: empty reproduces the cold search bit for bit.
    root_priority: tuple[str, ...] = ()


class _Node:
    """One node of the MCTS tree (a partial pGraph)."""

    __slots__ = ("graph", "parent", "children", "untried", "visits", "total_reward", "action")

    def __init__(self, graph: PGraph, parent: "_Node | None", action: Action | None):
        self.graph = graph
        self.parent = parent
        self.action = action
        self.children: list[_Node] = []
        self.untried: list[tuple[Action, PGraph]] | None = None
        self.visits = 0
        self.total_reward = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def uct_score(self, exploration: float) -> float:
        if self.visits == 0:
            return math.inf
        assert self.parent is not None
        return self.mean_reward + exploration * math.sqrt(
            math.log(self.parent.visits + 1) / self.visits
        )


@dataclass
class SampleRecord:
    """One evaluated terminal sample (the paper records all MCTS samples)."""

    operator: SynthesizedOperator
    reward: float
    iteration: int


@dataclass
class PendingRollout:
    """One proposed-but-unrewarded rollout of a frontier wave.

    ``operator``/``signature`` are ``None`` for invalid rollouts (depth limit
    hit, dead end, or budget exceeded), which receive zero reward at apply
    time — exactly like the classic loop, just deferred to the wave boundary.
    """

    iteration: int
    node: _Node
    operator: SynthesizedOperator | None = None
    signature: str | None = None

#: Batched reward evaluation hook for :meth:`MCTS.run`: unique pending
#: ``(signature, operator)`` pairs in wave order → reward per signature.
BatchEvaluator = Callable[[Sequence[tuple[str, SynthesizedOperator]]], Mapping[str, float]]


@dataclass
class MCTS:
    """UCT search for high-reward operators under a FLOPs budget."""

    spec: OperatorSpec
    options: EnumerationOptions
    reward_fn: RewardFn
    config: MCTSConfig = field(default_factory=MCTSConfig)
    #: runtime context whose reward cache serial evaluation uses; ``None``
    #: resolves the ambient context (:func:`repro.runtime.current`) per wave.
    runtime: object | None = None

    def __post_init__(self) -> None:
        seed = self.config.seed
        if seed is None:
            from repro.runtime import current  # lazy: avoids an import cycle

            context = self.runtime if self.runtime is not None else current()
            seed = context.config.seed
        self._rng = random.Random(seed)
        self._root = _Node(PGraph.root(self.spec.output_shape, self.spec.input_shape), None, None)
        self.samples: list[SampleRecord] = []
        self._iteration = 0
        #: rewards already recorded by THIS search: deduplicates samples and
        #: keeps within-run memoization unconditional (even with the
        #: context's caches disabled via ``RuntimeConfig.eval_cache=False``).
        self._local_rewards: dict[str, float] = {}
        #: reward-cache context; private to the instance unless configured.
        self._context: Hashable = (
            self.config.cache_context
            if self.config.cache_context is not None
            else ("mcts-instance", next(_INSTANCE_CONTEXTS))
        )

    # -- public API --------------------------------------------------------

    def run(
        self,
        iterations: int | None = None,
        evaluate_batch: BatchEvaluator | None = None,
    ) -> list[SampleRecord]:
        """Run the search and return all evaluated samples (best first).

        ``evaluate_batch`` overrides how each wave's pending rewards are
        computed (e.g. :func:`repro.search.parallel.sharded_reward_evaluator`
        fans them out over worker processes).  The default evaluates serially
        through the process-wide reward cache.  Either way the sample
        sequence is identical: waves are composed before any evaluation.
        """
        iterations = iterations if iterations is not None else self.config.iterations
        width = max(self.config.batch_size, 1)
        self._iteration = 0
        done = 0
        while done < iterations:
            wave = self.propose_batch(min(width, iterations - done))
            if not wave:
                break
            rewards = self._evaluate_wave(wave, evaluate_batch)
            self.apply_results(wave, rewards)
            done += len(wave)
        return self.best_samples()

    # -- batched frontier API ----------------------------------------------

    def propose_batch(self, n: int) -> list[PendingRollout]:
        """Run the tree policy for up to ``n`` iterations, deferring rewards.

        Each iteration selects, expands and rolls out exactly as the classic
        loop does (consuming the same RNG stream) but records the terminal
        operator as a :class:`PendingRollout` instead of evaluating it.
        Visit counts are backpropagated immediately — a deterministic virtual
        loss that steers later selections in the same wave away from the
        frontier already being evaluated; rewards land in
        :meth:`apply_results`.
        """
        wave: list[PendingRollout] = []
        for _ in range(max(n, 0)):
            node = self._select(self._root)
            node = self._expand(node)
            pending = self._rollout_pending(node, self._iteration)
            self._propagate_visit(node)
            wave.append(pending)
            self._iteration += 1
        return wave

    def pending_evaluations(
        self, wave: Sequence[PendingRollout]
    ) -> list[tuple[str, SynthesizedOperator]]:
        """The unique (signature, operator) pairs this wave needs rewards for.

        First-appearance order; signatures already evaluated by this search
        are excluded (their recorded reward is reused at apply time).
        """
        seen = set(self._local_rewards)
        pending: list[tuple[str, SynthesizedOperator]] = []
        for rollout in wave:
            if rollout.signature is not None and rollout.signature not in seen:
                seen.add(rollout.signature)
                pending.append((rollout.signature, rollout.operator))
        return pending

    def apply_results(
        self, wave: Sequence[PendingRollout], rewards: Mapping[str, float]
    ) -> None:
        """Record the wave's samples and backpropagate rewards, in wave order."""
        for rollout in wave:
            if rollout.signature is None:
                reward = 0.0
            elif rollout.signature in self._local_rewards:
                reward = self._local_rewards[rollout.signature]
            else:
                reward = float(rewards[rollout.signature])
                self._local_rewards[rollout.signature] = reward
                self.samples.append(
                    SampleRecord(
                        operator=rollout.operator, reward=reward, iteration=rollout.iteration
                    )
                )
            self._propagate_reward(rollout.node, reward)

    def _evaluate_wave(
        self, wave: Sequence[PendingRollout], evaluate_batch: BatchEvaluator | None
    ) -> Mapping[str, float]:
        from repro.runtime import current  # lazy: avoids an import cycle

        pending = self.pending_evaluations(wave)
        if not pending:
            return {}
        if evaluate_batch is not None:
            return dict(evaluate_batch(pending))
        runtime = self.runtime if self.runtime is not None else current()
        wave_evaluator = getattr(runtime, "wave_evaluator", None)
        if wave_evaluator is not None:
            # The serving layer installed a coalescer on this context: hand
            # the whole wave over so concurrent searches share one fan-out.
            # Wave *composition* already happened (propose_batch), so where
            # the rewards come from cannot change the sample sequence.
            return dict(wave_evaluator(pending, self.reward_fn, self._context, runtime))
        rewards: dict[str, float] = {}
        for signature, operator in pending:
            rewards[signature] = runtime.cached_reward(
                self._context,
                signature,
                lambda operator=operator: float(self.reward_fn(operator)),
            )
        return rewards

    def best_samples(self, top_k: int | None = None) -> list[SampleRecord]:
        ordered = sorted(self.samples, key=lambda record: record.reward, reverse=True)
        return ordered if top_k is None else ordered[:top_k]

    def best_operator(self) -> SynthesizedOperator | None:
        samples = self.best_samples(1)
        return samples[0].operator if samples else None

    # -- MCTS phases -------------------------------------------------------

    def _select(self, node: _Node) -> _Node:
        while True:
            if node.untried is None or node.untried:
                return node
            if not node.children:
                return node
            node = max(node.children, key=lambda child: child.uct_score(self.config.exploration))

    def _expand(self, node: _Node) -> _Node:
        if node.graph.depth >= self.options.max_depth or (
            node.graph.is_complete and node.graph.depth > 0
        ):
            return node
        if node.untried is None:
            children = enumerate_children(node.graph, self.options)
            children = self._prune_by_distance(node.graph, children)
            self._rng.shuffle(children)
            if node.parent is None and self.config.root_priority:
                node.untried = self._prioritized_root_children(children)
            else:
                node.untried = children[: self.config.max_children]
        if not node.untried:
            return node
        action, graph = node.untried.pop()
        child = _Node(graph, node, action)
        node.children.append(child)
        return child

    def _prioritized_root_children(
        self, children: list[tuple[Action, PGraph]]
    ) -> list[tuple[Action, PGraph]]:
        """The root's untried list with warm-start signatures expanded first.

        Expansion pops from the back, so the best-ranked preferred child goes
        last; unranked children fill the remaining ``max_children`` slots in
        their (already shuffled) order.  Runs after the shuffle and consumes
        no randomness.
        """
        rank = {sig: index for index, sig in enumerate(self.config.root_priority)}
        preferred: list[tuple[int, tuple[Action, PGraph]]] = []
        rest: list[tuple[Action, PGraph]] = []
        for action, graph in children:
            position = rank.get(graph.signature())
            if position is None:
                rest.append((action, graph))
            else:
                preferred.append((position, (action, graph)))
        preferred.sort(key=lambda pair: pair[0], reverse=True)
        keep = max(self.config.max_children - len(preferred), 0)
        return rest[:keep] + [pair for _, pair in preferred]

    def _prune_by_distance(
        self, graph: PGraph, children: list[tuple[Action, PGraph]]
    ) -> list[tuple[Action, PGraph]]:
        if not self.options.use_shape_distance:
            return children
        remaining = self.options.max_depth - graph.depth - 1
        return [
            (action, child)
            for action, child in children
            if shape_distance(child.frontier_shape, child.input_shape) <= remaining
        ]

    def _rollout_pending(self, node: _Node, iteration: int) -> PendingRollout:
        """Complete ``node``'s graph with guided random rollout, deferring the reward.

        Consumes exactly the RNG the classic rollout did; the terminal
        operator (or the invalid outcome) is recorded for wave evaluation.
        """
        graph = node.graph
        # ``rollout_depth=0`` is a legitimate setting (no random completion
        # beyond the tree policy), so only ``None`` falls back to max_depth.
        depth_limit = (
            self.config.rollout_depth
            if self.config.rollout_depth is not None
            else self.options.max_depth
        )
        while not (graph.is_complete and graph.depth > 0):
            if graph.depth >= depth_limit:
                return PendingRollout(iteration=iteration, node=node)
            children = enumerate_children(graph, self.options)
            children = self._prune_by_distance(graph, children)
            if not children:
                return PendingRollout(iteration=iteration, node=node)
            _, graph = self._rng.choice(children)
        if not self.options.within_budgets(graph):
            return PendingRollout(iteration=iteration, node=node)
        operator = SynthesizedOperator.from_graph(graph, self.spec)
        return PendingRollout(
            iteration=iteration, node=node, operator=operator, signature=graph.signature()
        )

    def _propagate_visit(self, node: _Node | None) -> None:
        while node is not None:
            node.visits += 1
            node = node.parent

    def _propagate_reward(self, node: _Node | None, reward: float) -> None:
        while node is not None:
            node.total_reward += reward
            node = node.parent
