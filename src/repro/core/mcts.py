"""Monte Carlo Tree Search over the primitive-application space (Section 7.2).

The synthesis problem is formulated as a Markov decision process: states are
partial pGraphs, actions are canonical primitive applications, terminal states
are complete pGraphs within budget.  The reward of a terminal state is
supplied by an evaluator (typically: proxy training accuracy of the backbone
model with the candidate operator substituted in, see
:mod:`repro.search.evaluator`); invalid rollouts receive zero reward.

The implementation is a standard UCT tree search with random rollouts that are
*guided* by the shape-distance metric, mirroring the paper's combination of
stochastic tree search and guided synthesis.

Rewards are memoized twice: per instance (``_local_rewards``, which also
deduplicates the recorded samples) and process-wide through
:func:`repro.search.cache.cached_reward` under ``MCTSConfig.cache_context`` —
searches sharing a context (same backbone, same evaluation settings) reuse
each other's proxy-training results, including results reloaded from a
persisted cache snapshot.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.enumeration import Action, EnumerationOptions, enumerate_children
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import PGraph
from repro.core.shape_distance import shape_distance

#: Reward function over complete operators; should return a value in [0, 1].
RewardFn = Callable[[SynthesizedOperator], float]

#: Monotonic ids for instance-private cache contexts (``id()`` can be reused
#: after garbage collection, which would alias unrelated searches' rewards).
_INSTANCE_CONTEXTS = itertools.count()


@dataclass
class MCTSConfig:
    """Hyper-parameters of the tree search."""

    iterations: int = 200
    exploration: float = 1.0
    rollout_depth: int | None = None  # defaults to options.max_depth
    seed: int = 0
    #: maximum number of children to expand per node (limits branching).
    max_children: int = 64
    #: context of the process-wide reward cache.  Searches sharing a context
    #: (same backbone, same evaluation settings) reuse each other's rewards;
    #: ``None`` keeps rewards private to this search instance.
    cache_context: Hashable | None = None


class _Node:
    """One node of the MCTS tree (a partial pGraph)."""

    __slots__ = ("graph", "parent", "children", "untried", "visits", "total_reward", "action")

    def __init__(self, graph: PGraph, parent: "_Node | None", action: Action | None):
        self.graph = graph
        self.parent = parent
        self.action = action
        self.children: list[_Node] = []
        self.untried: list[tuple[Action, PGraph]] | None = None
        self.visits = 0
        self.total_reward = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def uct_score(self, exploration: float) -> float:
        if self.visits == 0:
            return math.inf
        assert self.parent is not None
        return self.mean_reward + exploration * math.sqrt(
            math.log(self.parent.visits + 1) / self.visits
        )


@dataclass
class SampleRecord:
    """One evaluated terminal sample (the paper records all MCTS samples)."""

    operator: SynthesizedOperator
    reward: float
    iteration: int


@dataclass
class MCTS:
    """UCT search for high-reward operators under a FLOPs budget."""

    spec: OperatorSpec
    options: EnumerationOptions
    reward_fn: RewardFn
    config: MCTSConfig = field(default_factory=MCTSConfig)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.config.seed)
        self._root = _Node(PGraph.root(self.spec.output_shape, self.spec.input_shape), None, None)
        self.samples: list[SampleRecord] = []
        #: rewards already recorded by THIS search: deduplicates samples and
        #: keeps within-run memoization unconditional (even with the
        #: process-wide caches disabled via REPRO_EVAL_CACHE=0).
        self._local_rewards: dict[str, float] = {}
        #: reward-cache context; private to the instance unless configured.
        self._context: Hashable = (
            self.config.cache_context
            if self.config.cache_context is not None
            else ("mcts-instance", next(_INSTANCE_CONTEXTS))
        )

    # -- public API --------------------------------------------------------

    def run(self, iterations: int | None = None) -> list[SampleRecord]:
        """Run the search and return all evaluated samples (best first)."""
        iterations = iterations if iterations is not None else self.config.iterations
        for iteration in range(iterations):
            node = self._select(self._root)
            node = self._expand(node)
            reward = self._rollout(node, iteration)
            self._backpropagate(node, reward)
        return self.best_samples()

    def best_samples(self, top_k: int | None = None) -> list[SampleRecord]:
        ordered = sorted(self.samples, key=lambda record: record.reward, reverse=True)
        return ordered if top_k is None else ordered[:top_k]

    def best_operator(self) -> SynthesizedOperator | None:
        samples = self.best_samples(1)
        return samples[0].operator if samples else None

    # -- MCTS phases -------------------------------------------------------

    def _select(self, node: _Node) -> _Node:
        while True:
            if node.untried is None or node.untried:
                return node
            if not node.children:
                return node
            node = max(node.children, key=lambda child: child.uct_score(self.config.exploration))

    def _expand(self, node: _Node) -> _Node:
        if node.graph.depth >= self.options.max_depth or (
            node.graph.is_complete and node.graph.depth > 0
        ):
            return node
        if node.untried is None:
            children = enumerate_children(node.graph, self.options)
            children = self._prune_by_distance(node.graph, children)
            self._rng.shuffle(children)
            node.untried = children[: self.config.max_children]
        if not node.untried:
            return node
        action, graph = node.untried.pop()
        child = _Node(graph, node, action)
        node.children.append(child)
        return child

    def _prune_by_distance(
        self, graph: PGraph, children: list[tuple[Action, PGraph]]
    ) -> list[tuple[Action, PGraph]]:
        if not self.options.use_shape_distance:
            return children
        remaining = self.options.max_depth - graph.depth - 1
        return [
            (action, child)
            for action, child in children
            if shape_distance(child.frontier_shape, child.input_shape) <= remaining
        ]

    def _rollout(self, node: _Node, iteration: int) -> float:
        from repro.search.cache import cached_reward  # lazy: avoids an import cycle

        graph = node.graph
        # ``rollout_depth=0`` is a legitimate setting (no random completion
        # beyond the tree policy), so only ``None`` falls back to max_depth.
        depth_limit = (
            self.config.rollout_depth
            if self.config.rollout_depth is not None
            else self.options.max_depth
        )
        while not (graph.is_complete and graph.depth > 0):
            if graph.depth >= depth_limit:
                return 0.0
            children = enumerate_children(graph, self.options)
            children = self._prune_by_distance(graph, children)
            if not children:
                return 0.0
            _, graph = self._rng.choice(children)
        if not self.options.within_budgets(graph):
            return 0.0
        operator = SynthesizedOperator.from_graph(graph, self.spec)
        signature = graph.signature()
        if signature in self._local_rewards:
            return self._local_rewards[signature]
        reward = cached_reward(self._context, signature, lambda: float(self.reward_fn(operator)))
        self._local_rewards[signature] = reward
        self.samples.append(SampleRecord(operator=operator, reward=reward, iteration=iteration))
        return reward

    def _backpropagate(self, node: _Node | None, reward: float) -> None:
        while node is not None:
            node.visits += 1
            node.total_reward += reward
            node = node.parent
