"""Syno's fine-grained primitives (Table 1 of the paper).

Each primitive transforms coordinate expressions *bottom-up*: it consumes some
dimensions of the current frontier (the interface toward the operator's input)
and produces new ones.  The table below summarizes the frontier semantics; the
corresponding *top-down* tensor semantics (used by code generation) are
documented on each class.

==========  =======================  ==========================================
Primitive   Frontier (bottom-up)     Top-down tensor semantics
==========  =======================  ==========================================
Split       (G, B)      -> (G*B)     reshape G*B into (G, B)
Merge(B)    (N)         -> (N/B, B)  flatten (N/B, B) into N
Shift       (N)         -> (N)       out[i] = in[(i + 1) % N]
Expand      (C)         -> ()        broadcast a new output dimension of size C
Unfold      (N, K)      -> (N)       out[i, j] = in[i + j - K/2] (zero padded)
Stride(S)   (K)         -> (S*K)     out[i] = in[S*i]
Reduce(N)   ()          -> (N)       sum over the new reduction dimension
Share       (N, m...)   -> (N)       multiply by a weight indexed by N (and m)
==========  =======================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.pgraph import Application, Dim, DimRole, PGraph
from repro.ir.size import Size, SizeError
from repro.ir.variables import Variable


class PrimitiveError(ValueError):
    """Raised when a primitive is applied to invalid operands."""


@dataclass(frozen=True)
class Primitive:
    """Base class for all primitives."""

    #: number of frontier dims consumed (None means variable, e.g. Share).
    arity: int = 0
    #: whether the primitive is a pure view (no computation).
    is_view: bool = False
    #: whether the primitive performs a contraction (Reduce / Share).
    is_contraction: bool = False
    #: whether the primitive is 1-to-many in the paper's classification.
    is_one_to_many: bool = False

    def describe(self) -> str:
        return type(self).__name__

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        raise NotImplementedError

    def _check_operands(self, graph: PGraph, operands: Sequence[Dim], expected: int) -> None:
        if len(operands) != expected:
            raise PrimitiveError(
                f"{self.describe()} expects {expected} operand(s), got {len(operands)}"
            )
        for dim in operands:
            if dim not in graph.frontier:
                raise PrimitiveError(f"operand {dim!r} is not in the frontier")


# ---------------------------------------------------------------------------
# Views
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Split(Primitive):
    """Combine two frontier dims ``(G, B)`` into one dim of size ``G*B``.

    Bottom-up this corresponds to Table 1's ``[i, j]:[G, B] <- [B*i+j]:[G*B]``.
    Top-down it partitions a dimension into blocks (a reshape).
    """

    arity: int = 2
    is_view: bool = True

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 2)
        major, minor = operands
        produced = Dim(
            size=major.size * minor.size,
            role=DimRole.INTERMEDIATE,
            name=f"{major.name}*{minor.name}",
        )
        app = Application(primitive=self, consumed=tuple(operands), produced=(produced,))
        return graph.replace_dims(operands, (produced,), app)


@dataclass(frozen=True)
class Merge(Primitive):
    """Split one frontier dim ``N`` into ``(N/B, B)``.

    Bottom-up: ``[i]:[N] <- [i/B, i%B]:[N/B, B]``.  Top-down it flattens two
    dimensions into one (a reshape).  ``block`` must divide the operand size.
    """

    block: Size = Size.one()
    arity: int = 1
    is_view: bool = True

    def describe(self) -> str:
        return f"Merge({self.block!r})"

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 1)
        (dim,) = operands
        if self.block.is_one:
            raise PrimitiveError("Merge block must not be 1")
        quotient = dim.size / self.block
        if not quotient.is_plausible or quotient.has_primary_in_denominator:
            raise PrimitiveError(f"block {self.block!r} does not divide {dim.size!r}")
        outer = Dim(size=quotient, role=DimRole.INTERMEDIATE, name=f"{dim.name}/b")
        inner = Dim(size=self.block, role=DimRole.INTERMEDIATE, name=f"{dim.name}%b")
        app = Application(primitive=self, consumed=(dim,), produced=(outer, inner))
        return graph.replace_dims((dim,), (outer, inner), app)


@dataclass(frozen=True)
class Shift(Primitive):
    """Cyclically shift a dimension: ``out[i] = in[(i + amount) % N]``."""

    amount: int = 1
    arity: int = 1
    is_view: bool = True

    def describe(self) -> str:
        return f"Shift({self.amount})"

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 1)
        (dim,) = operands
        produced = Dim(size=dim.size, role=DimRole.INTERMEDIATE, name=f"{dim.name}+{self.amount}")
        app = Application(primitive=self, consumed=(dim,), produced=(produced,))
        return graph.replace_dims((dim,), (produced,), app)


@dataclass(frozen=True)
class Expand(Primitive):
    """Drop a frontier dim: the output is repeated along it (up-sampling)."""

    arity: int = 1
    is_view: bool = True
    is_one_to_many: bool = True

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 1)
        (dim,) = operands
        app = Application(primitive=self, consumed=(dim,), produced=())
        return graph.replace_dims((dim,), (), app)


@dataclass(frozen=True)
class Unfold(Primitive):
    """Combine a main dim ``N`` and a window dim ``K`` into a sliding window.

    Bottom-up: ``[i, j]:[N, K] <- [i + j - K/2]:[N]``.  Top-down it extracts
    sliding windows of size ``K`` (with zero padding) along the main dim.
    The first operand is the main dim, the second the window dim.
    """

    arity: int = 2
    is_view: bool = True
    is_one_to_many: bool = True

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 2)
        main, window = operands
        if window.size.primary_variables():
            raise PrimitiveError(
                f"Unfold window {window.size!r} must not contain primary variables"
            )
        produced = Dim(size=main.size, role=DimRole.INTERMEDIATE, name=f"{main.name}~{window.name}")
        app = Application(primitive=self, consumed=(main, window), produced=(produced,))
        return graph.replace_dims((main, window), (produced,), app)


@dataclass(frozen=True)
class Stride(Primitive):
    """Strided access: a dim of size ``K`` reads every ``stride``-th element."""

    stride: Size = Size.one()
    arity: int = 1
    is_view: bool = True

    def describe(self) -> str:
        return f"Stride({self.stride!r})"

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 1)
        (dim,) = operands
        if self.stride.is_one:
            raise PrimitiveError("Stride of 1 is the identity")
        produced = Dim(
            size=dim.size * self.stride,
            role=DimRole.INTERMEDIATE,
            name=f"{dim.name}*s",
        )
        app = Application(primitive=self, consumed=(dim,), produced=(produced,))
        return graph.replace_dims((dim,), (produced,), app)


# ---------------------------------------------------------------------------
# Contractions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Reduce(Primitive):
    """Introduce a sum-reduction loop over a new dimension of the given size."""

    size: Size = Size.one()
    arity: int = 0
    is_contraction: bool = True

    def describe(self) -> str:
        return f"Reduce({self.size!r})"

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        self._check_operands(graph, operands, 0)
        if self.size.is_one:
            raise PrimitiveError("Reduce over a size-1 dimension is the identity")
        produced = Dim(size=self.size, role=DimRole.REDUCTION, name="r")
        app = Application(primitive=self, consumed=(), produced=(produced,))
        return graph.replace_dims((), (produced,), app)


@dataclass(frozen=True)
class Share(Primitive):
    """Index a weight tensor with an existing frontier coordinate.

    The first operand is the *shared* dim: the weight tensor gains an axis of
    the same size, identified with it, and the data path is unchanged.  Any
    further operands are *matched* dims (the paper's implicit ``Match`` step):
    they are moved from the frontier onto the weight tensor, so the output can
    depend on them only through the weight.

    ``new_weight`` controls whether a fresh weight tensor is created or the
    axes are appended to the most recently created weight tensor — consecutive
    Shares appending to one weight model multi-axis weights such as the
    ``[C_out, C_in, K, K]`` tensor of a standard convolution.
    """

    new_weight: bool = True
    arity: int = 1
    is_contraction: bool = True

    def describe(self) -> str:
        return "Share" if self.new_weight else "Share(+)"

    def apply(self, graph: PGraph, operands: Sequence[Dim]) -> PGraph:
        if not operands:
            raise PrimitiveError("Share requires at least the shared dim")
        self._check_operands(graph, operands, len(operands))
        shared, *matched = operands
        if self.new_weight:
            weight_index = len(graph.weights)
        else:
            weight_index = graph.weight_index_of_last_share()
            if weight_index is None:
                raise PrimitiveError(
                    "Share(new_weight=False) must immediately follow another Share"
                )
        weight_dims = [
            Dim(size=shared.size, role=DimRole.WEIGHT, name=f"w_{shared.name}", identified_with=shared)
        ]
        for dim in matched:
            weight_dims.append(
                Dim(size=dim.size, role=DimRole.WEIGHT, name=f"w_{dim.name}", identified_with=dim)
            )
        app = Application(
            primitive=self,
            consumed=tuple(matched),
            produced=(),
            weight_dims=tuple(weight_dims),
            matched=tuple(matched),
            weight_index=weight_index,
        )
        return graph.replace_dims(
            tuple(matched), (), app, new_weight_dims=tuple(weight_dims), weight_index=weight_index
        )


VIEW_PRIMITIVES: tuple[type, ...] = (Split, Merge, Shift, Expand, Unfold, Stride)
CONTRACTION_PRIMITIVES: tuple[type, ...] = (Reduce, Share)
ONE_TO_ONE_VIEWS: tuple[type, ...] = (Split, Merge, Shift)
ONE_TO_MANY_VIEWS: tuple[type, ...] = (Expand, Unfold)
MANY_TO_ONE_VIEWS: tuple[type, ...] = (Stride,)
