"""Core of the reproduction: Syno's operator-synthesis machinery.

This package contains the paper's primary contribution:

* the fine-grained primitives defined on tensor coordinates (Table 1),
* primitive graphs (pGraphs) that represent partial and complete operators,
* canonicalization rules that prune redundant candidates (Section 6),
* the shape-distance metric that guides synthesis (Section 7.1),
* guided enumeration (Algorithm 1) and MCTS-based search (Section 7.2),
* concrete synthesized operators with FLOPs / parameter accounting.
"""

from repro.core.primitives import (
    Expand,
    Merge,
    Primitive,
    Reduce,
    Share,
    Shift,
    Split,
    Stride,
    Unfold,
)
from repro.core.pgraph import Application, Dim, DimRole, PGraph, WeightTensor
from repro.core.operator import SynthesizedOperator, OperatorSpec
from repro.core.shape_distance import shape_distance
from repro.core.canonicalize import CanonicalizationEngine, default_rules
from repro.core.enumeration import EnumerationOptions, enumerate_children, synthesize
from repro.core.mcts import MCTS, MCTSConfig

__all__ = [
    "Primitive",
    "Split",
    "Merge",
    "Shift",
    "Expand",
    "Unfold",
    "Stride",
    "Reduce",
    "Share",
    "Dim",
    "DimRole",
    "Application",
    "WeightTensor",
    "PGraph",
    "OperatorSpec",
    "SynthesizedOperator",
    "shape_distance",
    "CanonicalizationEngine",
    "default_rules",
    "EnumerationOptions",
    "enumerate_children",
    "synthesize",
    "MCTS",
    "MCTSConfig",
]
