"""Canonicalization rules that prune redundant operator candidates (Section 6).

The rules are checked *on the fly*: before a primitive is applied to a partial
pGraph the engine decides whether the resulting graph would be canonical.  A
non-canonical graph is never generated, so the search never wastes samples on
candidates that a tensor compiler would consider equivalent (or nearly
equivalent) to another candidate.

The rule set mirrors the paper:

* ``Merge`` may not be applied above a ``Split`` (Figure 3a) and may not undo
  the ``Split`` it follows;
* 1-to-1 views are pushed below (i.e. applied before) commuting contractions
  (Figure 3b), and more generally adjacent commuting applications must appear
  in a canonical order;
* ``Expand`` may not be combined with ``Reduce`` (it would only scale the
  result);
* ``Unfold`` may involve at most one reduction coordinate;
* approximate-simplification: ``Merge`` is not applied to the result of an
  ``Unfold`` (Figure 3c);
* ``Shift`` chains are collapsed (a ``Shift`` may not follow a ``Shift`` on
  the same coordinate);
* weight tensors receive coordinates only through ``Share`` (structural).

The engine is extensible: new rules are plain callables and can be added by
client code, as the paper advertises for Syno.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.pgraph import Application, Dim, PGraph
from repro.core.primitives import (
    Expand,
    Merge,
    Primitive,
    Reduce,
    Share,
    Shift,
    Split,
    Stride,
    Unfold,
)

#: A canonicalization rule: returns True when the proposed application is
#: canonical (allowed), False when it must be pruned.
Rule = Callable[[PGraph, Primitive, Sequence[Dim]], bool]


def _producer_of(graph: PGraph, dim: Dim) -> Application | None:
    """The application that produced ``dim``, or None for output dims."""
    for app in graph.applications:
        if dim in app.produced:
            return app
    return None


def no_merge_above_split(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """A ``Merge`` may not transform a coordinate produced by a ``Split``.

    ``Split`` then ``Merge`` is always expressible in the simpler opposite
    order (Figure 3a), so only the latter is canonical.
    """
    if not isinstance(primitive, Merge):
        return True
    producer = _producer_of(graph, operands[0])
    return not (producer is not None and isinstance(producer.primitive, Split))


def no_split_undoing_merge(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """A ``Split`` may not recombine exactly the two dims of one ``Merge``."""
    if not isinstance(primitive, Split):
        return True
    producer = _producer_of(graph, operands[0])
    if producer is None or not isinstance(producer.primitive, Merge):
        return True
    return tuple(operands) != producer.produced


def no_merge_above_unfold(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """Approximate simplification (Figure 3c): don't ``Merge`` an unfolded dim.

    When the block size is much larger than the window, ``Merge`` above
    ``Unfold`` is almost everywhere equal to the form with the ``Merge``
    below, so only the latter is kept.
    """
    if not isinstance(primitive, Merge):
        return True
    producer = _producer_of(graph, operands[0])
    return not (producer is not None and isinstance(producer.primitive, Unfold))


def no_shift_chains(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """Consecutive ``Shift``s of the same coordinate collapse to one."""
    if not isinstance(primitive, Shift):
        return True
    producer = _producer_of(graph, operands[0])
    return not (producer is not None and isinstance(producer.primitive, Shift))


def no_expand_of_reduction(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """``Expand`` + ``Reduce`` only multiplies the result by a constant.

    The exception is a reduction coordinate that has been ``Share``d onto at
    least one weight tensor: then the reduction contracts the weights (the
    low-rank pattern the paper observes in its discovered operators), so
    dropping it from the data path is meaningful.
    """
    if not isinstance(primitive, Expand):
        return True
    (dim,) = operands
    if not dim.is_reduction:
        return True
    for weight in graph.weights:
        if any(wdim.identified_with is dim for wdim in weight.dims):
            return True
    return False


def unfold_single_reduction(graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
    """``Unfold`` allows at most one of its coordinates to be a reduction."""
    if not isinstance(primitive, Unfold):
        return True
    return sum(1 for dim in operands if dim.is_reduction) <= 1


def stride_paired_with_one_to_many(
    graph: PGraph, primitive: Primitive, operands: Sequence[Dim]
) -> bool:
    """``Stride`` discards elements, so it must be paired with a 1-to-many view."""
    if not isinstance(primitive, Stride):
        return True
    one_to_many = graph.count_primitive(Unfold) + graph.count_primitive(Expand)
    strides = graph.count_primitive(Stride)
    return strides < one_to_many + 1  # allow one Stride "in flight"


def share_matches_move_non_reductions(
    graph: PGraph, primitive: Primitive, operands: Sequence[Dim]
) -> bool:
    """Matched dims moved onto a weight must not be reduction coordinates.

    A reduction coordinate appearing only on a weight would sum the weight
    offline, which a compiler folds away — such candidates are redundant.
    """
    if not isinstance(primitive, Share):
        return True
    return not any(dim.is_reduction for dim in operands[1:])


def _application_key(primitive: Primitive, operands: Sequence[Dim]) -> tuple:
    """Total order on applications used to canonicalize commuting neighbours."""
    if primitive.is_view and not primitive.is_one_to_many and not isinstance(primitive, Stride):
        priority = 0  # 1-to-1 views come first (pushed below contractions)
    elif primitive.is_view:
        priority = 1
    else:
        priority = 2  # contractions last
    min_uid = min((dim.uid for dim in operands), default=-1)
    return (priority, type(primitive).__name__, min_uid)


def _commutes_with_last(graph: PGraph, operands: Sequence[Dim]) -> bool:
    last = graph.last_application
    if last is None:
        return False
    touched = set(last.produced) | set(last.weight_dims)
    return not any(dim in touched for dim in operands)


def canonical_commuting_order(
    graph: PGraph, primitive: Primitive, operands: Sequence[Dim]
) -> bool:
    """Adjacent commuting applications must appear in a fixed canonical order.

    If the proposed application does not touch anything the previous
    application produced, the two could be swapped without changing the
    operator; we keep only the ordering where the smaller key comes first.
    In particular this pushes 1-to-1 views below contractions (Figure 3b).
    """
    last = graph.last_application
    if last is None or not _commutes_with_last(graph, operands):
        return True
    last_key = _application_key(last.primitive, last.consumed or last.produced)
    new_key = _application_key(primitive, operands)
    return new_key >= last_key


def default_rules() -> list[Rule]:
    """The paper's rule set, in the order they are checked."""
    return [
        no_merge_above_split,
        no_split_undoing_merge,
        no_merge_above_unfold,
        no_shift_chains,
        no_expand_of_reduction,
        unfold_single_reduction,
        stride_paired_with_one_to_many,
        share_matches_move_non_reductions,
        canonical_commuting_order,
    ]


@dataclass
class CanonicalizationEngine:
    """Applies a configurable list of canonicalization rules."""

    rules: list[Rule] = field(default_factory=default_rules)

    def is_canonical(self, graph: PGraph, primitive: Primitive, operands: Sequence[Dim]) -> bool:
        """Whether applying ``primitive`` to ``operands`` keeps the graph canonical."""
        return all(rule(graph, primitive, operands) for rule in self.rules)

    def rejecting_rule(
        self, graph: PGraph, primitive: Primitive, operands: Sequence[Dim]
    ) -> str | None:
        """The name of the first rule that rejects the application, or ``None``.

        The observability counterpart of :meth:`is_canonical`: enumeration
        statistics attribute each pruned application to the rule that pruned
        it (``SynthesisStats.canonicalization_rejections``).
        """
        for rule in self.rules:
            if not rule(graph, primitive, operands):
                return getattr(rule, "__name__", repr(rule))
        return None

    def add_rule(self, rule: Rule) -> None:
        """Register an additional user-defined rule (the paper's extensibility)."""
        self.rules.append(rule)
