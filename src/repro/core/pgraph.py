"""Primitive graphs (pGraphs): partial and complete synthesized operators.

A pGraph is built *bottom-up*, starting from the output tensor's dimensions
and iteratively applying primitives (Section 5).  The state of a partial
operator is its *frontier*: the ordered list of dimensions of the data tensor
being constructed toward the operator's input.  Each primitive application
consumes some frontier dimensions and produces new ones; ``Share`` applications
additionally create weight-tensor dimensions.

A pGraph is complete when its frontier matches the desired input shape (as a
multiset of symbolic sizes — final transposition is free, Section 7.1).

``PGraph`` instances are immutable: applying a primitive returns a new graph
that structurally shares its history with the old one.  This is what makes the
search space a tree that MCTS can explore cheaply.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import Variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.primitives import Primitive


_DIM_COUNTER = itertools.count()


def reserve_dim_uids(highest: int) -> None:
    """Advance the global dim uid counter strictly past ``highest``.

    Dim identity (equality, frontier membership, producer attribution) relies
    on uids being unique *within* a graph.  A graph pickled into a worker
    process carries uids from its producer's counter; before the worker
    extends it, the local counter must be moved past every uid the graph
    already holds or freshly created dims could collide with them.  Used by
    the shard-parallel library builder.
    """
    while next(_DIM_COUNTER) <= highest:
        pass


class DimRole(enum.Enum):
    """The origin of a dimension in the pGraph."""

    OUTPUT = "output"        #: a dimension of the operator's output tensor
    REDUCTION = "reduction"  #: created by a Reduce primitive
    INTERMEDIATE = "view"    #: created by a view primitive
    WEIGHT = "weight"        #: an axis of a weight tensor


@dataclass(frozen=True)
class Dim:
    """A single (possibly intermediate) coordinate of the pGraph.

    Dimensions have identity: two dims with the same size are distinct edges
    of the graph.  Weight dims additionally record which data-path dim they
    are identified with by a ``Share`` or its implicit ``Match``.
    """

    size: Size
    role: DimRole
    name: str = ""
    uid: int = field(default_factory=lambda: next(_DIM_COUNTER))
    identified_with: "Dim | None" = None

    @property
    def is_reduction(self) -> bool:
        return self.role is DimRole.REDUCTION

    @property
    def is_output(self) -> bool:
        return self.role is DimRole.OUTPUT

    def __repr__(self) -> str:
        label = self.name or f"d{self.uid}"
        return f"{label}:{self.size!r}"


@dataclass(frozen=True)
class WeightTensor:
    """A weight tensor created by one or more ``Share`` applications."""

    dims: tuple[Dim, ...]

    @property
    def shape(self) -> ShapeSpec:
        return ShapeSpec(tuple(dim.size for dim in self.dims))

    def parameter_count(self, bindings: Mapping[Variable, int] | None = None) -> int:
        count = 1
        for dim in self.dims:
            count *= dim.size.evaluate(bindings)
        return count

    def __repr__(self) -> str:
        return f"W{self.shape!r}"


@dataclass(frozen=True)
class Application:
    """One primitive application: the edge set it consumed and produced."""

    primitive: "Primitive"
    consumed: tuple[Dim, ...]
    produced: tuple[Dim, ...]
    weight_dims: tuple[Dim, ...] = ()
    matched: tuple[Dim, ...] = ()
    weight_index: int | None = None

    def __repr__(self) -> str:
        return (
            f"{self.primitive.describe()}"
            f"({', '.join(map(repr, self.consumed))} -> {', '.join(map(repr, self.produced))})"
        )


@dataclass(frozen=True)
class PGraph:
    """An immutable partial (or complete) operator.

    Attributes:
        output_shape: the desired output tensor shape (the "bottom").
        input_shape: the desired input tensor shape (the synthesis target).
        output_dims: the dims of the output tensor, fixed at construction.
        frontier: the current interface toward the input tensor.
        applications: the primitive applications, in bottom-up order.
        weights: the weight tensors created so far.
    """

    output_shape: ShapeSpec
    input_shape: ShapeSpec
    output_dims: tuple[Dim, ...]
    frontier: tuple[Dim, ...]
    applications: tuple[Application, ...] = ()
    weights: tuple[WeightTensor, ...] = ()

    # -- construction ------------------------------------------------------

    @staticmethod
    def root(
        output_shape: ShapeSpec | Sequence[Size | Variable | int],
        input_shape: ShapeSpec | Sequence[Size | Variable | int],
        output_names: Sequence[str] | None = None,
    ) -> "PGraph":
        """Create the root pGraph whose frontier is the output dims."""
        output_shape = ShapeSpec.of(output_shape)
        input_shape = ShapeSpec.of(input_shape)
        names = list(output_names or [])
        dims = []
        for index, size in enumerate(output_shape):
            name = names[index] if index < len(names) else f"o{index}"
            dims.append(Dim(size=size, role=DimRole.OUTPUT, name=name))
        output_dims = tuple(dims)
        return PGraph(
            output_shape=output_shape,
            input_shape=input_shape,
            output_dims=output_dims,
            frontier=output_dims,
        )

    # -- frontier editing (used by primitives) ------------------------------

    def replace_dims(
        self,
        consumed: Sequence[Dim],
        produced: Sequence[Dim],
        application: Application,
        new_weight_dims: Sequence[Dim] = (),
        weight_index: int | None = None,
    ) -> "PGraph":
        """Return a new graph with ``consumed`` dims swapped for ``produced``.

        The produced dims are inserted at the position of the first consumed
        dim (or appended, if nothing was consumed).  ``new_weight_dims`` are
        appended to the weight tensor at ``weight_index`` (or to a fresh
        weight tensor when the index equals ``len(self.weights)``).
        """
        frontier = list(self.frontier)
        for dim in consumed:
            if dim not in frontier:
                raise ValueError(f"dim {dim!r} is not in the frontier")
        if consumed:
            insert_at = frontier.index(consumed[0])
        else:
            insert_at = len(frontier)
        for dim in consumed:
            frontier.remove(dim)
        for offset, dim in enumerate(produced):
            frontier.insert(insert_at + offset, dim)

        weights = list(self.weights)
        if new_weight_dims:
            if weight_index is None:
                raise ValueError("weight dims provided without a weight index")
            if weight_index == len(weights):
                weights.append(WeightTensor(tuple(new_weight_dims)))
            else:
                existing = weights[weight_index]
                weights[weight_index] = WeightTensor(existing.dims + tuple(new_weight_dims))

        return replace(
            self,
            frontier=tuple(frontier),
            applications=self.applications + (application,),
            weights=tuple(weights),
        )

    # -- queries -----------------------------------------------------------

    @property
    def depth(self) -> int:
        """The number of primitives applied so far."""
        return len(self.applications)

    @property
    def frontier_shape(self) -> ShapeSpec:
        return ShapeSpec(tuple(dim.size for dim in self.frontier))

    @property
    def is_complete(self) -> bool:
        """Whether the frontier matches the desired input shape (unordered)."""
        return self.frontier_shape.same_multiset(self.input_shape)

    @property
    def reduction_dims(self) -> tuple[Dim, ...]:
        dims = []
        for app in self.applications:
            dims.extend(d for d in app.produced if d.is_reduction)
        return tuple(dims)

    @property
    def last_application(self) -> Application | None:
        return self.applications[-1] if self.applications else None

    def count_primitive(self, primitive_type: type) -> int:
        return sum(1 for app in self.applications if isinstance(app.primitive, primitive_type))

    def applications_of(self, primitive_type: type) -> tuple[Application, ...]:
        return tuple(app for app in self.applications if isinstance(app.primitive, primitive_type))

    def weight_index_of_last_share(self) -> int | None:
        """Index of the most recently extended weight tensor, if any."""
        for app in reversed(self.applications):
            if app.weight_index is not None:
                return app.weight_index
        return None

    # -- cost accounting ---------------------------------------------------

    def parameter_count(self, bindings: Mapping[Variable, int] | None = None) -> int:
        """Total number of learnable parameters across weight tensors."""
        return sum(weight.parameter_count(bindings) for weight in self.weights)

    def macs(self, bindings: Mapping[Variable, int] | None = None) -> int:
        """Multiply-accumulate count of the naive (un-materialized) loop nest.

        As the paper notes (Section 8), FLOPs depend only on the output
        iterators and the Reduce loops; the materialized-reduction pass in
        :mod:`repro.codegen.loopnest` may lower this further.
        """
        count = self.output_shape.numel(bindings)
        for dim in self.reduction_dims:
            count *= dim.size.evaluate(bindings)
        return count

    def flops(self, bindings: Mapping[Variable, int] | None = None) -> int:
        """FLOPs (2 per multiply-accumulate) of the naive loop nest."""
        return 2 * self.macs(bindings)

    def symbolic_macs(self) -> Size:
        size = self.output_shape.total
        for dim in self.reduction_dims:
            size = size * dim.size
        return size

    # -- presentation ------------------------------------------------------

    def describe(self) -> str:
        """A human-readable multi-line description of the pGraph."""
        lines = [f"output {self.output_shape!r} -> input {self.input_shape!r}"]
        for app in self.applications:
            lines.append(f"  {app!r}")
        lines.append(f"  frontier: {self.frontier_shape!r}")
        for weight in self.weights:
            lines.append(f"  weight: {weight!r}")
        return "\n".join(lines)

    def signature(self) -> str:
        """A structural signature used for deduplication of candidates."""
        parts = []
        dim_labels: dict[int, str] = {}

        def label(dim: Dim) -> str:
            if dim.uid not in dim_labels:
                dim_labels[dim.uid] = f"e{len(dim_labels)}"
            return dim_labels[dim.uid]

        for dim in self.output_dims:
            label(dim)
        for app in self.applications:
            parts.append(
                "{}[{}->{}|{}|{}]".format(
                    app.primitive.describe(),
                    ",".join(label(d) for d in app.consumed),
                    ",".join(label(d) for d in app.produced),
                    ",".join(label(d) for d in app.matched),
                    app.weight_index if app.weight_index is not None else "",
                )
            )
        return ";".join(parts)

    def __repr__(self) -> str:
        return f"PGraph(depth={self.depth}, frontier={self.frontier_shape!r})"


def dims_of_sizes(sizes: Iterable[Size | Variable | int], role: DimRole, prefix: str) -> tuple[Dim, ...]:
    """Helper to create a tuple of dims with a common role and name prefix."""
    return tuple(
        Dim(size=Size.of(size), role=role, name=f"{prefix}{index}")
        for index, size in enumerate(sizes)
    )
