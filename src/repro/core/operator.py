"""Concrete synthesized operators.

A :class:`SynthesizedOperator` binds a complete pGraph to concrete dimension
sizes and exposes the accounting the search needs (FLOPs, parameters) plus the
frontier-to-input axis assignment used by the code generators.

An :class:`OperatorSpec` describes the operator *slot* being replaced in a
backbone model: its symbolic input/output shapes and one or more concrete
bindings of the symbolic variables (one per layer in the model that shares the
slot).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.pgraph import Dim, PGraph
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size, SizeError
from repro.ir.variables import Variable


@dataclass(frozen=True)
class OperatorSpec:
    """The synthesis target: symbolic shapes plus concrete bindings.

    The same symbolic operator is reused at every layer of the backbone that
    matches the slot, each layer providing its own concrete binding
    (Section 5.4: shapes are symbolic so one operator fulfils many sizes).
    """

    name: str
    input_shape: ShapeSpec
    output_shape: ShapeSpec
    bindings: tuple[Mapping[Variable, int], ...] = ()

    @property
    def primary_variables(self) -> frozenset[Variable]:
        return self.input_shape.variables() | self.output_shape.variables()

    def with_binding(self, binding: Mapping[Variable, int]) -> "OperatorSpec":
        return OperatorSpec(
            self.name, self.input_shape, self.output_shape, self.bindings + (dict(binding),)
        )


class InvalidOperatorError(ValueError):
    """Raised when a pGraph cannot be interpreted as a complete operator."""


def match_frontier_to_input(graph: PGraph) -> tuple[int, ...]:
    """Assign each input-shape position a frontier dim index.

    The assignment pairs identical symbolic sizes; any permutation is allowed
    (the final transpose is free).  Raises :class:`InvalidOperatorError` when
    the frontier does not match the input shape as a multiset.
    """
    if not graph.is_complete:
        raise InvalidOperatorError(
            f"frontier {graph.frontier_shape!r} does not match input {graph.input_shape!r}"
        )
    remaining = list(range(len(graph.frontier)))
    assignment: list[int] = []
    for size in graph.input_shape:
        for index in remaining:
            if graph.frontier[index].size == size:
                assignment.append(index)
                remaining.remove(index)
                break
        else:  # pragma: no cover - is_complete guarantees a match
            raise InvalidOperatorError(f"no frontier dim for input size {size!r}")
    return tuple(assignment)


@dataclass(frozen=True)
class SynthesizedOperator:
    """A complete pGraph interpreted as a drop-in operator replacement."""

    graph: PGraph
    spec: OperatorSpec
    #: frontier index used for each input-shape position (a permutation).
    input_assignment: tuple[int, ...] = field(default=())

    @staticmethod
    def from_graph(graph: PGraph, spec: OperatorSpec) -> "SynthesizedOperator":
        assignment = match_frontier_to_input(graph)
        return SynthesizedOperator(graph=graph, spec=spec, input_assignment=assignment)

    # -- accounting --------------------------------------------------------

    def parameter_count(self, binding: Mapping[Variable, int] | None = None) -> int:
        binding = binding or (self.spec.bindings[0] if self.spec.bindings else {})
        return self.graph.parameter_count(binding)

    def macs(self, binding: Mapping[Variable, int] | None = None) -> int:
        binding = binding or (self.spec.bindings[0] if self.spec.bindings else {})
        return self.graph.macs(binding)

    def flops(self, binding: Mapping[Variable, int] | None = None) -> int:
        return 2 * self.macs(binding)

    def total_macs(self) -> int:
        """MACs summed over every concrete binding (layer) of the spec."""
        return sum(self.graph.macs(binding) for binding in self.spec.bindings) if self.spec.bindings else self.macs()

    def total_parameters(self) -> int:
        return (
            sum(self.graph.parameter_count(binding) for binding in self.spec.bindings)
            if self.spec.bindings
            else self.parameter_count()
        )

    # -- concrete shapes ---------------------------------------------------

    def concrete_input_shape(self, binding: Mapping[Variable, int]) -> tuple[int, ...]:
        return self.spec.input_shape.evaluate(binding)

    def concrete_output_shape(self, binding: Mapping[Variable, int]) -> tuple[int, ...]:
        return self.spec.output_shape.evaluate(binding)

    def weight_shapes(self, binding: Mapping[Variable, int]) -> list[tuple[int, ...]]:
        return [
            tuple(dim.size.evaluate(binding) for dim in weight.dims)
            for weight in self.graph.weights
        ]

    def validate(self) -> None:
        """Check that every concrete binding yields integral dimension sizes."""
        bindings = self.spec.bindings or ({},)
        for binding in bindings:
            for dim in itertools.chain(self.graph.frontier, self.graph.output_dims):
                try:
                    dim.size.evaluate(binding)
                except SizeError as exc:
                    raise InvalidOperatorError(str(exc)) from exc
            for weight in self.graph.weights:
                for dim in weight.dims:
                    try:
                        dim.size.evaluate(binding)
                    except SizeError as exc:
                        raise InvalidOperatorError(str(exc)) from exc

    def describe(self) -> str:
        header = f"SynthesizedOperator for {self.spec.name}"
        return header + "\n" + self.graph.describe()

    def __repr__(self) -> str:
        return (
            f"SynthesizedOperator({self.spec.name}, depth={self.graph.depth}, "
            f"weights={len(self.graph.weights)})"
        )
