"""A library of operators expressed as pGraphs.

This module reconstructs, from the paper's own primitives, the reference
operators of Table 2 and Figure 2 (matmul, average pooling, pixel shuffle,
2-D convolution) as well as the two case-study operators of Section 9.2
(Operator 1 from Figure 7 / Listing 2, and the Operator 2 variant).  They are
used by the tests (to validate primitive semantics against direct numpy
references), by the examples, and by the benchmark harness as Syno-discovered
substitutes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import Dim, PGraph
from repro.core.primitives import Expand, Merge, Reduce, Share, Shift, Split, Unfold
from repro.ir.shape import ShapeSpec
from repro.ir.size import Size
from repro.ir.variables import Variable, coefficient, primary


# Shared primary variables used by the vision operator slots.
N = primary("N")
C_IN = primary("C_in")
C_OUT = primary("C_out")
H = primary("H")
W = primary("W")
M = primary("M")
K = primary("K")
OUT_FEATURES = primary("F")

# Coefficient variables used by the synthesized operators.
K1 = coefficient("k_1", default=3)
GROUPS = coefficient("g", default=4)
SHRINK = coefficient("s", default=2)
POOL = coefficient("p", default=2)
BLOCK = coefficient("b", default=2)


def _find(graph: PGraph, name: str) -> Dim:
    for dim in graph.frontier:
        if dim.name == name:
            return dim
    raise KeyError(f"no frontier dim named {name}: {[d.name for d in graph.frontier]}")


def _last_produced(graph: PGraph) -> Dim:
    last = graph.last_application
    assert last is not None and last.produced, "last application produced nothing"
    return last.produced[-1]


# ---------------------------------------------------------------------------
# Reference operators (Table 2 / Figure 2)
# ---------------------------------------------------------------------------


def matmul_spec(bindings: tuple[Mapping[Variable, int], ...] = ()) -> OperatorSpec:
    """The matmul slot: ``[M, K] -> [M, F]`` (``F`` is the output features)."""
    return OperatorSpec(
        name="matmul",
        input_shape=ShapeSpec.of([M, K]),
        output_shape=ShapeSpec.of([M, OUT_FEATURES]),
        bindings=bindings,
    )


def build_matmul(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """``out(i, j) += input(i, k) * weight(k, j)`` (Table 2, first row)."""
    spec = spec or matmul_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_M", "i_F"])
    graph = Reduce(size=Size.of(K)).apply(graph, ())
    r_k = _last_produced(graph)
    graph = Share(new_weight=True).apply(graph, (r_k, _find(graph, "i_F")))
    return SynthesizedOperator.from_graph(graph, spec)


def conv2d_spec(bindings: tuple[Mapping[Variable, int], ...] = ()) -> OperatorSpec:
    """The 2-D convolution slot: ``[N, C_in, H, W] -> [N, C_out, H, W]``."""
    return OperatorSpec(
        name="conv2d",
        input_shape=ShapeSpec.of([N, C_IN, H, W]),
        output_shape=ShapeSpec.of([N, C_OUT, H, W]),
        bindings=bindings,
    )


def build_conv2d(spec: OperatorSpec | None = None, kernel: Variable = K1) -> SynthesizedOperator:
    """The standard (same-padded) 2-D convolution as a pGraph (Figure 2)."""
    spec = spec or conv2d_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_N", "i_Co", "i_H", "i_W"])
    graph = Reduce(size=Size.of(C_IN)).apply(graph, ())
    r_ci = _last_produced(graph)
    graph = Reduce(size=Size.of(kernel)).apply(graph, ())
    r_kh = _last_produced(graph)
    graph = Reduce(size=Size.of(kernel)).apply(graph, ())
    r_kw = _last_produced(graph)
    graph = Share(new_weight=True).apply(graph, (r_ci, _find(graph, "i_Co")))
    graph = Share(new_weight=False).apply(graph, (r_kh,))
    graph = Share(new_weight=False).apply(graph, (r_kw,))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), r_kh))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), r_kw))
    return SynthesizedOperator.from_graph(graph, spec)


def avgpool_spec(bindings: tuple[Mapping[Variable, int], ...] = ()) -> OperatorSpec:
    """1-D sum pooling with window/stride ``p``: ``[H] -> [H/p]``."""
    return OperatorSpec(
        name="avgpool1d",
        input_shape=ShapeSpec.of([H]),
        output_shape=ShapeSpec.of([Size.of(H) / POOL]),
        bindings=bindings,
    )


def build_avgpool(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """Sum pooling (Table 2, second row; the 1/p scale is a free constant)."""
    spec = spec or avgpool_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_H"])
    graph = Reduce(size=Size.of(POOL)).apply(graph, ())
    r_p = _last_produced(graph)
    graph = Split().apply(graph, (_find(graph, "i_H"), r_p))
    return SynthesizedOperator.from_graph(graph, spec)


def pixelshuffle_spec(bindings: tuple[Mapping[Variable, int], ...] = ()) -> OperatorSpec:
    """Pixel shuffle on one dimension: ``[H] -> [H]`` with block ``b``."""
    return OperatorSpec(
        name="pixelshuffle",
        input_shape=ShapeSpec.of([H]),
        output_shape=ShapeSpec.of([H]),
        bindings=bindings,
    )


def build_pixelshuffle(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """``out(i) = input((H/B) * (i % B) + i / B)`` (Table 2, third row)."""
    spec = spec or pixelshuffle_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_H"])
    graph = Merge(block=Size.of(BLOCK)).apply(graph, (_find(graph, "i_H"),))
    outer, inner = graph.last_application.produced
    graph = Split().apply(graph, (inner, outer))
    return SynthesizedOperator.from_graph(graph, spec)


# ---------------------------------------------------------------------------
# Case-study operators (Section 9.2)
# ---------------------------------------------------------------------------


def build_operator1(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """Operator 1 (Figure 7 / Listing 2): a two-stage grouped-convolution-like op.

    Semantics (matching Listing 2 after the materialized-reduction view)::

        out[n, d, h, w] = sum_{j2, e, gg, j1, c}
            w2[d, j2, e, gg, j1] * w1[e, gg, c, j1]
            * x[n, gg * (C_in/g) + c, h + j2 - k1/2, w + j1 - k1/2]

    The distinguishing pattern (italicized in the paper's Figure 7) is the
    window coordinate ``j1`` that is Shared by *both* weights and passed to
    the second stage instead of being reduced within the first stage.
    """
    spec = spec or conv2d_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_N", "i_Co", "i_H", "i_W"])
    cin_per_group = Size.of(C_IN) / GROUPS
    bottleneck = Size.of(C_OUT) / (Size.of(GROUPS) * Size.of(SHRINK))

    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    j1 = _last_produced(graph)
    graph = Reduce(size=cin_per_group).apply(graph, ())
    c_inner = _last_produced(graph)
    graph = Reduce(size=Size.of(GROUPS)).apply(graph, ())
    gg = _last_produced(graph)
    graph = Reduce(size=bottleneck).apply(graph, ())
    e = _last_produced(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    j2 = _last_produced(graph)

    # Stage-1 weight w1[e, gg, c, j1]  (the paper's [C_out//g//s, C_in, k_1]).
    graph = Share(new_weight=True).apply(graph, (e,))
    graph = Share(new_weight=False).apply(graph, (gg,))
    graph = Share(new_weight=False).apply(graph, (c_inner,))
    graph = Share(new_weight=False).apply(graph, (j1,))
    # Stage-2 weight w2[j2, C_out, e, gg, j1]  (the paper's [C_out, k1*k1*C_out//s]).
    graph = Share(new_weight=True).apply(graph, (j2, _find(graph, "i_Co")))
    graph = Share(new_weight=False).apply(graph, (e,))
    graph = Share(new_weight=False).apply(graph, (gg,))
    graph = Share(new_weight=False).apply(graph, (j1,))

    # The bottleneck coordinate lives only on the weights (low-rank pattern).
    graph = Expand().apply(graph, (e,))
    # Reassemble the input channel coordinate and the two unfolded windows.
    graph = Split().apply(graph, (gg, c_inner))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), j2))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), j1))
    return SynthesizedOperator.from_graph(graph, spec)


def build_operator2(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """Operator 2: two 1-D convolutions whose weights Share the channel coordinate.

    Semantics::

        out[n, co, h, w] = sum_{ci, j1, j2}
            w1[ci, co, j1] * w2[ci, j2]
            * x[n, ci, h + j1 - k/2, w + j2 - k/2]

    Parameter count is roughly ``1/k`` of a standard ``k x k`` convolution,
    reproducing the paper's "fewer than 1/4 of standard 2D convolution"
    property that makes it fit small edge-device caches.
    """
    spec = spec or conv2d_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_N", "i_Co", "i_H", "i_W"])
    graph = Reduce(size=Size.of(C_IN)).apply(graph, ())
    r_ci = _last_produced(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    j1 = _last_produced(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    j2 = _last_produced(graph)
    graph = Share(new_weight=True).apply(graph, (r_ci, _find(graph, "i_Co")))
    graph = Share(new_weight=False).apply(graph, (j1,))
    graph = Share(new_weight=True).apply(graph, (r_ci,))
    graph = Share(new_weight=False).apply(graph, (j2,))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), j1))
    graph = Unfold().apply(graph, (_find(graph, "i_W"), j2))
    return SynthesizedOperator.from_graph(graph, spec)


def build_shift_conv(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """A ShiftNet-like operator: Shift along W replaces one spatial Unfold.

    This reproduces the "common pattern" the paper reports where an ``Unfold``
    on a spatial dimension is replaced with a ``Shift``, mixing information
    along that dimension at zero FLOP cost.
    """
    spec = spec or conv2d_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_N", "i_Co", "i_H", "i_W"])
    graph = Reduce(size=Size.of(C_IN)).apply(graph, ())
    r_ci = _last_produced(graph)
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    j1 = _last_produced(graph)
    graph = Share(new_weight=True).apply(graph, (r_ci, _find(graph, "i_Co")))
    graph = Share(new_weight=False).apply(graph, (j1,))
    graph = Shift(amount=1).apply(graph, (_find(graph, "i_W"),))
    graph = Unfold().apply(graph, (_find(graph, "i_H"), j1))
    return SynthesizedOperator.from_graph(graph, spec)


def build_grouped_projection(spec: OperatorSpec | None = None) -> SynthesizedOperator:
    """A grouped dense projection (the GPT-2 QKV substitution of Section 9.3).

    The output features are partitioned into ``g`` groups and each group reads
    only its own slice of the input features, so the QKV matrices "learn from
    different features of input tokens" with ``1/g`` of the FLOPs/parameters.
    """
    spec = spec or matmul_spec()
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i_M", "i_F"])
    graph = Merge(block=Size.of(OUT_FEATURES) / GROUPS).apply(graph, (_find(graph, "i_F"),))
    g_dim, f_inner = graph.last_application.produced
    graph = Reduce(size=Size.of(K) / GROUPS).apply(graph, ())
    k_inner = _last_produced(graph)
    graph = Share(new_weight=True).apply(graph, (k_inner, f_inner))
    graph = Share(new_weight=False).apply(graph, (g_dim,))
    graph = Split().apply(graph, (g_dim, k_inner))
    return SynthesizedOperator.from_graph(graph, spec)


@dataclass(frozen=True)
class NamedOperator:
    """A named entry of the operator library (used by experiments)."""

    name: str
    build: object

    def __call__(self, spec: OperatorSpec | None = None) -> SynthesizedOperator:
        return self.build(spec)  # type: ignore[operator]


LIBRARY: dict[str, NamedOperator] = {
    "matmul": NamedOperator("matmul", build_matmul),
    "conv2d": NamedOperator("conv2d", build_conv2d),
    "avgpool1d": NamedOperator("avgpool1d", build_avgpool),
    "pixelshuffle": NamedOperator("pixelshuffle", build_pixelshuffle),
    "operator1": NamedOperator("operator1", build_operator1),
    "operator2": NamedOperator("operator2", build_operator2),
    "shift_conv": NamedOperator("shift_conv", build_shift_conv),
    "grouped_projection": NamedOperator("grouped_projection", build_grouped_projection),
}
