"""Guided bottom-up enumeration of operator candidates (Algorithm 1).

``enumerate_children`` lists every canonical primitive application available
from a partial pGraph; ``synthesize`` performs the depth-bounded guided DFS of
Algorithm 1, backtracking whenever the shape distance exceeds the remaining
primitive budget and collecting complete operators that satisfy the
user-provided budgets (FLOPs, parameters, primitive counts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.core.canonicalize import CanonicalizationEngine
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import Dim, PGraph
from repro.core.primitives import (
    Expand,
    Merge,
    Primitive,
    PrimitiveError,
    Reduce,
    Share,
    Shift,
    Split,
    Stride,
    Unfold,
)
from repro.core.shape_distance import shape_distance
from repro.ir.size import Size
from repro.ir.variables import Variable


@dataclass(frozen=True)
class Action:
    """A candidate primitive application, identified structurally.

    Actions are hashable so that MCTS can use them as tree-edge keys.
    """

    primitive: Primitive
    operand_uids: tuple[int, ...]

    def describe(self) -> str:
        return f"{self.primitive.describe()}@{self.operand_uids}"


@dataclass
class EnumerationOptions:
    """Budgets and knobs controlling the synthesis space."""

    #: maximum number of primitives per operator (d_max in Algorithm 1).
    max_depth: int = 8
    #: sizes allowed as Reduce domains (reduction loop extents).
    reduce_sizes: list[Size] = field(default_factory=list)
    #: sizes allowed as Merge block sizes.
    merge_blocks: list[Size] = field(default_factory=list)
    #: sizes allowed as Stride factors.
    strides: list[Size] = field(default_factory=list)
    #: occurrence limits for the low-quality primitives (Section 5.2).
    max_expands: int = 1
    max_strides: int = 1
    max_shifts: int = 2
    max_reductions: int = 4
    max_weights: int = 2
    max_weight_dims: int = 5
    #: hard MACs budget relative to the original operator (Section 7.2).
    max_macs: int | None = None
    #: hard parameter budget.
    max_params: int | None = None
    #: binding used to evaluate the budgets.
    budget_binding: Mapping[Variable, int] | None = None
    #: canonicalization engine (None disables canonicalization — used by the
    #: Table 3 ablation).
    canonicalizer: CanonicalizationEngine | None = field(default_factory=CanonicalizationEngine)
    #: use shape-distance guidance (disabled for the Section 9.4 ablation).
    use_shape_distance: bool = True

    def allows(
        self,
        graph: PGraph,
        primitive: Primitive,
        operands: Sequence[Dim],
        stats: "SynthesisStats | None" = None,
    ) -> bool:
        """Occurrence-limit and canonicalization checks for one application.

        With ``stats`` given, canonicalization rejections are attributed to
        the rule that fired (``stats.canonicalization_rejections``) — the
        pruning detail the library builder and ``repro library stats`` report.
        """
        if isinstance(primitive, Expand) and graph.count_primitive(Expand) >= self.max_expands:
            return False
        if isinstance(primitive, Stride) and graph.count_primitive(Stride) >= self.max_strides:
            return False
        if isinstance(primitive, Shift) and graph.count_primitive(Shift) >= self.max_shifts:
            return False
        if isinstance(primitive, Reduce) and graph.count_primitive(Reduce) >= self.max_reductions:
            return False
        if isinstance(primitive, Share):
            total_weight_dims = sum(len(w.dims) for w in graph.weights)
            if total_weight_dims + len(operands) > self.max_weight_dims:
                return False
            if primitive.new_weight and len(graph.weights) >= self.max_weights:
                return False
        if self.canonicalizer is not None:
            if stats is not None:
                rule = self.canonicalizer.rejecting_rule(graph, primitive, operands)
                if rule is not None:
                    stats.note_canonicalization_rejection(rule)
                    return False
            elif not self.canonicalizer.is_canonical(graph, primitive, operands):
                return False
        return True

    def within_budgets(self, graph: PGraph) -> bool:
        """Whether a (complete) graph satisfies the MACs / parameter budgets."""
        binding = self.budget_binding or {}
        if self.max_macs is not None and graph.macs(binding) > self.max_macs:
            return False
        if self.max_params is not None and graph.parameter_count(binding) > self.max_params:
            return False
        return True


def default_options_for(
    spec: OperatorSpec,
    coefficients: Sequence[Size | Variable | int] = (),
    max_depth: int = 8,
    macs_budget_ratio: float | None = None,
    reference_macs: int | None = None,
) -> EnumerationOptions:
    """Construct sensible enumeration options for an operator spec.

    ``coefficients`` are the small sizes made available to Reduce / Merge /
    Stride (the paper's coefficient variables); output-shape primary sizes are
    additionally offered as Reduce domains so that contractions over e.g.
    ``C_in`` are expressible.
    """
    coefficient_sizes = [Size.of(c) for c in coefficients]
    primary_sizes = [Size.of(s) for s in spec.input_shape]
    # Dedupe by structural representation while keeping Size objects.
    seen: dict[str, Size] = {}
    for size in coefficient_sizes + primary_sizes:
        seen.setdefault(repr(size), size)
    options = EnumerationOptions(
        max_depth=max_depth,
        reduce_sizes=list(seen.values()),
        merge_blocks=list(coefficient_sizes),
        strides=list(coefficient_sizes),
        budget_binding=dict(spec.bindings[0]) if spec.bindings else None,
    )
    if macs_budget_ratio is not None and reference_macs is not None:
        options.max_macs = int(reference_macs * macs_budget_ratio)
    return options


# ---------------------------------------------------------------------------
# Child enumeration
# ---------------------------------------------------------------------------


def _candidate_applications(
    graph: PGraph, options: EnumerationOptions
) -> Iterator[tuple[Primitive, tuple[Dim, ...]]]:
    frontier = graph.frontier

    # Contractions -----------------------------------------------------
    for size in options.reduce_sizes:
        yield Reduce(size=size), ()
    for shared in frontier:
        # Plain share (weight indexed by one coordinate).
        yield Share(new_weight=True), (shared,)
        yield Share(new_weight=False), (shared,)
        # Share + Match: move one other output dim onto the weight.
        for matched in frontier:
            if matched is shared or not matched.is_output:
                continue
            yield Share(new_weight=True), (shared, matched)
            yield Share(new_weight=False), (shared, matched)

    # 1-to-1 views -------------------------------------------------------
    for dim in frontier:
        for block in options.merge_blocks:
            if block.divides(dim.size) and not (dim.size / block).is_one:
                yield Merge(block=block), (dim,)
        yield Shift(amount=1), (dim,)
    for major in frontier:
        for minor in frontier:
            if major is not minor:
                yield Split(), (major, minor)

    # 1-to-many / many-to-1 views ----------------------------------------
    for dim in frontier:
        yield Expand(), (dim,)
        for stride in options.strides:
            if not stride.is_one:
                yield Stride(stride=stride), (dim,)
    for main in frontier:
        for window in frontier:
            if main is window:
                continue
            if window.size.primary_variables():
                continue
            yield Unfold(), (main, window)


def enumerate_children(
    graph: PGraph, options: EnumerationOptions, stats: "SynthesisStats | None" = None
) -> list[tuple[Action, PGraph]]:
    """All canonical one-primitive extensions of a partial pGraph.

    ``stats`` (optional) accumulates per-rule canonicalization rejections —
    see :meth:`EnumerationOptions.allows`.
    """
    children: list[tuple[Action, PGraph]] = []
    seen_signatures: set[str] = set()
    for primitive, operands in _candidate_applications(graph, options):
        if not options.allows(graph, primitive, operands, stats=stats):
            continue
        try:
            child = primitive.apply(graph, operands)
        except PrimitiveError:
            continue
        signature = child.signature()
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        action = Action(primitive=primitive, operand_uids=tuple(d.uid for d in operands))
        children.append((action, child))
    return children


# ---------------------------------------------------------------------------
# Guided DFS (Algorithm 1, SynthesizeSubstitutions)
# ---------------------------------------------------------------------------


@dataclass
class SynthesisStats:
    """Bookkeeping for a synthesis run (used by the ablation experiments).

    Beyond the aggregate counters, two pruning details are recorded so a
    starved search is diagnosable instead of just slow:
    :attr:`canonicalization_rejections` attributes every pruned application
    to the rule that fired, and :attr:`dead_ends_by_distance` counts interior
    nodes whose *every* child was discarded by the shape-distance guide —
    the condition that silently starves random rollouts on constrained specs.
    """

    nodes_visited: int = 0
    children_generated: int = 0
    pruned_by_distance: int = 0
    completed: int = 0
    rejected_by_budget: int = 0
    #: canonicalization-rule name -> how many applications it rejected.
    canonicalization_rejections: dict[str, int] = field(default_factory=dict)
    #: nodes where shape-distance pruning discarded every generated child.
    dead_ends_by_distance: int = 0

    def note_canonicalization_rejection(self, rule: str) -> None:
        self.canonicalization_rejections[rule] = (
            self.canonicalization_rejections.get(rule, 0) + 1
        )

    def merge(self, other: "SynthesisStats") -> None:
        """Fold another run's counters into this one (shard aggregation)."""
        self.nodes_visited += other.nodes_visited
        self.children_generated += other.children_generated
        self.pruned_by_distance += other.pruned_by_distance
        self.completed += other.completed
        self.rejected_by_budget += other.rejected_by_budget
        self.dead_ends_by_distance += other.dead_ends_by_distance
        for rule, count in other.canonicalization_rejections.items():
            self.canonicalization_rejections[rule] = (
                self.canonicalization_rejections.get(rule, 0) + count
            )

    def to_dict(self) -> dict:
        """JSON-ready form (library metadata, ``repro library stats``)."""
        return {
            "nodes_visited": self.nodes_visited,
            "children_generated": self.children_generated,
            "pruned_by_distance": self.pruned_by_distance,
            "completed": self.completed,
            "rejected_by_budget": self.rejected_by_budget,
            "canonicalization_rejections": dict(
                sorted(self.canonicalization_rejections.items())
            ),
            "dead_ends_by_distance": self.dead_ends_by_distance,
        }


def synthesize(
    spec: OperatorSpec,
    options: EnumerationOptions,
    max_results: int = 64,
    max_nodes: int = 20000,
    rng: random.Random | None = None,
    on_complete: Callable[[SynthesizedOperator], None] | None = None,
) -> tuple[list[SynthesizedOperator], SynthesisStats]:
    """Depth-bounded guided DFS collecting complete, budget-satisfying operators.

    The traversal order is randomized (when ``rng`` is provided) so repeated
    calls explore different corners of the space, mirroring the stochastic
    sampling the paper layers MCTS on top of.
    """
    stats = SynthesisStats()
    results: list[SynthesizedOperator] = []
    root = PGraph.root(spec.output_shape, spec.input_shape)

    def visit(graph: PGraph) -> None:
        if len(results) >= max_results or stats.nodes_visited >= max_nodes:
            return
        stats.nodes_visited += 1

        if graph.is_complete and graph.depth > 0:
            if options.within_budgets(graph):
                operator = SynthesizedOperator.from_graph(graph, spec)
                results.append(operator)
                stats.completed += 1
                if on_complete is not None:
                    on_complete(operator)
            else:
                stats.rejected_by_budget += 1
            return

        if graph.depth >= options.max_depth:
            return

        children = enumerate_children(graph, options, stats=stats)
        stats.children_generated += len(children)
        if rng is not None:
            rng.shuffle(children)
        remaining = options.max_depth - graph.depth - 1
        pruned_here = 0
        for _, child in children:
            if len(results) >= max_results or stats.nodes_visited >= max_nodes:
                return
            if options.use_shape_distance:
                distance = shape_distance(child.frontier_shape, child.input_shape)
                if distance > remaining:
                    stats.pruned_by_distance += 1
                    pruned_here += 1
                    continue
            visit(child)
        if children and pruned_here == len(children):
            stats.dead_ends_by_distance += 1

    visit(root)
    return results, stats
