"""repro — a reproduction of "Syno: Structured Synthesis for Neural Operators".

The package is organized as follows:

* :mod:`repro.runtime` — the scoped runtime API: ``RuntimeConfig`` (typed
  knobs with default/env/explicit provenance) and ``RuntimeContext`` (owns
  the evaluation caches, the artifact store and the root RNG);
* :mod:`repro.ir` — symbolic sizes, shapes and coordinate expressions;
* :mod:`repro.core` — primitives, pGraphs, canonicalization, shape distance,
  guided enumeration and MCTS (the paper's contribution);
* :mod:`repro.nn` — a numpy autograd / neural-network substrate standing in
  for PyTorch (models, optimizers, synthetic datasets, trainer);
* :mod:`repro.codegen` — the eager (PyTorch-like) and loop-nest (TVM-like)
  code generators for synthesized operators;
* :mod:`repro.compiler` — the simulated tensor compiler: hardware targets,
  schedules, analytical cost model, tuner and a template-based backend;
* :mod:`repro.search` — end-to-end search sessions (Algorithm 1) combining
  accuracy and latency evaluation;
* :mod:`repro.baselines` — NAS-PTE, αNAS-style, stacked-convolution and INT8
  quantization baselines;
* :mod:`repro.experiments` — one module per table/figure of the paper.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
