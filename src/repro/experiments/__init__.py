"""One module per table/figure of the paper's evaluation (Section 9).

Every module exposes a ``run(...)`` function returning plain dataclasses /
dictionaries; the pytest-benchmark harness under ``benchmarks/`` and the
example scripts call these functions and print the same rows/series the paper
reports.  See EXPERIMENTS.md for the paper-vs-measured record.
"""

from repro.experiments import (  # noqa: F401
    ablation_materialization,
    ablation_shape_distance,
    alphanas_comparison,
    common,
    figure5,
    figure6,
    figure8,
    figure9,
    figure10,
    table3,
)

__all__ = [
    "common",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "table3",
    "ablation_shape_distance",
    "ablation_materialization",
    "alphanas_comparison",
]
