"""One module per table/figure of the paper's evaluation (Section 9).

Every module exposes a ``run(...)`` function returning plain dataclasses /
dictionaries, plus a ``run_record(config)`` wrapper that routes the same run
through the shared runner (:mod:`repro.experiments.runner`) and returns a
persistable :class:`repro.results.ResultRecord`.  The pytest-benchmark
harness under ``benchmarks/``, the ``repro`` CLI and the example scripts all
invoke experiments through that runner, so results are produced identically
everywhere.  See ``docs/experiments.md`` for the figure/table → command map.
"""

from repro.experiments import (  # noqa: F401
    ablation_materialization,
    ablation_shape_distance,
    alphanas_comparison,
    common,
    figure5,
    figure6,
    figure8,
    figure9,
    figure10,
    runner,
    table3,
)

__all__ = [
    "common",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "figure10",
    "runner",
    "table3",
    "ablation_shape_distance",
    "ablation_materialization",
    "alphanas_comparison",
]
