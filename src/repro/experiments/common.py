"""Shared infrastructure for the experiment modules.

The paper's per-model search produces a small set of high-quality operators
(Operators 1 and 2 plus Shift-based variants are the published case studies).
The experiments use that candidate set — each candidate paired with the
coefficient values the search would bind — and select the best candidate per
model / target, which is what Algorithm 1's outer loop does with far more
compute.
"""

from __future__ import annotations

import contextlib
import functools
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.baselines.nas_pte import NAS_PTE_SEQUENCES
from repro.compiler.backends import CompilerBackend, InductorBackend, TVMBackend
from repro.compiler.targets import A100, MOBILE_CPU, MOBILE_GPU, HardwareTarget
from repro.core.library import GROUPS, K1, SHRINK, build_operator1, build_operator2, build_shift_conv
from repro.core.operator import SynthesizedOperator
from repro.ir.variables import Variable
from repro.nn.models.common import ConvSlot
from repro.runtime import RuntimeContext, current
from repro.search.cache import parallel_map, tuning_trials
from repro.search.evaluator import LatencyEvaluator
from repro.search.parallel import sharded_map, warn_processes_ignored


@dataclass(frozen=True)
class Candidate:
    """A named operator together with its coefficient binding."""

    name: str
    operator: SynthesizedOperator
    coefficients: Mapping[Variable, int]


def syno_candidates() -> list[Candidate]:
    """The Syno-discovered operators used across the latency experiments."""
    return [
        Candidate("operator1_g4s4", build_operator1(), {K1: 3, GROUPS: 4, SHRINK: 4}),
        Candidate("operator1_g4s8", build_operator1(), {K1: 3, GROUPS: 4, SHRINK: 8}),
        Candidate("operator1_g2s2", build_operator1(), {K1: 3, GROUPS: 2, SHRINK: 2}),
        Candidate("operator2", build_operator2(), {K1: 3, GROUPS: 2, SHRINK: 2}),
        Candidate("shift_conv", build_shift_conv(), {K1: 3, GROUPS: 2, SHRINK: 2}),
    ]


def nas_pte_candidates() -> list[Candidate]:
    """NAS-PTE's three published operator sequences (grouping factor 2)."""
    coefficients = {K1: 3, GROUPS: 2, SHRINK: 2}
    return [
        Candidate(name, builder(), coefficients) for name, builder in NAS_PTE_SEQUENCES.items()
    ]


#: (backend name, factory) pairs for the two compilers of the evaluation.
def both_backends() -> list[CompilerBackend]:
    return [TVMBackend(trials=tuning_trials(48)), InductorBackend()]


ALL_TARGETS: tuple[HardwareTarget, ...] = (MOBILE_CPU, MOBILE_GPU, A100)


@dataclass
class ModelEvaluation:
    """Baseline latency and per-candidate latency for one (model, backend, target)."""

    model: str
    backend: str
    target: str
    baseline_ms: float
    candidate_ms: dict[str, float] = field(default_factory=dict)

    def speedup(self, candidate: str) -> float:
        return self.baseline_ms / self.candidate_ms[candidate]

    def best_candidate(self) -> tuple[str, float]:
        name = min(self.candidate_ms, key=self.candidate_ms.get)
        return name, self.speedup(name)


def evaluate_model(
    model: str,
    slots: Sequence[ConvSlot],
    backend: CompilerBackend,
    target: HardwareTarget,
    candidates: Sequence[Candidate],
    batch: int = 1,
    processes: int | None = None,
    shards: int | None = None,
    runtime: RuntimeContext | None = None,
) -> ModelEvaluation:
    """Latency of the baseline model and of every candidate substitution.

    ``runtime`` is the :class:`~repro.runtime.RuntimeContext` evaluated
    under (``None`` resolves the ambient context); ``shards`` (default: the
    context's ``shards`` field) fans the per-candidate tuning out over shard
    worker processes and merges their compile-cache entries back into the
    context.  With sharding off, ``processes`` (the older ``eval_processes``
    fan-out) still opts into the cache-discarding parallel map; the serial
    default warms the context's compile cache directly.
    """
    context = runtime if runtime is not None else current()
    # The whole evaluation runs under the context so nested ambient lookups
    # (plan compilation, dtype resolution) land in the same CacheSet the
    # threaded `runtime` argument targets.
    scope = runtime.activate() if runtime is not None else contextlib.nullcontext()
    with scope:
        baseline_evaluator = LatencyEvaluator(
            slots=slots, backend=backend, target=target, batch=batch, runtime=runtime
        )
        evaluation = ModelEvaluation(
            model=model,
            backend=backend.name,
            target=target.name,
            baseline_ms=baseline_evaluator.baseline_latency() * 1e3,
        )
        worker = functools.partial(_candidate_latency_ms, tuple(slots), backend, target, batch)
        count = shards if shards is not None else max(context.config.shards, 1)
        if count > 1:
            warn_processes_ignored(count, processes, runtime=runtime)
            latencies = sharded_map(worker, candidates, shards=count, runtime=runtime)
        else:
            latencies = parallel_map(worker, candidates, processes=processes)
    for candidate, latency_ms in zip(candidates, latencies):
        evaluation.candidate_ms[candidate.name] = latency_ms
    return evaluation


def _candidate_latency_ms(
    slots: tuple[ConvSlot, ...],
    backend: CompilerBackend,
    target: HardwareTarget,
    batch: int,
    candidate: Candidate,
) -> float:
    """Module-level worker so the parallel map can pickle it under fork."""
    evaluator = LatencyEvaluator(
        slots=slots,
        backend=backend,
        target=target,
        batch=batch,
        coefficients=candidate.coefficients,
    )
    return evaluator.substituted_latency(candidate.operator) * 1e3
