"""Figure 5: end-to-end speedups of Syno-optimized models on CIFAR-100.

The paper reports, for five vision models on three platforms and two
compilers, the speedup of the best Syno-substituted model (within 1% accuracy
loss) over the original model.  ``run`` regenerates that table: for every
(model, target, compiler) it selects the fastest candidate operator and
reports its speedup over the standard-convolution baseline, plus the geomean
per (target, compiler) pair that the abstract quotes (2.06x / 1.72x / 1.47x
for TVM and 1.37x / 1.62x / 1.60x for TorchInductor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.experiments.common import (
    ALL_TARGETS,
    Candidate,
    ModelEvaluation,
    both_backends,
    evaluate_model,
    syno_candidates,
)
from repro.experiments.runner import make_run_record
from repro.nn.models.profiles import MODEL_PROFILES
from repro.search.cache import smoke_value

#: Under REPRO_SMOKE=1 only the models the headline claims need are costed
#: (the deep DenseNet/ResNeXt profiles dominate the full run's wall clock).
SMOKE_MODELS = ("resnet18", "resnet34", "efficientnet_v2_s")


@dataclass
class Figure5Row:
    """One bar group of Figure 5."""

    model: str
    target: str
    backend: str
    baseline_ms: float
    best_candidate: str
    best_ms: float
    speedup: float


@dataclass
class Figure5Result:
    rows: list[Figure5Row] = field(default_factory=list)

    def geomean_speedup(self, target: str, backend: str) -> float:
        speedups = [row.speedup for row in self.rows if row.target == target and row.backend == backend]
        return float(np.exp(np.mean(np.log(speedups)))) if speedups else float("nan")

    def to_table(self) -> str:
        lines = [f"{'model':22s} {'target':11s} {'backend':14s} {'base(ms)':>9s} {'best':>16s} {'speedup':>8s}"]
        for row in self.rows:
            lines.append(
                f"{row.model:22s} {row.target:11s} {row.backend:14s} {row.baseline_ms:9.2f} "
                f"{row.best_candidate:>16s} {row.speedup:7.2f}x"
            )
        for backend in sorted({row.backend for row in self.rows}):
            for target in sorted({row.target for row in self.rows}):
                lines.append(
                    f"geomean {target:11s} {backend:14s} {self.geomean_speedup(target, backend):.2f}x"
                )
        return "\n".join(lines)


def run(
    models: Sequence[str] | None = None,
    candidates: Sequence[Candidate] | None = None,
    targets=None,
    backends=None,
) -> Figure5Result:
    """Regenerate Figure 5's speedup bars."""
    models = (
        list(models)
        if models is not None
        else smoke_value(list(MODEL_PROFILES), list(SMOKE_MODELS))
    )
    candidates = list(candidates) if candidates is not None else syno_candidates()
    targets = list(targets) if targets is not None else list(ALL_TARGETS)
    backends = list(backends) if backends is not None else both_backends()

    result = Figure5Result()
    for model in models:
        slots = MODEL_PROFILES[model]
        for target in targets:
            for backend in backends:
                evaluation: ModelEvaluation = evaluate_model(model, slots, backend, target, candidates)
                best_name, best_speedup = evaluation.best_candidate()
                result.rows.append(
                    Figure5Row(
                        model=model,
                        target=target.name,
                        backend=backend.name,
                        baseline_ms=evaluation.baseline_ms,
                        best_candidate=best_name,
                        best_ms=evaluation.candidate_ms[best_name],
                        speedup=best_speedup,
                    )
                )
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure5")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
