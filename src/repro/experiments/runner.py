"""One entry point for every paper experiment: config in, ResultRecord out.

Both the ``repro`` CLI and the benchmark suite run experiments through
:func:`run_experiment`, so a figure regenerated from pytest and one
regenerated from the command line go through *identical* code and produce
directly comparable :class:`~repro.results.ResultRecord` artifacts.

The registry maps each experiment name (``figure5`` ... ``alphanas``) to the
module-level ``run()`` function it has always had, plus a small metrics
extractor that flattens the experiment's result dataclass into the record's
``metrics`` dict.  Configuration flows two ways:

* **Runtime overrides** — ``smoke``/``train_steps``/``processes``/``shards``
  become explicit field overrides on a :class:`repro.runtime.RuntimeContext`
  *derived* from the ambient one (same warm caches, new frozen config) and
  activated for the duration of the run.  The resolved config and its
  per-field provenance (default/env/explicit) are captured into the record's
  ``environment`` — replacing the old raw ``REPRO_*`` env capture.
* **Keyword options** — ``seed`` and any per-experiment ``options`` (e.g.
  ``models=["resnet18"]`` for figure5) are passed straight to the
  experiment's ``run()``, filtered to the parameters it actually accepts.

Interrupted (``KeyboardInterrupt``) and failed runs still produce a record —
with status ``interrupted``/``failed`` — before the exception propagates, so
a persisted store plus the persisted caches make any run resumable: the rerun
reloads the cache snapshot and skips every work item the first attempt
finished.
"""

from __future__ import annotations

import inspect
import logging
import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Mapping

from repro.results.records import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    ResultRecord,
    sanitize_metrics,
)
from repro.results.store import ArtifactStore
from repro.runtime import RuntimeConfig, RuntimeContext, current

log = logging.getLogger(__name__)

#: Sentinel for :func:`run_experiment`'s ``store`` argument: "write the record
#: through the run's *own* context store".  It resolves to ``runtime.store``
#: only after the run context is derived, so two concurrent runs under
#: contexts with distinct ``results_dir`` roots each write through to their
#: own store — a caller holding one shared ``ArtifactStore`` object cannot
#: accidentally interleave both runs' records into one root.
CONTEXT_STORE = "context-store"


@dataclass
class ExperimentConfig:
    """Run configuration shared by the CLI and the benchmark harness.

    ``None`` always means "inherit the environment" — an empty config runs
    the experiment exactly as the bare module-level ``run()`` would.
    """

    #: True → ``REPRO_SMOKE=1``, False → ``REPRO_SMOKE=0``, None → inherit.
    smoke: bool | None = None
    #: proxy-training step budget (``REPRO_TRAIN_STEPS``); None → inherit.
    train_steps: int | None = None
    #: worker processes for candidate evaluation (``REPRO_EVAL_PROCESSES``).
    processes: int | None = None
    #: worker shards for sharded search execution (``REPRO_SEARCH_SHARDS``).
    #: Results are bit-identical at any shard count, so the runner excludes
    #: this field from the *fingerprinted* config — a sharded run and its
    #: serial sibling must agree on the fingerprint.  ``repro report`` reads
    #: the shard count from the record's captured environment instead.
    shards: int | None = None
    #: random seed passed to experiments that accept one; None → their default.
    seed: int | None = None
    #: extra keyword arguments for the experiment's ``run()`` (e.g. models=[...]).
    options: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "smoke": self.smoke,
            "train_steps": self.train_steps,
            "processes": self.processes,
            "shards": self.shards,
            "seed": self.seed,
            "options": dict(self.options),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentConfig":
        return cls(
            smoke=payload.get("smoke"),
            train_steps=payload.get("train_steps"),
            processes=payload.get("processes"),
            shards=payload.get("shards"),
            seed=payload.get("seed"),
            options=dict(payload.get("options") or {}),
        )

    def runtime_overrides(self) -> dict:
        """The :class:`~repro.runtime.RuntimeConfig` fields this config pins.

        The runner applies these with ``RuntimeContext.derive`` — an explicit,
        frozen config for the duration of the run, sharing the ambient
        context's warm caches.
        """
        overrides: dict = {}
        if self.smoke is not None:
            overrides["smoke"] = self.smoke
        if self.train_steps is not None:
            overrides["train_steps"] = self.train_steps
        if self.processes is not None:
            overrides["eval_processes"] = self.processes
        if self.shards is not None:
            overrides["shards"] = self.shards
        if self.seed is not None:
            overrides["seed"] = self.seed
        return overrides

    def env_overrides(self) -> dict[str, str]:
        """Legacy ``REPRO_*`` form of :meth:`runtime_overrides`.

        Kept for external callers that still pin the environment (the
        supported compatibility edge); the runner itself now derives an
        explicit runtime context instead.
        """
        overrides: dict[str, str] = {}
        if self.smoke is not None:
            overrides["REPRO_SMOKE"] = "1" if self.smoke else "0"
        if self.train_steps is not None:
            overrides["REPRO_TRAIN_STEPS"] = str(self.train_steps)
        if self.processes is not None:
            overrides["REPRO_EVAL_PROCESSES"] = str(self.processes)
        if self.shards is not None:
            overrides["REPRO_SEARCH_SHARDS"] = str(self.shards)
        return overrides


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry: how to run one experiment and read out its metrics."""

    name: str
    runner: Callable[..., Any]
    metrics: Callable[[Any], dict]
    description: str


@dataclass
class RunOutcome:
    """What :func:`run_experiment` returns: the record plus the live result.

    ``record`` is the durable artifact; ``result`` is the experiment's
    original result dataclass (``Figure5Result``, ``Table3Result``, ...) for
    callers — like the benchmark assertions — that need the full object.
    """

    record: ResultRecord
    result: Any


# ---------------------------------------------------------------------------
# Metrics extractors (result dataclass -> flat dict)
# ---------------------------------------------------------------------------


def _figure5_metrics(result) -> dict:
    metrics: dict[str, float] = {"rows": len(result.rows)}
    for backend in sorted({row.backend for row in result.rows}):
        for target in sorted({row.target for row in result.rows}):
            metrics[f"geomean_speedup_{backend}_{target}"] = result.geomean_speedup(target, backend)
    return metrics


def _figure6_metrics(result) -> dict:
    metrics: dict[str, float] = {"points": len(result.points)}
    models = sorted({point.model for point in result.points})
    for model in models:
        points = [p for p in result.points if p.model == model]
        baseline = next((p for p in points if p.candidate == "baseline"), None)
        best = min(
            (p for p in points if p.candidate != "baseline"),
            key=lambda p: p.latency_ms,
            default=None,
        )
        if baseline is not None:
            metrics[f"{model}_baseline_accuracy"] = baseline.accuracy
            metrics[f"{model}_baseline_latency_ms"] = baseline.latency_ms
        if best is not None:
            metrics[f"{model}_best_latency_ms"] = best.latency_ms
        if baseline is not None and best is not None:
            metrics[f"{model}_best_speedup"] = baseline.latency_ms / max(best.latency_ms, 1e-12)
    return metrics


def _figure8_metrics(result) -> dict:
    metrics: dict[str, float] = {}
    for point in result.points:
        metrics[f"{point.variant}_accuracy"] = point.accuracy
        metrics[f"{point.variant}_latency_ms"] = point.latency_ms
    return metrics


def _figure9_metrics(result) -> dict:
    flops_low, flops_high = result.flops_reduction_range()
    params_low, params_high = result.parameter_reduction_range()
    return {
        "layers_compared": len(result.comparisons),
        "geomean_vs_naspte_mobile_cpu_tvm": result.syno_vs_naspte_geomean("mobile_cpu", "tvm"),
        "geomean_vs_naspte_a100_torchinductor": result.syno_vs_naspte_geomean(
            "a100", "torchinductor"
        ),
        "flops_reduction_min": flops_low,
        "flops_reduction_max": flops_high,
        "parameter_reduction_min": params_low,
        "parameter_reduction_max": params_high,
    }


def _figure10_metrics(result) -> dict:
    return {
        "baseline_perplexity": result.baseline_perplexity,
        "syno_perplexity": result.syno_perplexity,
        "training_speedup": result.training_speedup,
        "train_steps_recorded": len(result.baseline_losses),
    }


def _table3_metrics(result) -> dict:
    metrics = {
        "samples_total": result.samples_total,
        "samples_canonical": result.samples_canonical,
        "redundancy_factor": result.redundancy_factor,
    }
    for size in sorted(result.per_size):
        metrics[f"canonical_rate_size_{size}"] = result.canonical_rate(size)
    return metrics


def _materialization_metrics(result) -> dict:
    metrics: dict[str, float] = {}
    for row in result.rows:
        metrics[f"{row.operator}_gain"] = row.gain
    return metrics


def _shape_distance_metrics(result) -> dict:
    return {
        "trials": result.trials,
        "guided_valid": result.guided_valid,
        "guided_distinct": result.guided_distinct,
        "unguided_valid": result.unguided_valid,
        "unguided_distinct": result.unguided_distinct,
        "yield_ratio": result.yield_ratio,
    }


def _search_metrics(result) -> dict:
    metrics: dict[str, float] = {
        "iterations": result.iterations,
        "max_depth": result.max_depth,
        "train_steps": result.train_steps,
        "baseline_reward": result.baseline_reward,
        "baseline_perplexity": result.baseline_perplexity,
        "evaluations": result.evaluations,
        "qualified": len(result.candidates),
    }
    best = result.best()
    if best is not None:
        metrics["best_reward"] = best.reward
        metrics["best_perplexity"] = best.perplexity
        metrics["best_macs"] = best.macs
        metrics["best_speedup"] = best.speedup
    return metrics


def _alphanas_metrics(result) -> dict:
    metrics: dict[str, float] = {}
    for row in result.rows:
        metrics[f"{row.model}_alphanas_flops_reduction"] = row.alphanas_flops_reduction
        metrics[f"{row.model}_syno_flops_reduction"] = row.syno_flops_reduction
        metrics[f"{row.model}_syno_inference_speedup"] = row.syno_inference_speedup
    return metrics


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _registry() -> dict[str, ExperimentSpec]:
    # Imported lazily so ``repro.experiments.runner`` stays cheap to import
    # (the CLI needs the registry names before any experiment code runs).
    from repro.experiments import (
        ablation_materialization,
        ablation_shape_distance,
        alphanas_comparison,
        figure5,
        figure6,
        figure8,
        figure9,
        figure10,
        search,
        table3,
    )

    specs = [
        ExperimentSpec(
            "figure5", figure5.run, _figure5_metrics,
            "End-to-end speedups of Syno-optimized models (5 models x 3 targets x 2 compilers)",
        ),
        ExperimentSpec(
            "figure6", figure6.run, _figure6_metrics,
            "Accuracy-vs-latency Pareto curves (baseline vs Syno candidates)",
        ),
        ExperimentSpec(
            "figure8", figure8.run, _figure8_metrics,
            "Case study: Operator 1 vs stacked convolution vs INT8 quantization",
        ),
        ExperimentSpec(
            "figure9", figure9.run, _figure9_metrics,
            "Layer-wise comparison against NAS-PTE on ResNet-34",
        ),
        ExperimentSpec(
            "figure10", figure10.run, _figure10_metrics,
            "GPT-2 perplexity and training speedup with grouped QKV projections",
        ),
        ExperimentSpec(
            "table3", table3.run, _table3_metrics,
            "Canonicalization ablation: canonical rates by pGraph size",
        ),
        ExperimentSpec(
            "ablation-materialization", ablation_materialization.run, _materialization_metrics,
            "Materialized-reduction ablation: naive vs staged lowering MACs",
        ),
        ExperimentSpec(
            "ablation-shape-distance", ablation_shape_distance.run, _shape_distance_metrics,
            "Shape-distance ablation: guided vs unguided random synthesis yield",
        ),
        ExperimentSpec(
            "alphanas", alphanas_comparison.run, _alphanas_metrics,
            "Comparison with aNAS: FLOPs reduction and inference speedup",
        ),
        ExperimentSpec(
            "search", search.run, _search_metrics,
            "End-to-end MCTS search over the GPT-2 QKV projection slot (the serve workload)",
        ),
    ]
    return {spec.name: spec for spec in specs}


def experiment_names() -> list[str]:
    """Every runnable experiment name, in registry order."""
    return list(_registry())


def experiment_descriptions() -> dict[str, str]:
    """name → one-line description, for ``repro list`` and ``--help``."""
    return {name: spec.description for name, spec in _registry().items()}


def get_experiment(name: str) -> ExperimentSpec:
    registry = _registry()
    try:
        return registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise KeyError(f"unknown experiment {name!r}; expected one of: {known}") from None


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------


def runtime_environment(config: RuntimeConfig) -> dict:
    """What a record's ``environment`` field holds: resolved config + provenance.

    ``environment["runtime"]`` maps every config field to its resolved value
    and ``environment["provenance"]`` to where that value came from
    (``default`` / ``env`` / ``explicit``) — replacing the raw ``REPRO_*``
    capture of earlier record versions.
    """
    return {"runtime": config.describe(), "provenance": config.provenance_map()}


@contextmanager
def applied_env(overrides: Mapping[str, str]):
    """Temporarily pin environment variables, restoring the old values after.

    This is the compatibility edge for callers that still steer through
    ``REPRO_*`` variables (the ambient default context re-reads them); new
    code should derive and activate a :class:`~repro.runtime.RuntimeContext`
    instead.
    """
    saved = {name: os.environ.get(name) for name in overrides}
    os.environ.update(overrides)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _accepted_kwargs(fn: Callable[..., Any], kwargs: dict) -> dict:
    """The subset of ``kwargs`` that ``fn`` can actually receive."""
    parameters = inspect.signature(fn).parameters
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()):
        return dict(kwargs)
    return {name: value for name, value in kwargs.items() if name in parameters}


def _new_run_id(experiment: str) -> str:
    stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S")
    return f"{experiment}-{stamp}-{uuid.uuid4().hex[:6]}"


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-cache hit/miss activity between two ``cache_stats()`` snapshots."""
    delta: dict[str, dict[str, int]] = {}
    for name, stats in after.items():
        prior = before.get(name)
        delta[name] = {
            "hits": stats.hits - (prior.hits if prior else 0),
            "misses": stats.misses - (prior.misses if prior else 0),
        }
    return delta


def run_experiment(
    name: str,
    config: ExperimentConfig | None = None,
    store: "ArtifactStore | str | None" = None,
) -> RunOutcome:
    """Run one registered experiment and return its record plus live result.

    When ``store`` is given the record is saved there — including for
    interrupted and failed runs, whose partial record (status, error, cache
    activity) is written *before* the exception propagates.  Passing the
    :data:`CONTEXT_STORE` sentinel resolves to the run context's own store
    (``runtime.store``) after deriving, so concurrent runs into distinct
    ``results_dir`` roots write through to their own stores.  Cache snapshot
    persistence is the caller's concern (the CLI saves/loads around this
    call) so that pytest-driven runs stay free of disk side effects.
    """
    spec = get_experiment(name)
    config = config or ExperimentConfig()

    requested = dict(config.options)
    if config.seed is not None:
        requested["seed"] = config.seed
    kwargs = _accepted_kwargs(spec.runner, requested)
    dropped = sorted(set(requested) - set(kwargs))
    if dropped:
        log.warning(
            "%s.run() does not accept %s — ignored (check --option spelling)",
            name,
            ", ".join(dropped),
        )
    # Record (and fingerprint) only what was actually applied: a dropped
    # option or an inapplicable --seed must not make two identical runs
    # compare as different.
    applied_config = config.to_dict()
    if "seed" in dropped:
        applied_config["seed"] = None
    # The shard count never changes results (that's the sharded executor's
    # guarantee), so it must not change the fingerprint either — `repro run
    # --shards 4` and the serial run produce the same record identity.  The
    # count itself is still recorded: REPRO_SEARCH_SHARDS lands in the
    # record's environment, which is where `repro report` reads it from.
    applied_config["shards"] = None
    applied_config["options"] = {
        key: value for key, value in applied_config["options"].items() if key not in dropped
    }

    # Derive the run's runtime context from the ambient one: an explicit,
    # frozen config (field overrides tagged "explicit") over the *same* warm
    # caches — cache keys already encode every knob that affects a cached
    # value, so sharing is safe and keeps repeated runs cheap.
    runtime = current().derive(**config.runtime_overrides())
    if isinstance(store, str):
        if store != CONTEXT_STORE:
            raise ValueError(
                f"store must be an ArtifactStore, None, or CONTEXT_STORE; got {store!r}"
            )
        store = runtime.store

    record = ResultRecord(
        run_id=_new_run_id(name),
        experiment=name,
        status=STATUS_FAILED,
        config=applied_config,
        environment=runtime_environment(runtime.config),
        # Microsecond resolution: the store orders runs by started_at, and
        # back-to-back runs of a fast experiment can land in the same second.
        started_at=datetime.now(timezone.utc).isoformat(timespec="microseconds"),
    )
    stats_before = runtime.caches.stats()
    start = time.perf_counter()
    try:
        # adopt=False: the runner activates on behalf of its caller, who may
        # be a pure env-var user — this must not arm the env deprecation.
        with runtime.activate(adopt=False):
            result = spec.runner(**kwargs)
    except BaseException as exc:
        interrupted = isinstance(exc, KeyboardInterrupt)
        record.status = STATUS_INTERRUPTED if interrupted else STATUS_FAILED
        record.error = f"{type(exc).__name__}: {exc}"
        _finalize(record, runtime, stats_before, start)
        if store is not None:
            store.save(record)
        raise
    record.status = STATUS_COMPLETED
    record.metrics = sanitize_metrics(spec.metrics(result))
    record.table = result.to_table() if hasattr(result, "to_table") else ""
    _finalize(record, runtime, stats_before, start)
    if store is not None:
        store.save(record)
    return RunOutcome(record=record, result=result)


def _finalize(
    record: ResultRecord, runtime: RuntimeContext, stats_before: dict, start: float
) -> None:
    record.finished_at = datetime.now(timezone.utc).isoformat(timespec="microseconds")
    record.duration_seconds = round(time.perf_counter() - start, 3)
    record.cache_stats = _stats_delta(stats_before, runtime.caches.stats())
    # Supervised-executor diagnostics: every worker death/timeout the run
    # survived, as structured data.  Lives in `environment` (not fingerprinted
    # — a degraded-but-recovered run is result-identical to a clean one) and
    # feeds the `repro run` summary and `repro chaos`'s fired-plan assertion.
    failures = runtime.drain_shard_failures()
    if failures:
        record.environment["shard_failures"] = [f.to_dict() for f in failures]


def make_run_record(name: str):
    """Build the module-level ``run_record`` function for one experiment.

    Every experiment module exposes ``run_record = make_run_record("<name>")``
    — the structured counterpart of its ``run()``: same execution through
    :func:`run_experiment`, returning the :class:`ResultRecord` instead of
    the result dataclass.
    """

    def run_record(
        config: ExperimentConfig | None = None, store: ArtifactStore | None = None
    ) -> ResultRecord:
        return run_experiment(name, config, store=store).record

    run_record.__doc__ = (
        f"Run ``{name}`` through the shared runner and return its "
        "``ResultRecord``.\n\n"
        "``config`` is an :class:`~repro.experiments.runner.ExperimentConfig` "
        "(None for environment defaults); ``store`` an optional "
        ":class:`~repro.results.ArtifactStore` to save the record into."
    )
    return run_record
