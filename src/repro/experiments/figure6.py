"""Figure 6: accuracy-vs-latency Pareto curves on ImageNet.

For every model the paper plots the baseline (hollow point) and the Syno
candidates' (accuracy, inference time) points, per target and compiler.
Accuracy here comes from training the tiny backbone instances on the
synthetic ImageNet-proxy task (more classes / samples than the CIFAR-proxy
used during search); latency comes from the ImageNet-scale layer profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.compiler.backends import TVMBackend
from repro.compiler.targets import A100, HardwareTarget
from repro.experiments.common import Candidate, syno_candidates
from repro.experiments.runner import make_run_record
from repro.nn.data import SyntheticImageDataset
from repro.nn.models import MODEL_BUILDERS
from repro.nn.models.common import default_conv_factory
from repro.nn.models.profiles import MODEL_PROFILES
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.cache import (
    cached_baseline,
    cached_reward,
    compute_dtype_name,
    default_train_steps,
    tuning_trials,
)
from repro.search.evaluator import LatencyEvaluator
from repro.search.extraction import DEFAULT_COEFFICIENT_VALUES
from repro.search.substitution import synthesized_conv_factory


def _train_steps(default: int = 40) -> int:
    return default_train_steps(full=default)


@dataclass
class ParetoPoint:
    model: str
    candidate: str          #: "baseline" or the candidate operator's name
    accuracy: float
    latency_ms: float


@dataclass
class Figure6Result:
    points: list[ParetoPoint] = field(default_factory=list)

    def pareto_front(self, model: str) -> list[ParetoPoint]:
        """Points not dominated in (higher accuracy, lower latency)."""
        candidates = [p for p in self.points if p.model == model]
        front = []
        for point in candidates:
            dominated = any(
                other.accuracy >= point.accuracy and other.latency_ms < point.latency_ms
                for other in candidates
                if other is not point
            )
            if not dominated:
                front.append(point)
        return sorted(front, key=lambda p: p.latency_ms)

    def to_table(self) -> str:
        lines = [f"{'model':22s} {'candidate':18s} {'accuracy':>9s} {'latency(ms)':>12s}"]
        for point in self.points:
            lines.append(
                f"{point.model:22s} {point.candidate:18s} {point.accuracy:9.3f} {point.latency_ms:12.3f}"
            )
        return "\n".join(lines)


def run(
    models: Sequence[str] | None = None,
    candidates: Sequence[Candidate] | None = None,
    target: HardwareTarget = A100,
    train_steps: int | None = None,
    seed: int = 0,
) -> Figure6Result:
    """Regenerate the Pareto points (one target/backend by default for speed)."""
    models = list(models) if models is not None else ["resnet18", "resnet34"]
    candidates = list(candidates) if candidates is not None else syno_candidates()[:2] + syno_candidates()[3:4]
    steps = train_steps if train_steps is not None else _train_steps()
    backend = TVMBackend(trials=tuning_trials(48))

    dataset = SyntheticImageDataset(num_classes=10, num_samples=256, image_size=8, seed=seed)
    train_set, val_set = dataset.split()
    result = Figure6Result()

    def train_accuracy(builder, conv_factory) -> float:
        config = TrainingConfig(max_steps=steps, eval_every=max(steps // 2, 1))
        model = builder(conv_factory=conv_factory)
        return Trainer(model, config).fit_classifier(train_set, val_set).best_accuracy

    for model in models:
        builder = MODEL_BUILDERS[model]
        slots = MODEL_PROFILES[model]
        latency_eval = LatencyEvaluator(slots=slots, backend=backend, target=target, batch=1)

        # Proxy accuracies are memoized process-wide: the context captures the
        # backbone and training budget, the key the candidate's pGraph
        # signature (candidates sharing an operator train once, and repeated
        # runs at the same budget train nothing).
        context = ("figure6", model, steps, seed, compute_dtype_name())
        baseline_acc = cached_baseline(
            (context, "baseline"), lambda: train_accuracy(builder, default_conv_factory)
        )
        result.points.append(
            ParetoPoint(model, "baseline", baseline_acc, latency_eval.baseline_latency() * 1e3)
        )

        for candidate in candidates:
            factory = synthesized_conv_factory(
                candidate.operator, coefficients=DEFAULT_COEFFICIENT_VALUES, seed=seed
            )
            accuracy = cached_reward(
                context,
                candidate.operator.graph.signature(),
                lambda: train_accuracy(builder, factory),
            )
            evaluator = LatencyEvaluator(
                slots=slots, backend=backend, target=target, batch=1,
                coefficients=candidate.coefficients,
            )
            latency_ms = evaluator.substituted_latency(candidate.operator) * 1e3
            result.points.append(ParetoPoint(model, candidate.name, accuracy, latency_ms))
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure6")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
