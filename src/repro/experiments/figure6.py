"""Figure 6: accuracy-vs-latency Pareto curves on ImageNet.

For every model the paper plots the baseline (hollow point) and the Syno
candidates' (accuracy, inference time) points, per target and compiler.
Accuracy here comes from training the tiny backbone instances on the
synthetic ImageNet-proxy task (more classes / samples than the CIFAR-proxy
used during search); latency comes from the ImageNet-scale layer profiles.

The proxy trainings — one per (model, candidate-or-baseline) pair — are
independent work items executed through
:func:`repro.search.parallel.sharded_map` under ``REPRO_SEARCH_SHARDS``;
each item reseeds the parameter-initialization RNG, so accuracies are pure
functions of the pair and a sharded run matches a serial run exactly.
Latency tuning stays in the parent process (it dedupes through the compile
cache).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Sequence

from repro.compiler.backends import TVMBackend
from repro.compiler.targets import A100, HardwareTarget
from repro.experiments.common import Candidate, syno_candidates
from repro.experiments.runner import make_run_record
from repro.nn.data import SyntheticImageDataset
from repro.nn.layers import seed_all
from repro.nn.models import MODEL_BUILDERS
from repro.nn.models.common import default_conv_factory
from repro.nn.models.profiles import MODEL_PROFILES
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.cache import (
    cached_baseline,
    cached_reward,
    compute_dtype_name,
    default_train_steps,
    tuning_trials,
)
from repro.search.evaluator import LatencyEvaluator
from repro.search.extraction import DEFAULT_COEFFICIENT_VALUES
from repro.search.parallel import sharded_map
from repro.search.substitution import synthesized_conv_factory


def _train_steps(default: int = 40) -> int:
    return default_train_steps(full=default)


@dataclass
class ParetoPoint:
    model: str
    candidate: str          #: "baseline" or the candidate operator's name
    accuracy: float
    latency_ms: float


@dataclass
class Figure6Result:
    points: list[ParetoPoint] = field(default_factory=list)

    def pareto_front(self, model: str) -> list[ParetoPoint]:
        """Points not dominated in (higher accuracy, lower latency)."""
        candidates = [p for p in self.points if p.model == model]
        front = []
        for point in candidates:
            dominated = any(
                other.accuracy >= point.accuracy and other.latency_ms < point.latency_ms
                for other in candidates
                if other is not point
            )
            if not dominated:
                front.append(point)
        return sorted(front, key=lambda p: p.latency_ms)

    def to_table(self) -> str:
        lines = [f"{'model':22s} {'candidate':18s} {'accuracy':>9s} {'latency(ms)':>12s}"]
        for point in self.points:
            lines.append(
                f"{point.model:22s} {point.candidate:18s} {point.accuracy:9.3f} {point.latency_ms:12.3f}"
            )
        return "\n".join(lines)


def _train_accuracy_task(
    steps: int, seed: int, task: tuple[str, Candidate | None]
) -> float:
    """Proxy-training accuracy of one (model, candidate-or-baseline) pair.

    Runs inside a shard worker.  Accuracies are memoized process-wide: the
    context captures the backbone and training budget, the key the
    candidate's pGraph signature (candidates sharing an operator train once,
    and repeated runs at the same budget train nothing); worker-side entries
    merge back into the parent.
    """
    model, candidate = task
    context = ("figure6", model, steps, seed, compute_dtype_name())

    def train() -> float:
        # Reseed so the accuracy is a pure function of this task — not of
        # which trainings happened to run earlier, or in which process.
        seed_all(seed)
        dataset = SyntheticImageDataset(num_classes=10, num_samples=256, image_size=8, seed=seed)
        train_set, val_set = dataset.split()
        config = TrainingConfig(max_steps=steps, eval_every=max(steps // 2, 1))
        factory = (
            default_conv_factory
            if candidate is None
            else synthesized_conv_factory(
                candidate.operator, coefficients=DEFAULT_COEFFICIENT_VALUES, seed=seed
            )
        )
        instance = MODEL_BUILDERS[model](conv_factory=factory)
        return Trainer(instance, config).fit_classifier(train_set, val_set).best_accuracy

    if candidate is None:
        return cached_baseline((context, "baseline"), train)
    return cached_reward(context, candidate.operator.graph.signature(), train)


def run(
    models: Sequence[str] | None = None,
    candidates: Sequence[Candidate] | None = None,
    target: HardwareTarget = A100,
    train_steps: int | None = None,
    seed: int = 0,
    shards: int | None = None,
) -> Figure6Result:
    """Regenerate the Pareto points (one target/backend by default for speed).

    ``shards=None`` inherits the ``REPRO_SEARCH_SHARDS`` knob; the point set
    is identical at any shard count.
    """
    models = list(models) if models is not None else ["resnet18", "resnet34"]
    candidates = list(candidates) if candidates is not None else syno_candidates()[:2] + syno_candidates()[3:4]
    steps = train_steps if train_steps is not None else _train_steps()
    backend = TVMBackend(trials=tuning_trials(48))

    # One task per distinct reward-cache key: candidates wrapping the same
    # operator (e.g. operator1 at two coefficient settings) train once even
    # when sharded — separate shards cannot see each other's in-flight work,
    # so the dedup must happen before partitioning, not at cache-merge time.
    tasks: dict[tuple[str, str], tuple[str, Candidate | None]] = {}
    for model in models:
        for candidate in [None, *candidates]:
            key = (
                model,
                candidate.operator.graph.signature() if candidate else "baseline",
            )
            tasks.setdefault(key, (model, candidate))
    worker = functools.partial(_train_accuracy_task, steps, seed)
    by_signature = dict(zip(tasks, sharded_map(worker, list(tasks.values()), shards=shards)))

    result = Figure6Result()
    for model in models:
        slots = MODEL_PROFILES[model]
        latency_eval = LatencyEvaluator(slots=slots, backend=backend, target=target, batch=1)
        result.points.append(
            ParetoPoint(
                model,
                "baseline",
                by_signature[(model, "baseline")],
                latency_eval.baseline_latency() * 1e3,
            )
        )
        for candidate in candidates:
            evaluator = LatencyEvaluator(
                slots=slots, backend=backend, target=target, batch=1,
                coefficients=candidate.coefficients,
            )
            latency_ms = evaluator.substituted_latency(candidate.operator) * 1e3
            accuracy = by_signature[(model, candidate.operator.graph.signature())]
            result.points.append(ParetoPoint(model, candidate.name, accuracy, latency_ms))
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure6")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
