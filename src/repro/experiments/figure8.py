"""Figure 8: Operator 1 vs. stacked convolution vs. INT8 quantization.

The case study compares four ResNet-18 variants on accuracy and TVM-tuned
latency: the original model, the INT8-quantized model, the stacked grouped
convolution (same FLOPs as Operator 1 but expressible by NAS), and Operator 1
itself.  The paper's findings to reproduce: the stacked convolution loses
about twice as much accuracy as Operator 1 at similar latency, and Operator 1
is at least competitive with INT8 quantization on both axes.

The three heavy work items (original+INT8 share one trained model, stacked,
Operator 1) are independent, so they run through
:func:`repro.search.parallel.sharded_map` under the ``REPRO_SEARCH_SHARDS``
knob.  Each item reseeds the substrate's parameter-initialization RNG before
building its model, which makes every point a pure function of
``(variant, steps, seed, dtype)`` — a sharded run's table is bit-identical
to a serial run's.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.baselines.quantization import quantize_model, quantized_latency
from repro.baselines.stacked_conv import StackedConvolution, stacked_conv_program
from repro.compiler.backends import TVMBackend
from repro.compiler.targets import MOBILE_CPU, HardwareTarget
from repro.core.library import GROUPS, K1, SHRINK, build_operator1
from repro.experiments.runner import make_run_record
from repro.nn.data import SyntheticImageDataset
from repro.nn.layers import seed_all
from repro.nn.models.common import ConvSlot, default_conv_factory
from repro.nn.models.profiles import RESNET18_PROFILE
from repro.nn.models.resnet import resnet18
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.cache import (
    cached_baseline,
    cached_reward,
    compute_dtype_name,
    default_train_steps,
    tuning_trials,
)
from repro.search.evaluator import LatencyEvaluator
from repro.search.extraction import DEFAULT_COEFFICIENT_VALUES, slot_is_substitutable
from repro.search.parallel import sharded_map
from repro.search.substitution import synthesized_conv_factory


@dataclass
class CaseStudyPoint:
    variant: str
    accuracy: float
    latency_ms: float


@dataclass
class Figure8Result:
    target: str
    points: list[CaseStudyPoint] = field(default_factory=list)

    def point(self, variant: str) -> CaseStudyPoint:
        for point in self.points:
            if point.variant == variant:
                return point
        raise KeyError(variant)

    def to_table(self) -> str:
        lines = [f"{'variant':22s} {'accuracy':>9s} {'latency(ms)':>12s}   (target: {self.target})"]
        for point in self.points:
            lines.append(f"{point.variant:22s} {point.accuracy:9.3f} {point.latency_ms:12.3f}")
        return "\n".join(lines)


def _stacked_conv_factory(slot_filter=slot_is_substitutable):
    def factory(slot: ConvSlot) -> Module:
        if slot_filter(slot):
            return StackedConvolution(slot.in_channels, slot.out_channels)
        return default_conv_factory(slot)

    return factory


def _stacked_latency(backend, target, batch: int = 1) -> float:
    total = 0.0
    for slot in RESNET18_PROFILE:
        if slot_is_substitutable(slot):
            program = stacked_conv_program(slot, batch=batch)
        else:
            from repro.compiler.backends import loopnest_for_slot

            program = loopnest_for_slot(slot, batch=batch)
        total += backend.compile(program, target).latency_seconds
    return total


#: The independent work items of the case study, in table order.
_VARIANTS = ("original", "stacked_convolution", "operator1")


def _proxy_data(seed: int):
    dataset = SyntheticImageDataset(num_classes=10, num_samples=192, image_size=8, seed=seed)
    return dataset.split()


def _variant_points(
    steps: int, seed: int, target: HardwareTarget, variant: str
) -> list[CaseStudyPoint]:
    """Accuracy + latency point(s) of one variant (runs inside a shard).

    Accuracies are cached under a context that is a pure function of the
    budget, so serial and sharded runs — and repeated runs — agree exactly;
    latencies dedupe per program through the compile cache.
    """
    backend = TVMBackend(trials=tuning_trials(48))
    config = TrainingConfig(max_steps=steps, eval_every=max(steps // 2, 1))
    context = ("figure8", steps, seed, compute_dtype_name())

    if variant == "original":

        def train_original_and_quantize() -> tuple[float, float]:
            seed_all(seed)
            train_set, val_set = _proxy_data(seed)
            model = resnet18(conv_factory=default_conv_factory)
            accuracy = Trainer(model, config).fit_classifier(train_set, val_set).best_accuracy
            quantized = quantize_model(model)
            quantized_acc = Trainer(quantized, config).evaluate_classifier(val_set)
            return accuracy, quantized_acc

        baseline_acc, quantized_acc = cached_baseline(
            (context, "original"), train_original_and_quantize
        )
        baseline_latency = LatencyEvaluator(
            slots=RESNET18_PROFILE, backend=backend, target=target
        ).baseline_latency()
        int8_latency = quantized_latency(RESNET18_PROFILE, target)
        return [
            CaseStudyPoint("original", baseline_acc, baseline_latency * 1e3),
            CaseStudyPoint("int8_quantized", quantized_acc, int8_latency * 1e3),
        ]

    if variant == "stacked_convolution":

        def train_stacked() -> float:
            seed_all(seed)
            train_set, val_set = _proxy_data(seed)
            model = resnet18(conv_factory=_stacked_conv_factory())
            return Trainer(model, config).fit_classifier(train_set, val_set).best_accuracy

        stacked_acc = cached_baseline((context, "stacked_convolution"), train_stacked)
        return [
            CaseStudyPoint(
                "stacked_convolution", stacked_acc, _stacked_latency(backend, target) * 1e3
            )
        ]

    assert variant == "operator1", variant
    operator1 = build_operator1()

    def train_operator1() -> float:
        seed_all(seed)
        train_set, val_set = _proxy_data(seed)
        factory = synthesized_conv_factory(
            operator1, coefficients=DEFAULT_COEFFICIENT_VALUES, seed=seed
        )
        model = resnet18(conv_factory=factory)
        return Trainer(model, config).fit_classifier(train_set, val_set).best_accuracy

    op1_acc = cached_reward(context, operator1.graph.signature(), train_operator1)
    op1_latency = LatencyEvaluator(
        slots=RESNET18_PROFILE, backend=backend, target=target,
        coefficients={K1: 3, GROUPS: 4, SHRINK: 4},
    ).substituted_latency(operator1)
    return [CaseStudyPoint("operator1", op1_acc, op1_latency * 1e3)]


def run(
    target: HardwareTarget = MOBILE_CPU,
    train_steps: int | None = None,
    seed: int = 0,
    shards: int | None = None,
) -> Figure8Result:
    """Regenerate the case study (``shards=None`` inherits ``REPRO_SEARCH_SHARDS``)."""
    steps = train_steps if train_steps is not None else default_train_steps(full=40)
    worker = functools.partial(_variant_points, steps, seed, target)
    groups = sharded_map(worker, _VARIANTS, shards=shards)
    return Figure8Result(
        target=target.name, points=[point for group in groups for point in group]
    )


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure8")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
