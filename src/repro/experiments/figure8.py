"""Figure 8: Operator 1 vs. stacked convolution vs. INT8 quantization.

The case study compares four ResNet-18 variants on accuracy and TVM-tuned
latency: the original model, the INT8-quantized model, the stacked grouped
convolution (same FLOPs as Operator 1 but expressible by NAS), and Operator 1
itself.  The paper's findings to reproduce: the stacked convolution loses
about twice as much accuracy as Operator 1 at similar latency, and Operator 1
is at least competitive with INT8 quantization on both axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.quantization import quantize_model, quantized_latency
from repro.baselines.stacked_conv import StackedConvolution, stacked_conv_program
from repro.compiler.backends import TVMBackend
from repro.compiler.targets import MOBILE_CPU, HardwareTarget
from repro.core.library import GROUPS, K1, SHRINK, build_operator1
from repro.experiments.runner import make_run_record
from repro.nn.data import SyntheticImageDataset
from repro.nn.models.common import ConvSlot, default_conv_factory
from repro.nn.models.profiles import RESNET18_PROFILE
from repro.nn.models.resnet import resnet18
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.cache import (
    cached_baseline,
    cached_reward,
    compute_dtype_name,
    default_train_steps,
    tuning_trials,
)
from repro.search.evaluator import LatencyEvaluator
from repro.search.extraction import DEFAULT_COEFFICIENT_VALUES, slot_is_substitutable
from repro.search.substitution import synthesized_conv_factory


@dataclass
class CaseStudyPoint:
    variant: str
    accuracy: float
    latency_ms: float


@dataclass
class Figure8Result:
    target: str
    points: list[CaseStudyPoint] = field(default_factory=list)

    def point(self, variant: str) -> CaseStudyPoint:
        for point in self.points:
            if point.variant == variant:
                return point
        raise KeyError(variant)

    def to_table(self) -> str:
        lines = [f"{'variant':22s} {'accuracy':>9s} {'latency(ms)':>12s}   (target: {self.target})"]
        for point in self.points:
            lines.append(f"{point.variant:22s} {point.accuracy:9.3f} {point.latency_ms:12.3f}")
        return "\n".join(lines)


def _stacked_conv_factory(slot_filter=slot_is_substitutable):
    def factory(slot: ConvSlot) -> Module:
        if slot_filter(slot):
            return StackedConvolution(slot.in_channels, slot.out_channels)
        return default_conv_factory(slot)

    return factory


def _stacked_latency(backend, target, batch: int = 1) -> float:
    total = 0.0
    for slot in RESNET18_PROFILE:
        if slot_is_substitutable(slot):
            program = stacked_conv_program(slot, batch=batch)
        else:
            from repro.compiler.backends import loopnest_for_slot

            program = loopnest_for_slot(slot, batch=batch)
        total += backend.compile(program, target).latency_seconds
    return total


def run(target: HardwareTarget = MOBILE_CPU, train_steps: int | None = None, seed: int = 0) -> Figure8Result:
    steps = train_steps if train_steps is not None else default_train_steps(full=40)
    backend = TVMBackend(trials=tuning_trials(48))
    dataset = SyntheticImageDataset(num_classes=10, num_samples=192, image_size=8, seed=seed)
    train_set, val_set = dataset.split()
    config = TrainingConfig(max_steps=steps, eval_every=max(steps // 2, 1))
    result = Figure8Result(target=target.name)

    # Original ---------------------------------------------------------------
    baseline_model = resnet18(conv_factory=default_conv_factory)
    baseline_acc = Trainer(baseline_model, config).fit_classifier(train_set, val_set).best_accuracy
    baseline_latency = LatencyEvaluator(
        slots=RESNET18_PROFILE, backend=backend, target=target
    ).baseline_latency()
    result.points.append(CaseStudyPoint("original", baseline_acc, baseline_latency * 1e3))

    # INT8 quantized ----------------------------------------------------------
    quantized = quantize_model(baseline_model)
    quantized_acc = Trainer(quantized, config).evaluate_classifier(val_set)
    int8_latency = quantized_latency(RESNET18_PROFILE, target)
    result.points.append(CaseStudyPoint("int8_quantized", quantized_acc, int8_latency * 1e3))

    # Stacked convolution -----------------------------------------------------
    context = ("figure8", steps, seed, compute_dtype_name())
    stacked_acc = cached_baseline(
        (context, "stacked_convolution"),
        lambda: Trainer(resnet18(conv_factory=_stacked_conv_factory()), config)
        .fit_classifier(train_set, val_set)
        .best_accuracy,
    )
    result.points.append(
        CaseStudyPoint("stacked_convolution", stacked_acc, _stacked_latency(backend, target) * 1e3)
    )

    # Operator 1 ---------------------------------------------------------------
    operator1 = build_operator1()
    factory = synthesized_conv_factory(operator1, coefficients=DEFAULT_COEFFICIENT_VALUES, seed=seed)
    op1_acc = cached_reward(
        context,
        operator1.graph.signature(),
        lambda: Trainer(resnet18(conv_factory=factory), config)
        .fit_classifier(train_set, val_set)
        .best_accuracy,
    )
    op1_latency = LatencyEvaluator(
        slots=RESNET18_PROFILE, backend=backend, target=target,
        coefficients={K1: 3, GROUPS: 4, SHRINK: 4},
    ).substituted_latency(operator1)
    result.points.append(CaseStudyPoint("operator1", op1_acc, op1_latency * 1e3))
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure8")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
