"""``search``: one end-to-end MCTS search session as a registry experiment.

Every other registered experiment evaluates *fixed* candidates (figure 5
substitutes known operators, figure 10 trains the hand-built grouped
projection); this one runs the real Algorithm 1 loop against the GPT-2 QKV
projection slot (Section 9.3): batched MCTS over the matmul space, each
terminal candidate rewarded by proxy-training the tiny GPT-2 with the
candidate substituted into every QKV projection via
:class:`~repro.search.substitution.SynthesizedLinear`.  It exists so the
serving layer (:mod:`repro.serve`) has a registered experiment whose reward
waves actually flow through the frontier: concurrent ``repro serve``
requests running ``search`` coalesce their waves across clients, and the
baseline proxy training is computed once per warm cache set.

The projection slot — not the conv slot — is the search target because the
matmul space is *dense* in feasible programs at small depth: rollouts
complete and produce rewards.  (The conv spec's shape constraints prune
essentially every random rollout before completion, which would make every
wave empty.)

Determinism contract: the result — and therefore the stored record's
fingerprint — is a pure function of ``(iterations, max_depth, seed, training
budget, dtype)``.  The MCTS wave composition depends only on the seed and
the frontier width, never on how, where, or whether rewards were cached, so
serial runs, sharded runs and coalesced serve-side runs of the same request
are bit-identical.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

from repro.codegen.eager import LoweringError
from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler.backends import TVMBackend, linear_loopnest
from repro.compiler.targets import A100
from repro.core.library import GROUPS
from repro.core.mcts import MCTS, MCTSConfig
from repro.core.operator import SynthesizedOperator
from repro.experiments.runner import make_run_record
from repro.library.specs import gpt2_projection_space
from repro.library.warmstart import export_rewards, plan_warm_start
from repro.nn.data import SyntheticLanguageDataset
from repro.nn.layers import seed_all
from repro.nn.models.gpt2 import default_projection_factory, gpt2_tiny
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.runtime import current
from repro.search.cache import compute_dtype_name, default_train_steps
from repro.search.parallel import sharded_reward_evaluator
from repro.search.substitution import SynthesizedLinear

log = logging.getLogger(__name__)

#: gpt2_tiny's dimensions (fixed by :func:`repro.nn.models.gpt2.gpt2_tiny`).
EMBED_DIM = 32
VOCAB_SIZE = 64
SEQUENCE_LENGTH = 16

#: proxy-training shape: rows seen by each QKV projection per batch.
BATCH_SIZE = 8
DATASET_SIZE = 192

#: worst-case cross-entropy plugged in when a loss history is empty; also
#: the clamp that keeps ``exp`` finite in the perplexity readout.
_MAX_LOSS = 20.0


class ProjectionEvaluator:
    """Rewards a candidate by proxy-training GPT-2 with it substituted in.

    Instances are plain picklable values so waves can fan out across shard
    processes: the reward of a candidate is a pure function of the settings
    captured here plus the operator itself.  Mirrors the idioms of
    :class:`repro.search.evaluator.AccuracyEvaluator` — reseed before every
    model build so rewards are order-independent, zero reward for invalid
    candidates, anything else propagates (a crash during training is a
    genuine bug, not a bad candidate).
    """

    def __init__(self, train_steps: int, dataset_seed: int = 0, dtype: str | None = None) -> None:
        self.train_steps = train_steps
        self.dataset_seed = dataset_seed
        self.coefficients = {GROUPS: 2}
        dtype = dtype if dtype is not None else compute_dtype_name()
        #: process-wide reward-cache context: every knob that influences a
        #: reward, so concurrent serve requests with the same budget share
        #: rewards and different budgets never alias.
        self.context = (
            "projection-search",
            VOCAB_SIZE,
            SEQUENCE_LENGTH,
            BATCH_SIZE,
            DATASET_SIZE,
            self.train_steps,
            self.dataset_seed,
            tuple(sorted((var.name, value) for var, value in self.coefficients.items())),
            dtype,
        )

    # -- training ----------------------------------------------------------

    def _dataset(self) -> SyntheticLanguageDataset:
        return SyntheticLanguageDataset(
            vocab_size=VOCAB_SIZE,
            sequence_length=SEQUENCE_LENGTH,
            num_sequences=DATASET_SIZE,
            seed=self.dataset_seed,
        )

    def _train(self, projection_factory) -> float:
        """Proxy-train one model; returns the tail training loss."""
        # Reseed before building so initial weights — and hence the loss —
        # depend only on the factory, never on evaluation order.
        seed_all(self.dataset_seed)
        model = gpt2_tiny(
            projection_factory=projection_factory,
            vocab_size=VOCAB_SIZE,
            max_seq_len=SEQUENCE_LENGTH,
        )
        result = Trainer(
            model,
            TrainingConfig(
                max_steps=self.train_steps,
                batch_size=BATCH_SIZE,
                learning_rate=3e-3,
                optimizer="adam",
            ),
        ).fit_language_model(self._dataset())
        tail = result.loss_history[-5:]
        if not tail:
            return _MAX_LOSS
        return min(sum(tail) / len(tail), _MAX_LOSS)

    # -- rewards -----------------------------------------------------------

    def baseline_reward(self) -> float:
        """Reward of the unsubstituted model (dense QKV projections).

        Memoized per cache set via ``cached_baseline`` — under ``repro
        serve`` this is the training N concurrent clients amortize down to
        one.
        """
        return current().cached_baseline(
            self.context, lambda: _loss_reward(self._train(default_projection_factory))
        )

    def evaluate(self, operator: SynthesizedOperator) -> float:
        """Reward in [0, 1]; invalid candidates (unlowerable) score 0."""

        def factory(name: str, in_features: int, out_features: int) -> Module:
            return SynthesizedLinear(
                operator, in_features, out_features, coefficients=self.coefficients
            )

        try:
            return _loss_reward(self._train(factory))
        except (LoweringError, ValueError) as exc:
            log.warning(
                "candidate %s received zero reward: %s",
                operator.graph.signature(),
                exc,
            )
            return 0.0


def _loss_reward(loss: float) -> float:
    """Monotone-decreasing map from training loss to a reward in (0, 1]."""
    return 1.0 / (1.0 + max(loss, 0.0))


def _reward_perplexity(reward: float) -> float:
    """Invert :func:`_loss_reward` and exponentiate (clamped like figure 10)."""
    if reward <= 0.0:
        return float(math.exp(_MAX_LOSS))
    loss = min(1.0 / reward - 1.0, _MAX_LOSS)
    return float(math.exp(loss))


@dataclass
class CandidateRecord:
    """One accuracy-qualified candidate with its compiled latency readout."""

    signature: str
    reward: float
    perplexity: float
    macs: int
    speedup: float


@dataclass
class SearchRunResult:
    """Outcome of one search session: the qualified candidates, best first."""

    model: str
    iterations: int
    max_depth: int
    seed: int
    train_steps: int
    baseline_reward: float
    baseline_perplexity: float
    evaluations: int
    candidates: list[CandidateRecord] = field(default_factory=list)

    def best(self) -> CandidateRecord | None:
        """The highest-speedup qualified candidate."""
        return self.candidates[0] if self.candidates else None

    def to_table(self) -> str:
        lines = [
            f"search over {self.model} QKV projections: {self.iterations} iterations, "
            f"depth {self.max_depth}, seed {self.seed}, {self.train_steps} proxy steps "
            f"(baseline reward {self.baseline_reward:.4f}, "
            f"{self.evaluations} candidate(s) trained)",
            f"{'candidate':40s} {'reward':>8s} {'ppl':>10s} {'macs':>10s} {'speedup':>8s}",
        ]
        for record in self.candidates:
            label = (
                record.signature
                if len(record.signature) <= 40
                else record.signature[:37] + "..."
            )
            lines.append(
                f"{label:40s} {record.reward:8.4f} {record.perplexity:10.2f} "
                f"{record.macs:10d} {record.speedup:8.2f}"
            )
        if not self.candidates:
            lines.append("(no candidate within the accuracy margin)")
        return "\n".join(lines)


def run(
    iterations: int | None = None,
    max_depth: int | None = None,
    seed: int | None = None,
) -> SearchRunResult:
    """Search QKV projection substitutions for GPT-2 and qualify the best.

    ``seed`` pins the MCTS trajectory (``None`` inherits the runtime
    context's root seed, so ``--seed``/``REPRO_SEED`` steer it like every
    other seeded component); ``iterations``, ``max_depth`` and the proxy
    training budget shrink under smoke mode.  Shard counts and the serving
    layer's wave coalescer change where rewards are computed, never what
    they are.
    """
    config = current().config
    iterations = iterations if iterations is not None else config.smoke_value(24, 16)
    max_depth = max_depth if max_depth is not None else config.smoke_value(4, 3)
    train_steps = default_train_steps(full=12, smoke=3)
    evaluator = ProjectionEvaluator(train_steps=train_steps)

    rows = BATCH_SIZE * SEQUENCE_LENGTH
    # The spec and enumeration options come from the slot-family registry so
    # the ahead-of-time library (``repro library build gpt2``) describes
    # exactly the space this search explores.  No coefficient sizes: the
    # grouped merge/reduce steps they add lead random rollouts into shapes
    # that cannot complete within the depth limit, starving the frontier.
    space = gpt2_projection_space(max_depth=max_depth)
    spec = space.spec
    options = space.options
    binding = space.binding
    # Warm start (opt-in, ``REPRO_WARM_START``): expand the root toward the
    # library's best-known regions first and seed the reward cache from the
    # sidecar.  Leaves the RNG stream — and cold-run fingerprints — intact.
    plan = None
    if config.warm_start:
        plan = plan_warm_start(spec, cache_context=evaluator.context, name=space.name)
    search = MCTS(
        spec=spec,
        options=options,
        reward_fn=evaluator.evaluate,
        config=MCTSConfig(
            iterations=iterations,
            seed=seed,
            batch_size=max(config.frontier_width, 1),
            cache_context=evaluator.context,
            root_priority=plan.root_priority if plan is not None else (),
        ),
    )

    runtime = current()
    shards = max(config.shards, 1)
    evaluate_batch = None
    # The serving layer's wave coalescer supersedes per-search sharding: it
    # already fans each merged wave out with sharded_map.
    if shards > 1 and getattr(runtime, "wave_evaluator", None) is None:
        evaluate_batch = sharded_reward_evaluator(
            evaluator.evaluate, evaluator.context, shards=shards, runtime=runtime
        )
    samples = search.run(evaluate_batch=evaluate_batch)
    if plan is not None:
        # Publish fresh proxy-training rewards back to the library sidecar
        # so the next warm-started run skips re-training these candidates.
        export_rewards(
            {sample.operator.graph.signature(): sample.reward for sample in samples},
            name=plan.name,
            cache_context=evaluator.context,
        )
    baseline = evaluator.baseline_reward()

    backend = TVMBackend(trials=config.tuning_trials(32))
    baseline_latency = backend.compile(
        linear_loopnest("qkv", rows, EMBED_DIM, EMBED_DIM), A100
    ).latency_seconds
    margin = 0.02
    candidates: list[CandidateRecord] = []
    for sample in samples:
        if baseline - sample.reward > margin:
            continue
        operator = sample.operator
        try:
            program = lower_to_loopnest(operator, binding)
        except LoweringError as exc:
            log.warning(
                "qualified candidate %s does not lower to a loop nest: %s",
                operator.graph.signature(),
                exc,
            )
            continue
        latency = backend.compile(program, A100).latency_seconds
        candidates.append(
            CandidateRecord(
                signature=operator.graph.signature(),
                reward=sample.reward,
                perplexity=_reward_perplexity(sample.reward),
                macs=operator.macs(binding),
                speedup=baseline_latency / max(latency, 1e-12),
            )
        )
    candidates.sort(key=lambda record: (-record.speedup, -record.reward, record.signature))
    return SearchRunResult(
        model="gpt2_tiny",
        iterations=iterations,
        max_depth=max_depth,
        seed=seed if seed is not None else config.seed,
        train_steps=train_steps,
        baseline_reward=baseline,
        baseline_perplexity=_reward_perplexity(baseline),
        evaluations=len(samples),
        candidates=candidates,
    )


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("search")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
