"""Table 3 and the canonicalization ablation (Section 9.4).

The paper samples 6452 pGraphs with canonicalization disabled and finds only
86 of them canonical (>70x redundancy), and reports the canonical rate per
pGraph size (100% at size 2 falling to 0% at size >= 8).  ``run`` repeats the
measurement: random pGraphs are grown with canonicalization switched off, and
each is classified by replaying its construction against the rule engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.canonicalize import CanonicalizationEngine
from repro.core.enumeration import EnumerationOptions, default_options_for, enumerate_children
from repro.core.library import C_IN, C_OUT, GROUPS, H, K1, N, SHRINK, W, conv2d_spec
from repro.core.pgraph import PGraph
from repro.experiments.runner import make_run_record
from repro.ir.size import Size
from repro.search.cache import smoke_value


@dataclass
class Table3Result:
    samples_total: int
    samples_canonical: int
    per_size: dict[int, tuple[int, int]] = field(default_factory=dict)  #: size -> (canonical, total)

    @property
    def redundancy_factor(self) -> float:
        """How many uncanonical candidates exist per canonical one."""
        return self.samples_total / max(self.samples_canonical, 1)

    def canonical_rate(self, size: int) -> float:
        canonical, total = self.per_size.get(size, (0, 0))
        return canonical / total if total else float("nan")

    def to_table(self) -> str:
        lines = [f"total={self.samples_total} canonical={self.samples_canonical} "
                 f"redundancy={self.redundancy_factor:.1f}x"]
        for size in sorted(self.per_size):
            canonical, total = self.per_size[size]
            lines.append(f"size {size}: {100.0 * canonical / max(total, 1):6.2f}%  ({canonical}/{total})")
        return "\n".join(lines)


def _is_canonical(graph: PGraph, engine: CanonicalizationEngine) -> bool:
    """Replay the graph's construction, checking each application against the rules."""
    replay = PGraph.root(graph.output_shape, graph.input_shape)
    uid_map = {dim.uid: replay.frontier[i] for i, dim in enumerate(graph.output_dims)}
    for app in graph.applications:
        # Reconstruct operands in the replayed graph via the uid mapping.
        original_operands = list(app.consumed)
        if app.weight_dims:
            # Share: operands are (shared, *matched); shared is identified by
            # the first weight dim.
            original_operands = [app.weight_dims[0].identified_with, *app.matched]
        operands = [uid_map[dim.uid] for dim in original_operands]
        if not engine.is_canonical(replay, app.primitive, operands):
            return False
        replay = app.primitive.apply(replay, operands)
        new_app = replay.applications[-1]
        for original, replayed in zip(app.produced, new_app.produced):
            uid_map[original.uid] = replayed
    return True


def sample_random_graphs(
    options: EnumerationOptions,
    num_samples: int,
    seed: int = 0,
    target_depth: int = 8,
) -> list[PGraph]:
    """Random growth of pGraphs with canonicalization disabled."""
    rng = random.Random(seed)
    spec = conv2d_spec(bindings=({N: 1, C_IN: 16, C_OUT: 16, H: 8, W: 8, K1: 3, GROUPS: 2, SHRINK: 2},))
    samples: list[PGraph] = []
    while len(samples) < num_samples:
        graph = PGraph.root(spec.output_shape, spec.input_shape)
        depth = rng.randint(2, target_depth)
        for _ in range(depth):
            children = enumerate_children(graph, options)
            if not children:
                break
            _, graph = rng.choice(children)
        if graph.depth >= 2:
            samples.append(graph)
    return samples


def run(num_samples: int | None = None, seed: int = 0, max_depth: int = 8) -> Table3Result:
    if num_samples is None:
        num_samples = smoke_value(400, 150)
    spec = conv2d_spec(bindings=({N: 1, C_IN: 16, C_OUT: 16, H: 8, W: 8, K1: 3, GROUPS: 2, SHRINK: 2},))
    options = default_options_for(spec, coefficients=[Size.of(K1), Size.of(GROUPS)], max_depth=max_depth)
    options.canonicalizer = None  # sample WITHOUT canonicalization (the ablation)
    engine = CanonicalizationEngine()

    samples = sample_random_graphs(options, num_samples, seed=seed, target_depth=max_depth)
    per_size: dict[int, list[int]] = {}
    canonical_count = 0
    for graph in samples:
        canonical = _is_canonical(graph, engine)
        canonical_count += int(canonical)
        bucket = per_size.setdefault(graph.depth, [0, 0])
        bucket[0] += int(canonical)
        bucket[1] += 1
    return Table3Result(
        samples_total=len(samples),
        samples_canonical=canonical_count,
        per_size={size: (c, t) for size, (c, t) in per_size.items()},
    )


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("table3")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
