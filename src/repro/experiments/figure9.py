"""Figure 9: layer-wise comparison against NAS-PTE on ResNet-34.

For each of the ten reported ResNet-34 convolution layers, on each of the
three platforms and two compilers, the figure shows the speedup over the
TVM-compiled standard convolution for NAS-PTE's three operator sequences and
Syno's Operators 1 and 2.  The summary statistics the paper quotes — the
geomean advantage of Syno's best operator over NAS-PTE's best per layer, and
the FLOPs / parameter reductions — are computed here as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler.backends import CompilerBackend, loopnest_for_slot
from repro.compiler.targets import HardwareTarget
from repro.experiments.common import (
    ALL_TARGETS,
    Candidate,
    both_backends,
    nas_pte_candidates,
    syno_candidates,
)
from repro.experiments.runner import make_run_record
from repro.nn.models.common import ConvSlot
from repro.nn.models.profiles import RESNET34_FIGURE9_LAYERS
from repro.search.extraction import binding_for_slot


@dataclass
class LayerComparison:
    layer: str
    target: str
    backend: str
    baseline_ms: float
    candidate_ms: dict[str, float] = field(default_factory=dict)
    candidate_macs: dict[str, int] = field(default_factory=dict)
    candidate_params: dict[str, int] = field(default_factory=dict)

    def speedup(self, name: str) -> float:
        return self.baseline_ms / self.candidate_ms[name]

    def best(self, names: Sequence[str]) -> tuple[str, float]:
        available = [n for n in names if n in self.candidate_ms]
        best_name = min(available, key=lambda n: self.candidate_ms[n])
        return best_name, self.speedup(best_name)


@dataclass
class Figure9Result:
    comparisons: list[LayerComparison] = field(default_factory=list)
    syno_names: list[str] = field(default_factory=list)
    nas_pte_names: list[str] = field(default_factory=list)

    def syno_vs_naspte_geomean(self, target: str, backend: str) -> float:
        """Geomean, over layers, of (best Syno speedup / best NAS-PTE speedup)."""
        ratios = []
        for comparison in self.comparisons:
            if comparison.target != target or comparison.backend != backend:
                continue
            _, syno = comparison.best(self.syno_names)
            _, naspte = comparison.best(self.nas_pte_names)
            ratios.append(syno / naspte)
        return float(np.exp(np.mean(np.log(ratios)))) if ratios else float("nan")

    def flops_reduction_range(self) -> tuple[float, float]:
        """Min/max, over layers, of (best NAS-PTE MACs / best Syno MACs)."""
        ratios = []
        for comparison in self.comparisons:
            if comparison.backend != "tvm":
                continue
            syno_macs = min(comparison.candidate_macs[n] for n in self.syno_names)
            naspte_macs = min(comparison.candidate_macs[n] for n in self.nas_pte_names)
            ratios.append(naspte_macs / syno_macs)
        return (min(ratios), max(ratios)) if ratios else (float("nan"), float("nan"))

    def parameter_reduction_range(self) -> tuple[float, float]:
        ratios = []
        for comparison in self.comparisons:
            if comparison.backend != "tvm":
                continue
            syno = min(comparison.candidate_params[n] for n in self.syno_names)
            naspte = min(comparison.candidate_params[n] for n in self.nas_pte_names)
            ratios.append(naspte / max(syno, 1))
        return (min(ratios), max(ratios)) if ratios else (float("nan"), float("nan"))

    def to_table(self) -> str:
        lines = []
        for comparison in self.comparisons:
            entries = " ".join(
                f"{name}={comparison.speedup(name):.2f}x" for name in comparison.candidate_ms
            )
            lines.append(
                f"{comparison.layer:4s} {comparison.target:11s} {comparison.backend:14s} {entries}"
            )
        return "\n".join(lines)


def run(
    layers: Sequence[str] | None = None,
    targets=None,
    backends: Sequence[CompilerBackend] | None = None,
    syno: Sequence[Candidate] | None = None,
    nas_pte: Sequence[Candidate] | None = None,
) -> Figure9Result:
    layers = list(layers) if layers is not None else list(RESNET34_FIGURE9_LAYERS)
    targets = list(targets) if targets is not None else list(ALL_TARGETS)
    backends = list(backends) if backends is not None else both_backends()
    syno = list(syno) if syno is not None else syno_candidates()
    nas_pte = list(nas_pte) if nas_pte is not None else nas_pte_candidates()

    result = Figure9Result(
        syno_names=[c.name for c in syno], nas_pte_names=[c.name for c in nas_pte]
    )
    for layer_name in layers:
        slot: ConvSlot = RESNET34_FIGURE9_LAYERS[layer_name]
        for target in targets:
            for backend in backends:
                baseline = backend.compile(loopnest_for_slot(slot, batch=1), target)
                comparison = LayerComparison(
                    layer=layer_name,
                    target=target.name,
                    backend=backend.name,
                    baseline_ms=baseline.latency_ms,
                )
                for candidate in list(syno) + list(nas_pte):
                    binding = binding_for_slot(slot, 1, candidate.coefficients)
                    try:
                        program = lower_to_loopnest(candidate.operator, binding)
                    except Exception:
                        continue  # coefficients do not divide this layer's channels
                    tuned = backend.compile(program, target)
                    comparison.candidate_ms[candidate.name] = tuned.latency_ms
                    comparison.candidate_macs[candidate.name] = program.macs
                    comparison.candidate_params[candidate.name] = program.parameter_count
                result.comparisons.append(comparison)
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure9")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
