"""Ablation of the materialized-reduction optimization (Section 8, Figure 4).

Compares the MAC counts of the naive single-stage lowering against the staged
lowering for the paper's pooling example (where the saving is ``k*H`` vs
``(1 + k/s) * H``) and for the two case-study operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codegen.loopnest import lower_to_loopnest
from repro.core.library import (
    C_IN,
    C_OUT,
    GROUPS,
    H,
    K1,
    N,
    POOL,
    SHRINK,
    W,
    avgpool_spec,
    build_operator1,
    build_operator2,
)
from repro.core.operator import OperatorSpec, SynthesizedOperator
from repro.core.pgraph import PGraph
from repro.core.primitives import Reduce, Split, Unfold
from repro.experiments.runner import make_run_record
from repro.ir.size import Size


def build_figure4_operator() -> SynthesizedOperator:
    """The pooled-convolution example of Figure 4: Reduce(k), Unfold, Reduce(s), Split."""
    spec = OperatorSpec(
        name="figure4",
        input_shape=avgpool_spec().input_shape,
        output_shape=avgpool_spec().output_shape,
    )
    graph = PGraph.root(spec.output_shape, spec.input_shape, output_names=["i"])
    graph = Reduce(size=Size.of(K1)).apply(graph, ())
    window = graph.last_application.produced[0]
    graph = Unfold().apply(graph, (graph.frontier[0], window))
    unfolded = graph.last_application.produced[0]
    graph = Reduce(size=Size.of(POOL)).apply(graph, ())
    stride_dim = graph.last_application.produced[0]
    graph = Split().apply(graph, (unfolded, stride_dim))
    return SynthesizedOperator.from_graph(graph, spec)


@dataclass
class MaterializationRow:
    operator: str
    naive_macs: int
    materialized_macs: int

    @property
    def gain(self) -> float:
        return self.naive_macs / max(self.materialized_macs, 1)


@dataclass
class MaterializationResult:
    rows: list[MaterializationRow] = field(default_factory=list)

    def row(self, name: str) -> MaterializationRow:
        for row in self.rows:
            if row.operator == name:
                return row
        raise KeyError(name)

    def to_table(self) -> str:
        lines = [f"{'operator':12s} {'naive MACs':>12s} {'materialized':>13s} {'gain':>6s}"]
        for row in self.rows:
            lines.append(
                f"{row.operator:12s} {row.naive_macs:12d} {row.materialized_macs:13d} {row.gain:5.2f}x"
            )
        return "\n".join(lines)


def run() -> MaterializationResult:
    result = MaterializationResult()

    figure4 = build_figure4_operator()
    pool_binding = {H: 1024, POOL: 4, K1: 5}
    naive = lower_to_loopnest(figure4, pool_binding, materialize=False)
    staged = lower_to_loopnest(figure4, pool_binding, materialize=True)
    result.rows.append(MaterializationRow("figure4", naive.macs, staged.macs))

    conv_binding = {N: 1, C_IN: 256, C_OUT: 256, H: 14, W: 14, K1: 3, GROUPS: 4, SHRINK: 4}
    for name, operator in (("operator1", build_operator1()), ("operator2", build_operator2())):
        naive = lower_to_loopnest(operator, conv_binding, materialize=False)
        staged = lower_to_loopnest(operator, conv_binding, materialize=True)
        result.rows.append(MaterializationRow(name, naive.macs, staged.macs))
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("ablation-materialization")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
