"""Section 9.4: the shape-distance ablation.

The paper measures random sampling *trials*: with shape distance enabled,
5 million trials yield 253 distinct valid operators in about a minute; without
it, 500 million trials yield none.  The reproduction runs a fixed number of
random synthesis rollouts from the conv2d specification with and without the
guidance and compares the number of (distinct) valid operators found.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.core.enumeration import EnumerationOptions, default_options_for, enumerate_children
from repro.core.library import C_IN, C_OUT, GROUPS, H, K1, N, SHRINK, W, conv2d_spec
from repro.core.pgraph import PGraph
from repro.core.shape_distance import shape_distance
from repro.experiments.runner import make_run_record
from repro.ir.size import Size
from repro.search.cache import smoke_value


@dataclass
class AblationResult:
    trials: int
    guided_valid: int
    guided_distinct: int
    guided_seconds: float
    unguided_valid: int
    unguided_distinct: int
    unguided_seconds: float

    @property
    def yield_ratio(self) -> float:
        """Valid-per-trial ratio of guided over unguided sampling."""
        guided_rate = self.guided_valid / max(self.trials, 1)
        unguided_rate = self.unguided_valid / max(self.trials, 1)
        if unguided_rate == 0:
            return float("inf") if guided_rate > 0 else 1.0
        return guided_rate / unguided_rate

    def to_table(self) -> str:
        return (
            f"trials per mode: {self.trials}\n"
            f"guided:   {self.guided_valid} valid ({self.guided_distinct} distinct) "
            f"in {self.guided_seconds:.2f}s\n"
            f"unguided: {self.unguided_valid} valid ({self.unguided_distinct} distinct) "
            f"in {self.unguided_seconds:.2f}s"
        )


def _spec():
    return conv2d_spec(
        bindings=({N: 1, C_IN: 16, C_OUT: 16, H: 8, W: 8, K1: 3, GROUPS: 2, SHRINK: 2},)
    )


_ROLLING_SPEC = _spec()


def _rollout(options: EnumerationOptions, rng: random.Random, use_distance: bool) -> PGraph | None:
    """One random synthesis trial; returns a complete pGraph or None."""
    graph = PGraph.root(_ROLLING_SPEC.output_shape, _ROLLING_SPEC.input_shape)
    for _ in range(options.max_depth):
        if graph.is_complete and graph.depth > 0:
            return graph
        children = enumerate_children(graph, options)
        if use_distance:
            remaining = options.max_depth - graph.depth - 1
            scored = [
                (shape_distance(child.frontier_shape, child.input_shape), action, child)
                for action, child in children
            ]
            scored = [entry for entry in scored if entry[0] <= remaining]
            if not scored:
                return None
            minimum = min(entry[0] for entry in scored)
            if minimum >= remaining - 1:
                # The budget is (almost) down to the distance: every further
                # step must move toward the target shape (the paper's guidance).
                scored = [entry for entry in scored if entry[0] == minimum]
            _, _, graph = rng.choice(scored)
            continue
        if not children:
            return None
        _, graph = rng.choice(children)
    return graph if graph.is_complete and graph.depth > 0 else None


def run(trials: int | None = None, max_depth: int = 4, seed: int = 0) -> AblationResult:
    if trials is None:
        trials = smoke_value(300, 120)
    options = default_options_for(
        _ROLLING_SPEC, coefficients=[Size.of(K1), Size.of(GROUPS)], max_depth=max_depth
    )

    results = {}
    for label, use_distance in (("guided", True), ("unguided", False)):
        rng = random.Random(seed)
        found = 0
        signatures: set[str] = set()
        start = time.perf_counter()
        for _ in range(trials):
            graph = _rollout(options, rng, use_distance)
            if graph is not None:
                found += 1
                signatures.add(graph.signature())
        results[label] = (found, len(signatures), time.perf_counter() - start)

    return AblationResult(
        trials=trials,
        guided_valid=results["guided"][0],
        guided_distinct=results["guided"][1],
        guided_seconds=results["guided"][2],
        unguided_valid=results["unguided"][0],
        unguided_distinct=results["unguided"][1],
        unguided_seconds=results["unguided"][2],
    )


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("ablation-shape-distance")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
