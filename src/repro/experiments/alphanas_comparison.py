"""Section 9.2: comparison with αNAS (FLOPs reduction and speedup).

αNAS reports about 25% fewer FLOPs and ~12% training speedup within 2%
accuracy loss on ResNet-50 / EfficientNet-B0.  The paper contrasts this with
Syno's 63% / 37% FLOPs reductions and 56% / 12% A100 inference speedups on
ResNet-34 / EfficientNetV2-S.  ``run`` computes both sides from the same
machinery: the coarse αNAS-style substitution pass, and the best Syno
candidate's FLOPs/latency on the same models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.alphanas import alphanas_substitution
from repro.compiler.backends import TVMBackend
from repro.compiler.targets import A100
from repro.experiments.common import syno_candidates
from repro.experiments.runner import make_run_record
from repro.nn.models.profiles import MODEL_PROFILES
from repro.search.cache import tuning_trials
from repro.search.evaluator import LatencyEvaluator


@dataclass
class ComparisonRow:
    model: str
    alphanas_flops_reduction: float
    alphanas_training_speedup: float
    syno_flops_reduction: float
    syno_inference_speedup: float


@dataclass
class AlphaNASComparisonResult:
    rows: list[ComparisonRow] = field(default_factory=list)

    def to_table(self) -> str:
        lines = [f"{'model':20s} {'aNAS dFLOPs':>12s} {'aNAS speedup':>13s} "
                 f"{'Syno dFLOPs':>12s} {'Syno speedup':>13s}"]
        for row in self.rows:
            lines.append(
                f"{row.model:20s} {row.alphanas_flops_reduction:11.0%} "
                f"{row.alphanas_training_speedup:12.2f}x {row.syno_flops_reduction:11.0%} "
                f"{row.syno_inference_speedup:12.2f}x"
            )
        return "\n".join(lines)


def run(models: tuple[str, ...] = ("resnet34", "efficientnet_v2_s")) -> AlphaNASComparisonResult:
    backend = TVMBackend(trials=tuning_trials(48))
    result = AlphaNASComparisonResult()
    for model in models:
        slots = MODEL_PROFILES[model]
        alphanas = alphanas_substitution(slots)

        best_reduction = 0.0
        best_speedup = 0.0
        for candidate in syno_candidates():
            evaluator = LatencyEvaluator(
                slots=slots, backend=backend, target=A100, coefficients=candidate.coefficients
            )
            original = evaluator.macs(None)
            substituted = evaluator.macs(candidate.operator)
            reduction = 1.0 - substituted / max(original, 1)
            speedup = evaluator.speedup(candidate.operator)
            if speedup > best_speedup:
                best_speedup = speedup
                best_reduction = reduction
        result.rows.append(
            ComparisonRow(
                model=model,
                alphanas_flops_reduction=alphanas.flops_reduction,
                alphanas_training_speedup=alphanas.estimated_training_speedup,
                syno_flops_reduction=best_reduction,
                syno_inference_speedup=best_speedup,
            )
        )
    return result


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("alphanas")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
