"""Figure 10: GPT-2 language-modelling perplexity vs. training steps.

The paper substitutes the QKV projections of GPT-2 with a searched operator
(a grouped projection that lets Q, K and V learn from different features),
trains for 100,000 steps on lm1b, and reports both a ~1.1x training speedup
and a better final perplexity (99 vs. 111).  Here the tiny GPT-2 is trained
on the synthetic language task with and without the substitution, the loss
curves are recorded, and the training speedup is estimated from the tuned
latency of the projection operators at the real GPT-2 size (768 embedding
dimensions).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.codegen.loopnest import lower_to_loopnest
from repro.compiler.backends import TVMBackend, linear_loopnest
from repro.compiler.targets import A100
from repro.core.library import GROUPS, K, K1, M, OUT_FEATURES, SHRINK, build_grouped_projection
from repro.experiments.runner import make_run_record
from repro.nn.data import SyntheticLanguageDataset
from repro.nn.models.gpt2 import GPT2, default_projection_factory, gpt2_tiny
from repro.nn.module import Module
from repro.nn.trainer import Trainer, TrainingConfig
from repro.search.cache import default_train_steps, tuning_trials
from repro.search.substitution import SynthesizedLinear


@dataclass
class Figure10Result:
    baseline_losses: list[float] = field(default_factory=list)
    syno_losses: list[float] = field(default_factory=list)
    baseline_perplexity: float = float("inf")
    syno_perplexity: float = float("inf")
    training_speedup: float = 1.0

    def to_table(self) -> str:
        return (
            f"baseline perplexity: {self.baseline_perplexity:.2f}\n"
            f"syno perplexity:     {self.syno_perplexity:.2f}\n"
            f"training speedup:    {self.training_speedup:.2f}x"
        )


def _perplexity(losses: list[float]) -> float:
    if not losses:
        return float("inf")
    tail = losses[-5:]
    return float(math.exp(min(sum(tail) / len(tail), 20.0)))


def _grouped_projection_factory(groups: int = 2, seed: int = 0):
    operator = build_grouped_projection()

    def factory(name: str, in_features: int, out_features: int) -> Module:
        return SynthesizedLinear(
            operator,
            in_features,
            out_features,
            coefficients={GROUPS: groups, SHRINK: 2, K1: 3},
        )

    return factory


def estimated_training_speedup(embed_dim: int = 768, seq_tokens: int = 1024, groups: int = 4) -> float:
    """Training-step speedup from cheaper QKV projections at real GPT-2 size.

    GPT-2's QKV projections are roughly a third of the per-layer FLOPs; the
    grouped projection cuts them by the group count.  The estimate compiles
    both versions for the A100 and assumes the rest of the step is unchanged.
    """
    backend = TVMBackend(trials=tuning_trials(32))
    baseline_program = linear_loopnest("qkv", seq_tokens, embed_dim, embed_dim)
    baseline = backend.compile(baseline_program, A100).latency_seconds * 3  # Q, K and V
    operator = build_grouped_projection()
    binding = {M: seq_tokens, K: embed_dim, OUT_FEATURES: embed_dim, GROUPS: groups}
    substituted_program = lower_to_loopnest(operator, binding)
    substituted = backend.compile(substituted_program, A100).latency_seconds * 3
    # Attention + MLP + other projections make up the rest of a block's time;
    # QKV is roughly 25% of it for GPT-2's dimensions.
    qkv_fraction = 0.25
    step_baseline = baseline / qkv_fraction
    step_substituted = step_baseline - baseline + substituted
    return step_baseline / step_substituted


def run(train_steps: int | None = None, seed: int = 0, groups: int = 2) -> Figure10Result:
    steps = train_steps if train_steps is not None else default_train_steps(full=30)
    dataset = SyntheticLanguageDataset(vocab_size=64, sequence_length=16, num_sequences=192, seed=seed)
    config = TrainingConfig(max_steps=steps, batch_size=8, learning_rate=3e-3, optimizer="adam")

    baseline = gpt2_tiny(projection_factory=default_projection_factory)
    baseline_result = Trainer(baseline, config).fit_language_model(dataset)

    substituted = gpt2_tiny(projection_factory=_grouped_projection_factory(groups=groups, seed=seed))
    syno_result = Trainer(substituted, config).fit_language_model(dataset)

    return Figure10Result(
        baseline_losses=baseline_result.loss_history,
        syno_losses=syno_result.loss_history,
        baseline_perplexity=_perplexity(baseline_result.loss_history),
        syno_perplexity=_perplexity(syno_result.loss_history),
        training_speedup=estimated_training_speedup(groups=4),
    )


#: Structured counterpart of :func:`run`: same execution through the shared
#: runner, returning a :class:`repro.results.ResultRecord` (see
#: :func:`repro.experiments.runner.make_run_record`).
run_record = make_run_record("figure10")


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run().to_table())
