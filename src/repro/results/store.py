"""The on-disk artifact store for experiment runs.

Layout (rooted at ``REPRO_RESULTS_DIR``, default ``./results``)::

    <root>/
      runs/
        <run_id>/
          record.json     # the serialized ResultRecord (with fingerprint)
          table.txt       # the experiment's rendered table, for quick reading
      cache/
        evaluation-cache-v<N>.pkl   # persisted reward/compile/baseline caches

Everything in the store is plain files: records are JSON, tables are text,
and the cache snapshot is a versioned pickle written by
:func:`repro.search.cache.save_caches`.  The store never deletes or rewrites
a run directory — each run gets a fresh id — so it doubles as an append-only
experiment log that ``repro report`` renders into summary tables.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.results.records import ResultRecord
from repro.runtime.caches import cache_snapshot_filename

log = logging.getLogger(__name__)

#: Environment knob naming the store root at the process edge; inside the
#: process the root travels as ``RuntimeConfig.results_dir``.
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"
DEFAULT_RESULTS_DIR = "results"


def default_results_dir() -> Path:
    """The ambient context's store root (default ``./results``).

    Resolved through :func:`repro.runtime.current`, so the
    ``REPRO_RESULTS_DIR`` variable keeps working as the edge-of-process
    fallback while explicit contexts carry their own ``results_dir``.
    """
    from repro.runtime import current  # lazy: repro.runtime loads this module

    return Path(current().config.results_dir)


def _write_text_atomic(path: Path, text: str) -> None:
    """All-or-nothing text write: unique temp file, then an atomic rename."""
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


class ArtifactStore:
    """Persistent store of :class:`ResultRecord` artifacts and cache snapshots."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = Path(root) if root is not None else default_results_dir()

    # -- paths --------------------------------------------------------------

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    @property
    def cache_path(self) -> Path:
        """Where the persisted evaluation-cache snapshot lives for this store."""
        return self.cache_dir / cache_snapshot_filename()

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def record_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "record.json"

    # -- writing ------------------------------------------------------------

    def save(self, record: ResultRecord) -> Path:
        """Write ``record.json`` and ``table.txt`` for the run; returns the dir.

        Both files are written atomically (pid-suffixed temp file +
        ``os.replace``), so a reader — or a second process writing into the
        same store — never observes a half-written record and two writers
        never interleave within one file.
        """
        directory = self.run_dir(record.run_id)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.record_path(record.run_id)
        _write_text_atomic(path, record.to_json() + "\n")
        if record.table:
            _write_text_atomic(directory / "table.txt", record.table + "\n")
        return directory

    # -- reading ------------------------------------------------------------

    def load(self, run_id: str) -> ResultRecord:
        return ResultRecord.from_json(self.record_path(run_id).read_text(encoding="utf-8"))

    def list_runs(self, experiment: str | None = None) -> list[ResultRecord]:
        """Stored records, oldest first; optionally filtered by experiment name.

        Unreadable record files are skipped with a warning rather than
        poisoning every report.
        """
        records: list[ResultRecord] = []
        if not self.runs_dir.is_dir():
            return records
        for path in sorted(self.runs_dir.glob("*/record.json")):
            try:
                record = ResultRecord.from_json(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, TypeError) as exc:
                log.warning("skipping unreadable record %s: %s", path, exc)
                continue
            if experiment is None or record.experiment == experiment:
                records.append(record)
        records.sort(key=lambda record: (record.started_at, record.run_id))
        return records

    def latest(self, experiment: str | None = None) -> ResultRecord | None:
        records = self.list_runs(experiment)
        return records[-1] if records else None
