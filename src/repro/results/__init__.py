"""Persistent run manifests and result artifacts.

Public API:

* :class:`~repro.results.records.ResultRecord` — structured, JSON-round-trip
  outcome of one experiment run.
* :class:`~repro.results.store.ArtifactStore` — the on-disk store under
  ``REPRO_RESULTS_DIR`` (default ``./results``) holding run records and the
  persisted evaluation-cache snapshot.

See ``docs/architecture.md`` for where this layer sits in the system.
"""

from repro.results.records import (
    RECORD_SCHEMA_VERSION,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_INTERRUPTED,
    ResultRecord,
    sanitize_metric,
    sanitize_metrics,
)
from repro.results.store import DEFAULT_RESULTS_DIR, RESULTS_DIR_ENV, ArtifactStore, default_results_dir

__all__ = [
    "ArtifactStore",
    "DEFAULT_RESULTS_DIR",
    "RECORD_SCHEMA_VERSION",
    "RESULTS_DIR_ENV",
    "ResultRecord",
    "STATUS_COMPLETED",
    "STATUS_FAILED",
    "STATUS_INTERRUPTED",
    "default_results_dir",
    "sanitize_metric",
    "sanitize_metrics",
]
