"""Structured result records for experiment runs.

A :class:`ResultRecord` is the durable, JSON-serializable outcome of running
one paper experiment (a figure, table or ablation): the configuration it ran
under, the metrics it produced, the rendered table, and the cache activity it
caused.  Records are what the ``repro`` CLI stores, lists and reports on, and
what the benchmark suite produces through the same runner API — the two entry
points are thin wrappers over identical machinery, so a record written from
pytest and one written from the CLI are directly comparable.

Two records of the same experiment under the same configuration are expected
to agree on their :meth:`ResultRecord.fingerprint`: the fingerprint covers the
deterministic payload (experiment, configuration, metrics, table) and excludes
incidental fields (run id, timestamps, durations, cache hit counts).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

#: Schema version of the serialized record; bump on breaking layout changes.
RECORD_SCHEMA_VERSION = 1

#: Run lifecycle states a record can report.
STATUS_COMPLETED = "completed"
STATUS_INTERRUPTED = "interrupted"
STATUS_FAILED = "failed"


def sanitize_metric(value: Any) -> float | int | None:
    """Coerce one metric to a JSON-safe number (non-finite floats become None)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    return number if math.isfinite(number) else None


def sanitize_metrics(metrics: Mapping[str, Any]) -> dict[str, float | int | None]:
    """JSON-safe copy of a metrics mapping (see :func:`sanitize_metric`)."""
    return {str(name): sanitize_metric(value) for name, value in metrics.items()}


@dataclass
class ResultRecord:
    """One experiment run, ready for the artifact store.

    Attributes
    ----------
    run_id:
        Unique id of the run (``<experiment>-<timestamp>-<suffix>``); doubles
        as the directory name inside the artifact store.
    experiment:
        Registry name of the experiment (``figure5``, ``table3``, ...).
    status:
        ``completed``, ``interrupted`` (KeyboardInterrupt mid-run) or
        ``failed`` (the experiment raised).
    config:
        The :class:`repro.experiments.runner.ExperimentConfig` as a plain dict.
    metrics:
        Flat name → number mapping of the experiment's headline quantities.
    table:
        The experiment's rendered ``to_table()`` output (empty for failed runs).
    cache_stats:
        Per-cache ``{"hits": .., "misses": ..}`` *deltas* accumulated during
        this run — a second run over a warm cache shows up here as hits
        without misses.
    environment:
        The resolved :class:`repro.runtime.RuntimeConfig` the experiment ran
        under (``environment["runtime"]``: field -> value) plus each field's
        provenance (``environment["provenance"]``: default/env/explicit).
        Records written before the runtime API held raw ``REPRO_*`` values
        here instead; readers fall back accordingly.
    error:
        Exception summary for interrupted/failed runs, else empty.
    """

    run_id: str
    experiment: str
    status: str
    config: dict = field(default_factory=dict)
    started_at: str = ""
    finished_at: str = ""
    duration_seconds: float = 0.0
    metrics: dict = field(default_factory=dict)
    table: str = ""
    cache_stats: dict = field(default_factory=dict)
    environment: dict = field(default_factory=dict)
    error: str = ""
    schema_version: int = RECORD_SCHEMA_VERSION

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready); includes the derived fingerprint."""
        payload = asdict(self)
        payload["fingerprint"] = self.fingerprint()
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ResultRecord":
        data = dict(payload)
        data.pop("fingerprint", None)  # derived, never trusted from disk
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})

    @classmethod
    def from_json(cls, text: str) -> "ResultRecord":
        return cls.from_dict(json.loads(text))

    # -- identity -----------------------------------------------------------

    def fingerprint(self) -> str:
        """Digest of the deterministic payload of this run.

        Covers (experiment, config, metrics, table) — two runs of the same
        experiment under the same configuration must agree on it regardless
        of when they ran or how warm the caches were.
        """
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "config": self.config,
                "metrics": sanitize_metrics(self.metrics),
                "table": self.table,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
