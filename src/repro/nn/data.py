"""Synthetic datasets standing in for CIFAR-100, ImageNet and lm1b.

The paper trains candidates on CIFAR-100 as a proxy and re-evaluates on
ImageNet; GPT-2 is trained on lm1b.  Offline we cannot download datasets, so
we generate deterministic synthetic tasks whose labels are a *learnable*
function of the inputs:

* :class:`SyntheticImageDataset` — each class has a random but fixed spatial
  "prototype" pattern; images are noisy mixtures of their class prototype, so
  a convolution-like operator that mixes spatial and channel information can
  separate the classes, while a degenerate operator cannot.  This preserves
  the property the search needs: proxy accuracy ranks operators by
  expressiveness.
* :class:`SyntheticLanguageDataset` — token sequences produced by a small
  random first-order Markov chain plus a copy pattern; next-token perplexity
  is learnable by a transformer and degrades for crippled projections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.nn.tensor import compute_dtype


@dataclass
class Batch:
    """One mini-batch of inputs and integer targets."""

    inputs: np.ndarray
    targets: np.ndarray

    def __len__(self) -> int:
        return len(self.targets)


class SyntheticImageDataset:
    """A deterministic image-classification task at configurable scale."""

    def __init__(
        self,
        num_classes: int = 10,
        num_samples: int = 256,
        image_size: int = 8,
        channels: int = 3,
        noise: float = 0.4,
        seed: int = 0,
    ) -> None:
        self.num_classes = num_classes
        self.image_size = image_size
        self.channels = channels
        rng = np.random.default_rng(seed)
        # Class prototypes: smooth spatial patterns per channel.
        base = rng.normal(0.0, 1.0, size=(num_classes, channels, image_size, image_size))
        # Smooth them a little so spatial mixing helps classification.
        kernel = np.array([0.25, 0.5, 0.25])
        smooth = base
        for axis in (2, 3):
            smooth = (
                0.25 * np.roll(smooth, 1, axis=axis)
                + 0.5 * smooth
                + 0.25 * np.roll(smooth, -1, axis=axis)
            )
        self.prototypes = smooth
        labels = rng.integers(0, num_classes, size=num_samples)
        images = self.prototypes[labels] + noise * rng.normal(
            0.0, 1.0, size=(num_samples, channels, image_size, image_size)
        )
        self.images = images.astype(compute_dtype())
        self.labels = labels.astype(np.int64)
        _ = kernel  # kept for documentation of the smoothing weights

    def __len__(self) -> int:
        return len(self.labels)

    def split(self, train_fraction: float = 0.8) -> tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Split into train/validation subsets (views over the same arrays)."""
        cut = int(len(self) * train_fraction)
        train = self.__class__.__new__(self.__class__)
        val = self.__class__.__new__(self.__class__)
        for subset, lo, hi in ((train, 0, cut), (val, cut, len(self))):
            subset.num_classes = self.num_classes
            subset.image_size = self.image_size
            subset.channels = self.channels
            subset.prototypes = self.prototypes
            subset.images = self.images[lo:hi]
            subset.labels = self.labels[lo:hi]
        return train, val


class SyntheticLanguageDataset:
    """A synthetic next-token prediction task (stand-in for lm1b)."""

    def __init__(
        self,
        vocab_size: int = 64,
        sequence_length: int = 16,
        num_sequences: int = 256,
        seed: int = 0,
    ) -> None:
        self.vocab_size = vocab_size
        self.sequence_length = sequence_length
        rng = np.random.default_rng(seed)
        # A sparse, peaked Markov transition matrix makes next tokens predictable.
        logits = rng.normal(0.0, 1.0, size=(vocab_size, vocab_size))
        top = np.argsort(logits, axis=1)[:, -4:]
        transition = np.full((vocab_size, vocab_size), 1e-3)
        for row, cols in enumerate(top):
            transition[row, cols] = 1.0
        transition /= transition.sum(axis=1, keepdims=True)
        sequences = np.zeros((num_sequences, sequence_length + 1), dtype=np.int64)
        sequences[:, 0] = rng.integers(0, vocab_size, size=num_sequences)
        for position in range(1, sequence_length + 1):
            prev = sequences[:, position - 1]
            cumulative = transition[prev].cumsum(axis=1)
            draws = rng.random(num_sequences)[:, None]
            sequences[:, position] = (draws > cumulative).sum(axis=1)
        self.tokens = sequences[:, :-1]
        self.targets = sequences[:, 1:]

    def __len__(self) -> int:
        return len(self.tokens)


class DataLoader:
    """Shuffled mini-batch iterator over a synthetic dataset."""

    def __init__(self, dataset, batch_size: int = 32, shuffle: bool = True, seed: int = 0) -> None:
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(indices)
        if hasattr(self.dataset, "images"):
            inputs, targets = self.dataset.images, self.dataset.labels
        else:
            inputs, targets = self.dataset.tokens, self.dataset.targets
        for start in range(0, len(indices), self.batch_size):
            batch_idx = indices[start : start + self.batch_size]
            yield Batch(inputs=inputs[batch_idx], targets=targets[batch_idx])
