"""Optimizers (SGD with momentum, Adam) and a cosine LR schedule."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class Adam(Optimizer):
    """Adam with bias correction (used for the GPT-2 workload)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        beta1, beta2 = self.betas
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= beta1
            m += (1 - beta1) * grad
            v *= beta2
            v += (1 - beta2) * grad * grad
            m_hat = m / (1 - beta1**self._t)
            v_hat = v / (1 - beta2**self._t)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class CosineSchedule:
    """Cosine learning-rate decay with optional warmup."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0,
                 min_lr_ratio: float = 0.05) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_steps = max(total_steps, 1)
        self.warmup_steps = warmup_steps
        self.min_lr_ratio = min_lr_ratio
        self._step = 0

    def step(self) -> float:
        self._step += 1
        if self._step <= self.warmup_steps and self.warmup_steps > 0:
            factor = self._step / self.warmup_steps
        else:
            progress = (self._step - self.warmup_steps) / max(
                self.total_steps - self.warmup_steps, 1
            )
            progress = min(progress, 1.0)
            factor = self.min_lr_ratio + (1 - self.min_lr_ratio) * 0.5 * (
                1 + math.cos(math.pi * progress)
            )
        self.optimizer.lr = self.base_lr * factor
        return self.optimizer.lr
