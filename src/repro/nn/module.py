"""Module system: parameters, submodules, and a Sequential container."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor, compute_dtype


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models (a minimal ``torch.nn.Module``)."""

    def __init__(self) -> None:
        self.training = True

    # -- forward -------------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- parameter / module traversal ----------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{key}.")
                    elif isinstance(item, Parameter):
                        yield f"{full_name}.{key}", item

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- training state -------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def parameter_count(self) -> int:
        return int(np.sum([param.size for param in self.parameters()]))

    # -- (de)serialization ------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        for name, value in state.items():
            if name in params:
                params[name].data = np.asarray(value, dtype=compute_dtype()).copy()


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def append(self, layer: Module) -> "Sequential":
        self.layers.append(layer)
        return self

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
