"""A small training loop with early termination (Section 9.1).

The paper trains each candidate for up to 100 epochs on CIFAR-100 but
terminates early when accuracy is not promising, reducing the average cost to
about 0.1 GPU-hours per sample.  The trainer reproduces both behaviours at
laptop scale: a step budget plus an optional early-stop threshold schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn import functional as F
from repro.nn.data import DataLoader
from repro.nn.module import Module
from repro.nn.optim import Adam, CosineSchedule, Optimizer, SGD
from repro.nn.tensor import Tensor, no_grad


@dataclass
class TrainingConfig:
    """Hyper-parameters of one proxy-training run."""

    max_steps: int = 60
    batch_size: int = 16
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    optimizer: str = "sgd"
    #: evaluate on the validation split every this many steps.
    eval_every: int = 20
    #: abort when accuracy at a checkpoint is below this fraction of the
    #: best-so-far trajectory (the paper's early termination).
    early_stop_threshold: float | None = None
    seed: int = 0


@dataclass
class TrainingResult:
    """Summary of one training run."""

    final_accuracy: float
    best_accuracy: float
    final_loss: float
    steps: int
    loss_history: list[float] = field(default_factory=list)
    accuracy_history: list[tuple[int, float]] = field(default_factory=list)
    early_stopped: bool = False

    @property
    def perplexity(self) -> float:
        """Perplexity derived from the final loss (language-model runs)."""
        return float(math.exp(min(self.final_loss, 20.0)))


class Trainer:
    """Trains a classification or language model on a synthetic dataset."""

    def __init__(self, model: Module, config: TrainingConfig | None = None) -> None:
        self.model = model
        self.config = config or TrainingConfig()

    def _make_optimizer(self) -> Optimizer:
        config = self.config
        if config.optimizer == "adam":
            return Adam(self.model.parameters(), lr=config.learning_rate,
                        weight_decay=config.weight_decay)
        return SGD(
            self.model.parameters(),
            lr=config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )

    # -- classification -----------------------------------------------------

    def fit_classifier(self, train_set, val_set) -> TrainingResult:
        config = self.config
        loader = DataLoader(train_set, batch_size=config.batch_size, seed=config.seed)
        optimizer = self._make_optimizer()
        schedule = CosineSchedule(optimizer, total_steps=config.max_steps, warmup_steps=2)
        loss_history: list[float] = []
        accuracy_history: list[tuple[int, float]] = []
        best_accuracy = 0.0
        early_stopped = False
        step = 0
        self.model.train()
        while step < config.max_steps and not early_stopped:
            for batch in loader:
                if step >= config.max_steps:
                    break
                logits = self.model(Tensor(batch.inputs))
                loss = F.cross_entropy(logits, batch.targets)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                schedule.step()
                loss_history.append(float(loss.data))
                step += 1
                if step % config.eval_every == 0 or step == config.max_steps:
                    accuracy = self.evaluate_classifier(val_set)
                    accuracy_history.append((step, accuracy))
                    best_accuracy = max(best_accuracy, accuracy)
                    if (
                        config.early_stop_threshold is not None
                        and accuracy < config.early_stop_threshold
                        and step < config.max_steps
                    ):
                        early_stopped = True
                        break
        final_accuracy = accuracy_history[-1][1] if accuracy_history else self.evaluate_classifier(val_set)
        return TrainingResult(
            final_accuracy=final_accuracy,
            best_accuracy=max(best_accuracy, final_accuracy),
            final_loss=loss_history[-1] if loss_history else float("inf"),
            steps=step,
            loss_history=loss_history,
            accuracy_history=accuracy_history,
            early_stopped=early_stopped,
        )

    def evaluate_classifier(self, dataset) -> float:
        self.model.eval()
        loader = DataLoader(dataset, batch_size=64, shuffle=False)
        correct, total = 0, 0
        with no_grad():
            for batch in loader:
                logits = self.model(Tensor(batch.inputs))
                correct += int((logits.data.argmax(axis=-1) == batch.targets).sum())
                total += len(batch)
        self.model.train()
        return correct / max(total, 1)

    # -- language modelling --------------------------------------------------

    def fit_language_model(self, dataset) -> TrainingResult:
        config = self.config
        loader = DataLoader(dataset, batch_size=config.batch_size, seed=config.seed)
        optimizer = self._make_optimizer()
        loss_history: list[float] = []
        step = 0
        self.model.train()
        while step < config.max_steps:
            for batch in loader:
                if step >= config.max_steps:
                    break
                logits = self.model(batch.inputs)  # [B, T, V]
                batch_size, seq_len, vocab = logits.shape
                flat_logits = F.reshape(logits, (batch_size * seq_len, vocab))
                loss = F.cross_entropy(flat_logits, batch.targets.reshape(-1))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                loss_history.append(float(loss.data))
                step += 1
        final_loss = float(np.mean(loss_history[-5:])) if loss_history else float("inf")
        return TrainingResult(
            final_accuracy=0.0,
            best_accuracy=0.0,
            final_loss=final_loss,
            steps=step,
            loss_history=loss_history,
        )
