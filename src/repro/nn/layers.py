"""Common neural-network layers built from the autograd primitives.

The convolution is implemented compositionally (pad → gather windows →
einsum), so its gradient falls out of the autograd engine; the same
``unfold1d`` helper implements the top-down semantics of the paper's Unfold
primitive, keeping the substrate and the synthesized operators consistent.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


def _kaiming(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


def default_rng() -> np.random.Generator:
    """The ambient context's parameter-initialization RNG.

    Layers draw their initial weights from the runtime context
    (:attr:`repro.runtime.RuntimeContext.param_rng`) instead of a module
    global, so two concurrently active contexts each own an independent
    parameter stream.
    """
    from repro.runtime import current  # lazy: keep nn importable standalone

    return current().param_rng


def seed_all(seed: int) -> None:
    """Reseed the ambient context's parameter-initialization RNG."""
    from repro.runtime import current  # lazy: keep nn importable standalone

    current().reseed_param_rng(seed)


class Linear(Module):
    """Fully connected layer ``y = x @ W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_kaiming((out_features, in_features), in_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        y = F.matmul(x, F.transpose(self.weight))
        if self.bias is not None:
            y = F.add(y, self.bias)
        return y


class Conv2d(Module):
    """Same/valid 2-D convolution implemented with gather + einsum."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | None = None,
        groups: int = 1,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng or default_rng()
        if in_channels % groups or out_channels % groups:
            raise ValueError("channels must be divisible by groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = kernel_size // 2 if padding is None else padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Parameter(
            _kaiming((out_channels, in_channels // groups, kernel_size, kernel_size), fan_in, rng)
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        k, pad_amount, stride = self.kernel_size, self.padding, self.stride
        padded = F.pad(x, [(0, 0), (0, 0), (pad_amount, pad_amount), (pad_amount, pad_amount)])
        out_h = (height + 2 * pad_amount - k) // stride + 1
        out_w = (width + 2 * pad_amount - k) // stride + 1
        rows = (np.arange(out_h) * stride)[:, None] + np.arange(k)[None, :]
        cols = (np.arange(out_w) * stride)[:, None] + np.arange(k)[None, :]
        gathered = F.take(padded, rows.reshape(-1), axis=2)
        gathered = F.reshape(gathered, (batch, channels, out_h, k, padded.shape[3]))
        gathered = F.take(gathered, cols.reshape(-1), axis=4)
        patches = F.reshape(gathered, (batch, channels, out_h, k, out_w, k))
        # patches[b, c, i, u, j, v] = x_padded[b, c, i*stride+u, j*stride+v]
        groups = self.groups
        cin_group = channels // groups
        cout_group = self.out_channels // groups
        patches = F.reshape(patches, (batch, groups, cin_group, out_h, k, out_w, k))
        weight = F.reshape(
            self.weight, (groups, cout_group, cin_group, k, k)
        )
        out = F.einsum("bgcxuyv,gdcuv->bgdxy", patches, weight)
        out = F.reshape(out, (batch, self.out_channels, out_h, out_w))
        if self.bias is not None:
            out = F.add(out, F.reshape(self.bias, (1, self.out_channels, 1, 1)))
        return out


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = F.mean(x, axis=(0, 2, 3), keepdims=True)
            centered = F.sub(x, mean)
            var = F.mean(F.mul(centered, centered), axis=(0, 2, 3), keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
            )
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
            centered = F.sub(x, mean)
        inv_std = F.power(F.add(var, self.eps), -0.5)
        normalized = F.mul(centered, inv_std)
        scale = F.reshape(self.weight, (1, self.num_features, 1, 1))
        shift = F.reshape(self.bias, (1, self.num_features, 1, 1))
        return F.add(F.mul(normalized, scale), shift)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = F.mean(x, axis=-1, keepdims=True)
        centered = F.sub(x, mean)
        var = F.mean(F.mul(centered, centered), axis=-1, keepdims=True)
        normalized = F.mul(centered, F.power(F.add(var, self.eps), -0.5))
        return F.add(F.mul(normalized, self.weight), self.bias)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Dropout(Module):
    def __init__(self, rate: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.rate = rate
        self.rng = rng or default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.training, self.rng)


class Embedding(Module):
    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or default_rng()
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, embedding_dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        flat = F.take(self.weight, indices.reshape(-1), axis=0)
        return F.reshape(flat, tuple(indices.shape) + (self.weight.shape[1],))


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        k, stride = self.kernel_size, self.stride
        out_h, out_w = (height - k) // stride + 1, (width - k) // stride + 1
        rows = (np.arange(out_h) * stride)[:, None] + np.arange(k)[None, :]
        cols = (np.arange(out_w) * stride)[:, None] + np.arange(k)[None, :]
        gathered = F.take(x, rows.reshape(-1), axis=2)
        gathered = F.reshape(gathered, (batch, channels, out_h, k, width))
        gathered = F.take(gathered, cols.reshape(-1), axis=4)
        patches = F.reshape(gathered, (batch, channels, out_h, k, out_w, k))
        patches = F.transpose(patches, (0, 1, 2, 4, 3, 5))
        patches = F.reshape(patches, (batch, channels, out_h, out_w, k * k))
        return F.max(patches, axis=-1)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        batch, channels, height, width = x.shape
        k, stride = self.kernel_size, self.stride
        if stride == k and height % k == 0 and width % k == 0:
            reshaped = F.reshape(x, (batch, channels, height // k, k, width // k, k))
            return F.mean(reshaped, axis=(3, 5))
        out_h, out_w = (height - k) // stride + 1, (width - k) // stride + 1
        rows = (np.arange(out_h) * stride)[:, None] + np.arange(k)[None, :]
        cols = (np.arange(out_w) * stride)[:, None] + np.arange(k)[None, :]
        gathered = F.take(x, rows.reshape(-1), axis=2)
        gathered = F.reshape(gathered, (batch, channels, out_h, k, width))
        gathered = F.take(gathered, cols.reshape(-1), axis=4)
        patches = F.reshape(gathered, (batch, channels, out_h, k, out_w, k))
        return F.mean(patches, axis=(3, 5))


class AdaptiveAvgPool2d(Module):
    """Global average pooling to a 1x1 spatial output."""

    def forward(self, x: Tensor) -> Tensor:
        return F.mean(x, axis=(2, 3), keepdims=True)
