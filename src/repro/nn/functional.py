"""Differentiable tensor operations.

Every operation takes and returns :class:`~repro.nn.tensor.Tensor` objects and
records the vector-Jacobian products needed for reverse-mode autodiff.  The
set of primitives is intentionally small; layers and synthesized operators are
built compositionally on top of it so their gradients come for free.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor, _unbroadcast, as_tensor


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data + b.data
    return Tensor.from_op(
        data,
        [
            (a, lambda g: _unbroadcast(g, a.shape)),
            (b, lambda g: _unbroadcast(g, b.shape)),
        ],
    )


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data - b.data
    return Tensor.from_op(
        data,
        [
            (a, lambda g: _unbroadcast(g, a.shape)),
            (b, lambda g: _unbroadcast(-g, b.shape)),
        ],
    )


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data * b.data
    return Tensor.from_op(
        data,
        [
            (a, lambda g: _unbroadcast(g * b.data, a.shape)),
            (b, lambda g: _unbroadcast(g * a.data, b.shape)),
        ],
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data / b.data
    return Tensor.from_op(
        data,
        [
            (a, lambda g: _unbroadcast(g / b.data, a.shape)),
            (b, lambda g: _unbroadcast(-g * a.data / (b.data**2), b.shape)),
        ],
    )


def power(a, exponent: float) -> Tensor:
    a = as_tensor(a)
    data = a.data**exponent
    return Tensor.from_op(
        data, [(a, lambda g: g * exponent * a.data ** (exponent - 1))]
    )


def exp(a) -> Tensor:
    a = as_tensor(a)
    data = np.exp(a.data)
    return Tensor.from_op(data, [(a, lambda g: g * data)])


def log(a) -> Tensor:
    a = as_tensor(a)
    data = np.log(a.data)
    return Tensor.from_op(data, [(a, lambda g: g / a.data)])


def sqrt(a) -> Tensor:
    a = as_tensor(a)
    data = np.sqrt(a.data)
    return Tensor.from_op(data, [(a, lambda g: g * 0.5 / data)])


def tanh(a) -> Tensor:
    a = as_tensor(a)
    data = np.tanh(a.data)
    return Tensor.from_op(data, [(a, lambda g: g * (1.0 - data**2))])


def sigmoid(a) -> Tensor:
    a = as_tensor(a)
    data = 1.0 / (1.0 + np.exp(-a.data))
    return Tensor.from_op(data, [(a, lambda g: g * data * (1.0 - data))])


def relu(a) -> Tensor:
    a = as_tensor(a)
    mask = a.data > 0
    return Tensor.from_op(a.data * mask, [(a, lambda g: g * mask)])


def gelu(a) -> Tensor:
    """GELU with the tanh approximation (as used by GPT-2)."""
    a = as_tensor(a)
    c = np.sqrt(2.0 / np.pi)
    inner = c * (a.data + 0.044715 * a.data**3)
    t = np.tanh(inner)
    data = 0.5 * a.data * (1.0 + t)
    # d/dx [0.5x(1+tanh(u))] = 0.5(1+tanh(u)) + 0.5x(1-tanh(u)^2)u'
    du = c * (1.0 + 3 * 0.044715 * a.data**2)
    grad_local = 0.5 * (1.0 + t) + 0.5 * a.data * (1.0 - t**2) * du
    return Tensor.from_op(data, [(a, lambda g: g * grad_local)])


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


def sum(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    data = a.data.sum(axis=axes, keepdims=keepdims)

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = g
        if not keepdims:
            grad = np.expand_dims(grad, axis=axes)
        return np.broadcast_to(grad, a.shape).copy()

    return Tensor.from_op(data, [(a, vjp)])


def mean(a, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    count = 1
    for ax in axes:
        count *= a.shape[ax]
    return mul(sum(a, axis=axis, keepdims=keepdims), 1.0 / count)


def max(a, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001 - mirrors numpy
    a = as_tensor(a)
    axes = _normalize_axes(axis, a.ndim)
    data = a.data.max(axis=axes, keepdims=True)
    mask = (a.data == data).astype(a.data.dtype)
    mask = mask / mask.sum(axis=axes, keepdims=True)
    out = data if keepdims else np.squeeze(data, axis=axes)

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = g
        if not keepdims:
            grad = np.expand_dims(grad, axis=axes)
        return grad * mask

    return Tensor.from_op(out, [(a, vjp)])


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


def matmul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    data = a.data @ b.data

    def vjp_a(g: np.ndarray) -> np.ndarray:
        grad = g @ np.swapaxes(b.data, -1, -2)
        return _unbroadcast(grad, a.shape)

    def vjp_b(g: np.ndarray) -> np.ndarray:
        grad = np.swapaxes(a.data, -1, -2) @ g
        return _unbroadcast(grad, b.shape)

    return Tensor.from_op(data, [(a, vjp_a), (b, vjp_b)])


def einsum(subscripts: str, *operands) -> Tensor:
    """General einsum with autograd (no ellipsis support).

    The backward pass for operand ``i`` swaps its subscript with the output
    subscript and feeds the upstream gradient in its place, broadcasting over
    any axes of operand ``i`` that do not appear elsewhere.
    """
    tensors = [as_tensor(op) for op in operands]
    if "..." in subscripts:
        raise ValueError("einsum with ellipsis is not supported")
    inputs_part, output_part = subscripts.split("->")
    input_subs = [part.strip() for part in inputs_part.split(",")]
    if len(input_subs) != len(tensors):
        raise ValueError("einsum subscripts do not match the number of operands")
    data = np.einsum(subscripts, *[t.data for t in tensors], optimize=True)

    parents = []
    for index, tensor in enumerate(tensors):
        def make_vjp(index: int, tensor: Tensor):
            target_sub = input_subs[index]
            other_subs = [input_subs[j] for j in range(len(tensors)) if j != index]
            other_tensors = [tensors[j] for j in range(len(tensors)) if j != index]

            def vjp(g: np.ndarray) -> np.ndarray:
                # Build: grad_i = einsum(output_sub, others... -> target_sub)
                available = set(output_part)
                for sub in other_subs:
                    available.update(sub)
                missing = [c for c in target_sub if c not in available]
                reduced_target = "".join(c for c in target_sub if c not in missing)
                sub_expr = ",".join([output_part] + other_subs) + "->" + reduced_target
                grad = np.einsum(sub_expr, g, *[t.data for t in other_tensors], optimize=True)
                if missing:
                    # Axes that appear only in this operand: gradient broadcasts.
                    expand_shape = []
                    src_iter = iter(range(grad.ndim))
                    grad_expanded = grad
                    for c in target_sub:
                        if c in missing:
                            expand_shape.append(1)
                        else:
                            expand_shape.append(grad.shape[next(src_iter)])
                    grad_expanded = grad.reshape(expand_shape)
                    grad = np.broadcast_to(grad_expanded, tensor.shape).copy()
                return grad

            return vjp

        parents.append((tensor, make_vjp(index, tensor)))
    return Tensor.from_op(data, parents)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


def reshape(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    shape = tuple(shape)
    data = a.data.reshape(shape)
    return Tensor.from_op(data, [(a, lambda g: g.reshape(a.shape))])


def transpose(a, axes: Sequence[int] | None = None) -> Tensor:
    a = as_tensor(a)
    if axes is None:
        axes = tuple(reversed(range(a.ndim)))
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))
    data = a.data.transpose(axes)
    return Tensor.from_op(data, [(a, lambda g: g.transpose(inverse))])


def broadcast_to(a, shape: Sequence[int]) -> Tensor:
    a = as_tensor(a)
    shape = tuple(shape)
    data = np.broadcast_to(a.data, shape).copy()
    return Tensor.from_op(data, [(a, lambda g: _unbroadcast(g, a.shape))])


def expand_dims(a, axis: int) -> Tensor:
    a = as_tensor(a)
    data = np.expand_dims(a.data, axis)
    return Tensor.from_op(data, [(a, lambda g: np.squeeze(g, axis=axis))])


def getitem(a, index) -> Tensor:
    a = as_tensor(a)
    data = a.data[index]

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = np.zeros_like(a.data)
        np.add.at(grad, index, g)
        return grad

    return Tensor.from_op(data, [(a, vjp)])


def pad(a, pad_width: Sequence[tuple[int, int]]) -> Tensor:
    """Zero padding; ``pad_width`` follows numpy's per-axis convention."""
    a = as_tensor(a)
    pad_width = tuple((int(lo), int(hi)) for lo, hi in pad_width)
    data = np.pad(a.data, pad_width)

    def vjp(g: np.ndarray) -> np.ndarray:
        slices = tuple(
            slice(lo, g.shape[axis] - hi if hi else None)
            for axis, (lo, hi) in enumerate(pad_width)
        )
        return g[slices]

    return Tensor.from_op(data, [(a, vjp)])


def take(a, indices: np.ndarray, axis: int) -> Tensor:
    """Gather along one axis with an integer index array (backward scatter-adds)."""
    a = as_tensor(a)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.take(a.data, indices, axis=axis)

    def vjp(g: np.ndarray) -> np.ndarray:
        grad = np.zeros_like(a.data)
        moved_grad = np.moveaxis(g, axis, 0) if indices.ndim == 1 else g
        if indices.ndim == 1:
            moved = np.moveaxis(grad, axis, 0)
            np.add.at(moved, indices, moved_grad)
            return np.moveaxis(moved, 0, axis)
        raise NotImplementedError("take backward supports 1-D index arrays only")

    return Tensor.from_op(data, [(a, vjp)])


def roll(a, shift: int, axis: int) -> Tensor:
    """Cyclic shift along an axis (the Shift primitive's top-down semantics)."""
    a = as_tensor(a)
    data = np.roll(a.data, shift, axis=axis)
    return Tensor.from_op(data, [(a, lambda g: np.roll(g, -shift, axis=axis))])


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    parents = []
    offset = 0
    for tensor in tensors:
        extent = tensor.shape[axis]

        def make_vjp(start: int, extent: int, tensor: Tensor):
            def vjp(g: np.ndarray) -> np.ndarray:
                slices = [slice(None)] * g.ndim
                slices[axis] = slice(start, start + extent)
                return g[tuple(slices)]

            return vjp

        parents.append((tensor, make_vjp(offset, extent, tensor)))
        offset += extent
    return Tensor.from_op(data, parents)


# ---------------------------------------------------------------------------
# Neural-network specific helpers
# ---------------------------------------------------------------------------


def unfold1d_geometry(
    input_shape: Sequence[int], axis: int, window: int
) -> tuple[tuple[tuple[int, int], ...], np.ndarray, tuple[int, ...], tuple[int, ...]]:
    """The index math of the Unfold primitive: ``(pad_width, gather,
    reshape_shape, transpose_axes)``.

    Shared by the eager :func:`unfold1d` (computed per call) and the compiled
    plan's ``UnfoldStep`` (computed once), so the same-padding convention and
    gather layout can never silently diverge between the two paths.
    """
    input_shape = tuple(input_shape)
    extent = input_shape[axis]
    offset = window // 2
    pad_width = tuple(
        (offset, window - 1 - offset) if current == axis else (0, 0)
        for current in range(len(input_shape))
    )
    # Gather indices: position i, window j reads padded index i + j.
    gather = (np.arange(extent)[:, None] + np.arange(window)[None, :]).reshape(-1)
    # After the gather the axis holds extent*window elements; split it into
    # (extent, window), then move the window axis to the end.
    reshape_shape = input_shape[:axis] + (extent, window) + input_shape[axis + 1 :]
    axes = list(range(len(reshape_shape)))
    window_axis = axes.pop(axis + 1)
    axes.append(window_axis)
    return pad_width, gather, reshape_shape, tuple(axes)


def unfold1d(a, axis: int, window: int) -> Tensor:
    """Extract same-padded sliding windows of size ``window`` along ``axis``.

    Produces a tensor with a trailing window axis:
    ``out[..., i, ..., j] = in[..., i + j - window//2, ...]`` with zero padding,
    exactly the top-down semantics of the paper's Unfold primitive.
    """
    a = as_tensor(a)
    pad_width, gather, reshape_shape, axes = unfold1d_geometry(a.shape, axis, window)
    padded = pad(a, pad_width)
    taken = take(padded, gather, axis=axis)  # axis extent becomes extent*window
    reshaped = reshape(taken, reshape_shape)
    return transpose(reshaped, axes)


def strided_slice(a, axis: int, step: int) -> Tensor:
    """Select every ``step``-th element along ``axis`` (Stride's top-down view)."""
    a = as_tensor(a)
    index = tuple(
        slice(None, None, step) if current == axis else slice(None)
        for current in range(a.ndim)
    )
    return getitem(a, index)


def softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = sub(a, Tensor(a.data.max(axis=axis, keepdims=True)))
    exps = exp(shifted)
    return div(exps, sum(exps, axis=axis, keepdims=True))


def log_softmax(a, axis: int = -1) -> Tensor:
    a = as_tensor(a)
    shifted = sub(a, Tensor(a.data.max(axis=axis, keepdims=True)))
    return sub(shifted, log(sum(exp(shifted), axis=axis, keepdims=True)))


def cross_entropy(logits, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits [B, C]`` and integer ``targets [B]``."""
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    onehot = np.zeros(logits.shape, dtype=logits.data.dtype)
    onehot[np.arange(batch), targets] = 1.0
    picked = mul(log_probs, Tensor(onehot))
    return mul(sum(picked), -1.0 / batch)


def accuracy(logits, targets: np.ndarray) -> float:
    logits = as_tensor(logits)
    predictions = logits.data.argmax(axis=-1)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())


def dropout(a, rate: float, training: bool, rng: np.random.Generator | None = None) -> Tensor:
    if not training or rate <= 0.0:
        return as_tensor(a)
    if rng is None:
        from repro.runtime import current  # lazy: keep nn importable standalone

        rng = current().param_rng
    a = as_tensor(a)
    mask = (rng.random(a.shape) >= rate) / (1.0 - rate)
    return mul(a, Tensor(mask))
