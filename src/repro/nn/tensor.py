"""A reverse-mode autograd tensor over numpy arrays.

This is the training substrate that stands in for PyTorch: every operator
substituted into a backbone model must be differentiable so the model can be
trained end-to-end, which is exactly the "high quality" property the paper's
primitives guarantee.  The engine is a classic define-by-run tape: each
operation records, on its output, the parent tensors and a vector-Jacobian
product (VJP) closure per parent; ``Tensor.backward`` topologically sorts the
tape and accumulates gradients.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

# The runtime package is import-light (stdlib only), so binding its resolver
# at module scope costs nothing and avoids a memoized-global rebind.
from repro.runtime import current as _current_runtime

_GRAD_ENABLED = True


def compute_dtype() -> np.dtype:
    """The numpy dtype every tensor allocation uses.

    Resolved per call from the ambient :class:`repro.runtime.RuntimeContext`
    (``RuntimeConfig.dtype``: float32 under smoke, float64 otherwise; the
    ``REPRO_DTYPE`` variable remains the edge-of-process fallback).  Because
    activation is per-thread, two concurrently active contexts with different
    dtypes each get their own allocations.
    """
    return np.dtype(_current_runtime().config.dtype_name())


@contextlib.contextmanager
def no_grad():
    """Disable gradient recording within the context (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, extent in enumerate(shape):
        if extent == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode automatic differentiation."""

    __slots__ = ("data", "requires_grad", "grad", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=compute_dtype())
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents: list[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = []
        self.name = name

    # -- construction helpers ----------------------------------------------

    @staticmethod
    def zeros(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int], requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(shape: Sequence[int], scale: float = 1.0, rng: np.random.Generator | None = None,
              requires_grad: bool = False) -> "Tensor":
        if rng is None:
            rng = _current_runtime().param_rng
        return Tensor(rng.normal(0.0, scale, size=tuple(shape)), requires_grad=requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]],
    ) -> "Tensor":
        """Create an op output, recording parents only if gradients are enabled."""
        if not _GRAD_ENABLED:
            # Inference fast path: no closure-list materialization, no
            # requires_grad scan — the parents iterable is never consumed.
            return Tensor(data)
        parents = list(parents)
        requires_grad = any(p.requires_grad for p, _ in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = [(p, fn) for p, fn in parents if p.requires_grad]
        return out

    # -- basic properties ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    # -- autograd ------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded tape."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        # Topological order of the tape reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and not node._parents:
                # Leaf tensor: accumulate into .grad.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            for parent, vjp in node._parents:
                contribution = vjp(node_grad)
                existing = grads.get(id(parent))
                grads[id(parent)] = contribution if existing is None else existing + contribution
            if node.requires_grad and node._parents and node.grad is not None:
                # Non-leaf with retained grad (rare); keep accumulating.
                node.grad = node.grad + node_grad

    # -- arithmetic (delegating to functional) -------------------------------

    def __add__(self, other):
        from repro.nn import functional as F

        return F.add(self, other)

    __radd__ = __add__

    def __mul__(self, other):
        from repro.nn import functional as F

        return F.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):
        from repro.nn import functional as F

        return F.sub(self, other)

    def __rsub__(self, other):
        from repro.nn import functional as F

        return F.sub(other, self)

    def __truediv__(self, other):
        from repro.nn import functional as F

        return F.div(self, other)

    def __rtruediv__(self, other):
        from repro.nn import functional as F

        return F.div(other, self)

    def __neg__(self):
        from repro.nn import functional as F

        return F.mul(self, -1.0)

    def __pow__(self, exponent: float):
        from repro.nn import functional as F

        return F.power(self, exponent)

    def __matmul__(self, other):
        from repro.nn import functional as F

        return F.matmul(self, other)

    def __getitem__(self, index):
        from repro.nn import functional as F

        return F.getitem(self, index)

    # -- shape manipulation ---------------------------------------------------

    def reshape(self, *shape):
        from repro.nn import functional as F

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return F.reshape(self, shape)

    def transpose(self, *axes):
        from repro.nn import functional as F

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return F.transpose(self, axes or None)

    def sum(self, axis=None, keepdims=False):
        from repro.nn import functional as F

        return F.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from repro.nn import functional as F

        return F.mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims=False):
        from repro.nn import functional as F

        return F.max(self, axis=axis, keepdims=keepdims)

    def exp(self):
        from repro.nn import functional as F

        return F.exp(self)

    def log(self):
        from repro.nn import functional as F

        return F.log(self)

    def sqrt(self):
        from repro.nn import functional as F

        return F.sqrt(self)

    def relu(self):
        from repro.nn import functional as F

        return F.relu(self)


def as_tensor(value) -> Tensor:
    """Coerce numpy arrays / scalars into (constant) tensors."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
