"""A small numpy-based neural-network substrate standing in for PyTorch.

The paper trains candidate operators inside full backbone models with PyTorch
on GPUs; this package provides the equivalent capability at laptop scale: a
reverse-mode autograd engine over numpy arrays, a module system, common
layers, tiny configurations of the paper's six backbone models, optimizers,
synthetic datasets and a trainer.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import functional
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.layers import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.optim import SGD, Adam
from repro.nn.data import SyntheticImageDataset, SyntheticLanguageDataset, DataLoader
from repro.nn.trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "Tensor",
    "no_grad",
    "functional",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Dropout",
    "Embedding",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "SGD",
    "Adam",
    "SyntheticImageDataset",
    "SyntheticLanguageDataset",
    "DataLoader",
    "Trainer",
    "TrainingConfig",
    "TrainingResult",
]
